"""Scale-out benchmark: tiered worlds, shared-memory workers, MinHash blocking.

Standalone script (not a pytest bench — CI runs it directly)::

    PYTHONPATH=src python benchmarks/bench_scale.py [--tiny] [--out PATH]

The paper evaluates DISTINCT against full DBLP (§5: 616K papers / 1.29M
authorship rows); this bench grows the synthetic world toward that scale
in tiers and measures the three scale-out mechanisms this repo offers on
the largest tier:

1. **worlds** — generated DBLP-style worlds at increasing ``scale``,
   recording tuple counts and generate/load/fit wall times (the full
   run's top tier crosses 100K database tuples);
2. **shm** — :class:`repro.perf.SharedPayload` zero-copy dispatch of the
   largest name's stacked profile matrices against the
   :class:`repro.perf.PickledPayload` baseline: per-worker dispatch
   bytes and the wall time of the same pool map at ``--workers``;
3. **end_to_end** — the full resilient experiment over every ambiguous
   name: serial, ``workers=4`` with static shards, and ``workers=4``
   with cost-model (refs²) work-stealing shards + shared-memory payload
   — all three must produce byte-identical per-name results, and no
   ``/dev/shm`` segment may survive the run;
4. **minhash** — ``pair_pruning="minhash"`` against the exact
   zero-overlap mode over the same names: pairs evaluated, prepare wall,
   measured LSH recall on the largest name's forward supports, and
   per-name result agreement. MinHash blocking is the *approximate*
   scale-out knob: the exact re-check keeps its survivors a strict
   subset of the exact mode's, and the bench reports the recall and
   agreement so the tradeoff is measured, not assumed. The pipeline's
   default (exact) mode is the one the end-to-end gates hold
   byte-identical to serial.

Results land in ``BENCH_scale.json``; one summary line per run is
appended to ``BENCH_history.jsonl`` with ``"bench": "scale"`` so the
regression observatory (``repro regress``) trends this bench separately
from the kernel bench. Equivalence gates (byte-identical end-to-end
results, shm results identical, no leaked segments, minhash survivors a
subset) fail the run in both modes; throughput gates (shm wall win,
parallel beating serial, ≥5x minhash reduction) only in the full run —
tiny worlds are too small for stable ratios.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from dataclasses import replace
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Distinct, DistinctConfig, GeneratorConfig, generate_world
from repro.core.references import exclusions_for_name, extract_references
from repro.core.variants import variant_by_key
from repro.data.ambiguity import AmbiguousNameSpec
from repro.data.world import world_to_database
from repro.eval.persistence import name_result_to_dict
from repro.eval.runner import run_resilient
from repro.obs import get_metrics
from repro.paths.profiles import ProfileBuilder
from repro.perf import (
    PickledPayload,
    SharedPayload,
    active_segments,
    blocking_recall,
    intersecting_pair_mask,
    minhash_pair_mask,
    ordered_process_map,
)

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_scale.json"
DEFAULT_HISTORY = Path(__file__).resolve().parent.parent / "BENCH_history.jsonl"

#: Ambiguous names with skewed reference counts (150 … 15), deliberately
#: not in cost order so cost-model sharding visibly reorders dispatch.
SPEC = [
    AmbiguousNameSpec("Bin Zhu", (12, 10, 8, 6)),
    AmbiguousNameSpec("Wei Wang", tuple([15] * 10)),
    AmbiguousNameSpec("Hui Fang", (6, 5, 4)),
    AmbiguousNameSpec("Rakesh Kumar", (20, 15, 15, 10, 10)),
    AmbiguousNameSpec("Wen Gao", (9, 7, 5)),
    AmbiguousNameSpec("Lei Chen", (10, 8, 6, 6)),
]

#: World tiers swept per mode; sections run on the last (largest) tier.
FULL_SCALES = (2.0, 10.0)
TINY_SCALES = (0.1, 0.3)


def git_sha() -> str:
    """The commit this run measured, for provenance; "unknown" outside git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent.parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def timed(fn, repeats: int):
    """Best-of-``repeats`` wall time and the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def counter_value(name: str) -> float:
    return float(get_metrics().snapshot()["counters"].get(name, 0.0))


def world_config(scale: float, seed: int) -> GeneratorConfig:
    """A tier's generator config.

    ``rare_entities`` is a *scaled* knob; at large scales the rare-token
    name pools saturate and no name stays rare (§3 training needs rare
    names), so the raw knob shrinks to keep ~120 genuinely rare entities
    at every tier.
    """
    rare = 120 if scale <= 1.0 else max(4, round(120 / scale))
    return GeneratorConfig(seed=seed, scale=scale, rare_entities=rare)


def base_config() -> DistinctConfig:
    """The scale-out pipeline configuration: fast backends, exact pruning."""
    return DistinctConfig(
        n_positive=300,
        n_negative=300,
        svm_C=10.0,
        similarity_backend="vectorized",
        propagation_backend="batched",
        pair_pruning="exact",
    )


# -- shm section --------------------------------------------------------------


def _chunk_mass(payload, chunk: int):
    """Per-task work unit: deterministic reduction over the shared matrices."""
    forwards = payload["forwards"]
    lo, hi = payload["bounds"][chunk]
    return float(sum(m[lo:hi].sum() + m[lo:hi].count_nonzero() for m in forwards))


def profile_payload(distinct: Distinct, name: str) -> dict:
    """The largest name's real per-path profile matrices, CSR, as a payload."""
    refs = extract_references(distinct.db, name, distinct.config)
    builder = ProfileBuilder(
        distinct.db,
        distinct.paths_,
        exclusions_for_name(distinct.db, name, distinct.config),
    )
    matrices = builder.matrices_for(refs.rows)
    forwards = [matrices[path].forward.tocsr() for path in distinct.paths_]
    backwards = [matrices[path].backward.tocsr() for path in distinct.paths_]
    n = len(refs.rows)
    n_chunks = 8
    step = -(-n // n_chunks)
    bounds = [(k * step, min(n, (k + 1) * step)) for k in range(n_chunks)]
    return {
        "forwards": forwards,
        "backwards": backwards,
        "bounds": bounds,
        "rows": list(refs.rows),
    }


def bench_shm(payload: dict, workers: int, repeats: int) -> dict:
    """Zero-copy vs pickled dispatch of the same matrices at ``workers``."""
    n_chunks = len(payload["bounds"])
    items = list(range(n_chunks))

    def run(handle_cls):
        handle = handle_cls.wrap(payload)
        outcomes = list(
            ordered_process_map(_chunk_mass, handle, items, workers=workers)
        )
        return handle, [o.value for o in outcomes]

    shared_s, (shared_handle, shared_values) = timed(
        lambda: run(SharedPayload), repeats
    )
    pickled_s, (pickled_handle, pickled_values) = timed(
        lambda: run(PickledPayload), repeats
    )
    nnz = int(sum(m.nnz for m in payload["forwards"]))
    return {
        "workers": workers,
        "n_tasks": n_chunks,
        "forward_nnz": nnz,
        "shared_dispatch_bytes": shared_handle.dispatch_bytes,
        "pickled_dispatch_bytes": pickled_handle.dispatch_bytes,
        "shared_segment_bytes": shared_handle.shared_bytes,
        "dispatch_ratio": pickled_handle.dispatch_bytes
        / max(1, shared_handle.dispatch_bytes),
        "shared_seconds": shared_s,
        "pickled_seconds": pickled_s,
        "wall_ratio": pickled_s / shared_s,
        "results_identical": shared_values == pickled_values,
        "segments_clean": active_segments() == [],
    }


# -- end-to-end + minhash sections --------------------------------------------


def run_experiment(
    distinct: Distinct, truth, names: list[str], workers: int
) -> tuple[float, list[dict], dict]:
    """One resilient run; returns wall, per-name result dicts, counter deltas."""
    tracked = (
        "blocking.pairs_kept",
        "blocking.pairs_pruned",
        "blocking.minhash.candidates",
        "perf.shard.steals",
        "perf.shard.shards",
        "perf.shm.unlinks",
    )
    before = {k: counter_value(k) for k in tracked}
    t0 = time.perf_counter()
    outcome = run_resilient(
        distinct,
        truth,
        names,
        variant_by_key("distinct"),
        min_sim=distinct.config.min_sim,
        workers=workers,
    )
    wall = time.perf_counter() - t0
    deltas = {k: counter_value(k) - v for k, v in before.items()}
    if not outcome.complete:
        raise RuntimeError("experiment run did not complete")
    return wall, [name_result_to_dict(r) for r in outcome.result.names], deltas


def measured_recall(payload: dict, config: DistinctConfig) -> float:
    """LSH recall against exact overlap on the largest name's supports."""
    n = len(payload["rows"])
    idx_a, idx_b = np.triu_indices(n, k=1)
    exact = intersecting_pair_mask(payload["forwards"], idx_a, idx_b)
    candidates = minhash_pair_mask(
        payload["forwards"],
        idx_a,
        idx_b,
        bands=config.minhash_bands,
        rows=config.minhash_rows,
        seed=config.seed,
    )
    return blocking_recall(exact, candidates)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="small world tiers for CI smoke (same equivalence gates)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--timestamp",
        default=None,
        help="timestamp recorded in the history line (default: now, UTC); "
             "CI passes the commit timestamp for stable trend axes",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=DEFAULT_HISTORY,
        help="JSONL file to append this run's summary line to",
    )
    args = parser.parse_args(argv)

    scales = TINY_SCALES if args.tiny else FULL_SCALES
    repeats = 1 if args.tiny else 2
    names = [spec.name for spec in SPEC]
    config = base_config()

    # -- tiered worlds -------------------------------------------------------
    tiers = []
    distinct = truth = None
    for scale in scales:
        t0 = time.perf_counter()
        world = generate_world(world_config(scale, args.seed), SPEC)
        gen_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        db, tier_truth = world_to_database(world)
        load_s = time.perf_counter() - t0
        tuples = sum(db.relation_sizes().values())
        tier_distinct = Distinct(config)
        t0 = time.perf_counter()
        tier_distinct.fit(db)
        fit_s = time.perf_counter() - t0
        stats = world.stats()
        tiers.append(
            {
                "scale": scale,
                "tuples": tuples,
                "papers": stats["papers"],
                "authorships": stats["authorships"],
                "entities": stats["entities"],
                "generate_seconds": gen_s,
                "load_seconds": load_s,
                "fit_seconds": fit_s,
            }
        )
        distinct, truth = tier_distinct, tier_truth  # sections use the top tier
        print(
            f"tier x{scale}: {tuples} tuples ({stats['papers']} papers, "
            f"{stats['authorships']} authorships)  gen {gen_s:.1f}s  "
            f"load {load_s:.1f}s  fit {fit_s:.1f}s"
        )
    top = tiers[-1]

    # -- shm: zero-copy vs pickled dispatch ----------------------------------
    biggest = max(SPEC, key=lambda s: sum(s.ref_counts)).name
    payload = profile_payload(distinct, biggest)
    shm = bench_shm(payload, args.workers, repeats)
    print(
        f"shm ({biggest}, {shm['forward_nnz']} nnz): dispatch "
        f"{shm['shared_dispatch_bytes']} B shared vs "
        f"{shm['pickled_dispatch_bytes']} B pickled "
        f"({shm['dispatch_ratio']:.0f}x), wall {shm['shared_seconds']:.2f}s vs "
        f"{shm['pickled_seconds']:.2f}s ({shm['wall_ratio']:.2f}x) "
        f"at workers={shm['workers']}"
    )

    # -- end to end: serial vs static shards vs cost shards + shm ------------
    serial_s, serial_results, serial_counters = run_experiment(
        distinct, truth, names, workers=1
    )
    static_s, static_results, _ = run_experiment(
        distinct, truth, names, workers=args.workers
    )
    cost_distinct = Distinct.from_models(
        distinct.db,
        distinct.resem_model_,
        distinct.walk_model_,
        replace(config, shared_memory=True, shard_strategy="cost"),
    )
    cost_s, cost_results, cost_counters = run_experiment(
        cost_distinct, truth, names, workers=args.workers
    )
    end_to_end = {
        "tuples": top["tuples"],
        "n_names": len(names),
        "n_refs": sum(sum(s.ref_counts) for s in SPEC),
        "workers": args.workers,
        "serial_seconds": serial_s,
        "static_seconds": static_s,
        "cost_shm_seconds": cost_s,
        "parallel_speedup": serial_s / cost_s,
        "static_identical": static_results == serial_results,
        "cost_shm_identical": cost_results == serial_results,
        "shards_planned": int(cost_counters["perf.shard.shards"]),
        "shard_steals": int(cost_counters["perf.shard.steals"]),
        "shm_unlinks": int(cost_counters["perf.shm.unlinks"]),
        "segments_clean": active_segments() == [],
        "mean_f1": float(np.mean([r["f1"] for r in serial_results])),
    }
    print(
        f"end to end ({top['tuples']} tuples, {end_to_end['n_refs']} refs): "
        f"serial {serial_s:.1f}s  static x{args.workers} {static_s:.1f}s  "
        f"cost+shm x{args.workers} {cost_s:.1f}s "
        f"({end_to_end['parallel_speedup']:.2f}x, "
        f"steals={end_to_end['shard_steals']}, "
        f"identical={end_to_end['cost_shm_identical']})"
    )

    # -- minhash: approximate blocking vs exact pruning ----------------------
    minhash_distinct = Distinct.from_models(
        distinct.db,
        distinct.resem_model_,
        distinct.walk_model_,
        replace(config, pair_pruning="minhash"),
    )
    minhash_s, minhash_results, minhash_counters = run_experiment(
        minhash_distinct, truth, names, workers=1
    )
    kept_exact = int(serial_counters["blocking.pairs_kept"])
    kept_minhash = int(minhash_counters["blocking.pairs_kept"])
    agree = sum(
        1 for a, b in zip(minhash_results, serial_results) if a == b
    )
    minhash = {
        "pairs_kept_exact": kept_exact,
        "pairs_kept_minhash": kept_minhash,
        "lsh_candidates": int(minhash_counters["blocking.minhash.candidates"]),
        "reduction": kept_exact / max(1, kept_minhash),
        "exact_seconds": serial_s,
        "minhash_seconds": minhash_s,
        "prepare_speedup": serial_s / minhash_s,
        "survivors_subset": kept_minhash <= kept_exact,
        "measured_recall": measured_recall(payload, config),
        "names_identical": agree,
        "mean_f1": float(np.mean([r["f1"] for r in minhash_results])),
        "bands": config.minhash_bands,
        "rows": config.minhash_rows,
    }
    print(
        f"minhash: {kept_minhash}/{kept_exact} pairs evaluated "
        f"({minhash['reduction']:.1f}x reduction), wall {minhash_s:.1f}s vs "
        f"{serial_s:.1f}s exact ({minhash['prepare_speedup']:.1f}x), "
        f"recall {minhash['measured_recall']:.3f} on {biggest}, "
        f"f1 {minhash['mean_f1']:.3f} vs {end_to_end['mean_f1']:.3f} exact, "
        f"{agree}/{len(names)} names identical"
    )

    # -- gates ---------------------------------------------------------------
    failures = []
    if not shm["results_identical"]:
        failures.append("shm: pool results differ between shared and pickled")
    if not shm["segments_clean"] or not end_to_end["segments_clean"]:
        failures.append("shm: leaked /dev/shm segment(s)")
    if shm["shared_dispatch_bytes"] >= shm["pickled_dispatch_bytes"]:
        failures.append("shm: shared dispatch bytes not below pickled")
    if not end_to_end["static_identical"] or not end_to_end["cost_shm_identical"]:
        failures.append("end_to_end: parallel results differ from serial")
    if not minhash["survivors_subset"]:
        failures.append("minhash: survivors exceed exact survivors")
    if not args.tiny:
        if top["tuples"] < 100_000:
            failures.append("worlds: largest tier below 100K tuples")
        if shm["wall_ratio"] <= 1.0:
            failures.append("shm: shared-memory map not beating pickled wall")
        if minhash["reduction"] < 5.0:
            failures.append("minhash: candidate reduction below 5x")
        if end_to_end["parallel_speedup"] <= 1.0:
            failures.append("end_to_end: parallel run not beating serial")
    equivalent = not failures

    timestamp = args.timestamp or datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    sha = git_sha()
    report = {
        "generated_by": "benchmarks/bench_scale.py",
        "timestamp": timestamp,
        "git_sha": sha,
        "tiny": args.tiny,
        "config": {
            "scales": list(scales),
            "n_names": len(names),
            "n_refs": end_to_end["n_refs"],
            "workers": args.workers,
            "seed": args.seed,
            "repeats": repeats,
            "backend": config.similarity_backend,
            "propagation": config.propagation_backend,
            "minhash_bands": config.minhash_bands,
            "minhash_rows": config.minhash_rows,
        },
        "worlds": tiers,
        "shm": shm,
        "end_to_end": end_to_end,
        "minhash": minhash,
        "gates": {"failures": failures, "equivalent": equivalent},
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    history_line = {
        "timestamp": timestamp,
        "git_sha": sha,
        "bench": "scale",
        "tiny": args.tiny,
        "config": report["config"],
        "speedups": {
            "shm_dispatch_ratio": shm["dispatch_ratio"],
            "shm_wall": shm["wall_ratio"],
            "parallel_end_to_end": end_to_end["parallel_speedup"],
            "minhash_reduction": minhash["reduction"],
            "minhash_prepare": minhash["prepare_speedup"],
        },
        "tuples": top["tuples"],
        "shard_steals": end_to_end["shard_steals"],
        "equivalent": equivalent,
    }
    with args.history.open("a") as fh:
        fh.write(json.dumps(history_line) + "\n")

    print(f"scale bench ({'tiny' if args.tiny else 'full'}) -> {args.out}")
    print(f"  history    : {timestamp} ({sha[:12]}) >> {args.history}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
