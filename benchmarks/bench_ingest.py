"""Delta-ingest benchmark: incremental re-resolution vs cold refit.

Standalone script (not a pytest bench — CI runs it directly)::

    PYTHONPATH=src python benchmarks/bench_ingest.py [--tiny] [--out PATH]

A bibliographic database grows in batches; §5's DBLP snapshot is one
crawl increment away from the next. This bench measures what the
:mod:`repro.ingest` engine saves when a small, localized batch of new
papers lands on an already-resolved world:

1. **setup** — a generated world grown by a ≤10% "crawl increment"
   (:func:`repro.data.deltas.grow_world`: new papers by the coauthor
   circle of one small ambiguous name, plus a few by one of its
   entities, all into existing proceedings), split into a base database
   and a :class:`repro.reldb.Delta`; the pipeline is fitted on the base
   and every ambiguous name cold-resolved once (the steady state a
   long-running service holds);
2. **exact** — wall time of ``IngestEngine.ingest(delta)`` (the
   dirty-row → dirty-ref → dirty-pair → dirty-merge ladder) against a
   cold refit (fresh ``prepare`` + ``cluster_prepared`` per name on the
   post-delta database). The refreshed resolutions must equal the cold
   ones byte-for-byte — rows, clusters, pair matrices, dendrogram — and
   the full run additionally gates the headline claim: **≥5x** faster;
3. **parallel** — the same ingest at ``--workers`` on an identical
   second base; per-name results must be byte-identical to the serial
   ingest;
4. **greedy** — ``--mode greedy``'s single-reference assigner over the
   same delta: wall time and how many of its new-reference placements
   agree with the exact ladder's.

Results land in ``BENCH_ingest.json``; one summary line per run is
appended to ``BENCH_history.jsonl`` with ``"bench": "ingest"`` so the
regression observatory (``repro report --regress``) trends this bench
separately. Equivalence gates (byte-identity, parallel-identical) fail
the run in both modes; the ≥5x throughput gate only in the full run —
tiny worlds are too small for stable ratios.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Distinct, DistinctConfig, GeneratorConfig, generate_world
from repro.data.ambiguity import AmbiguousNameSpec
from repro.data.deltas import grow_world, split_world
from repro.ingest import IngestEngine, extend_resolution
from repro.obs import get_metrics

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_ingest.json"
DEFAULT_HISTORY = Path(__file__).resolve().parent.parent / "BENCH_history.jsonl"

#: One big name, several medium ones, and a small target: the delta is
#: local to the *target's* neighborhood, so the expensive names stay
#: clean and the ladder's savings are visible.
SPEC = [
    AmbiguousNameSpec("Wei Wang", tuple([12] * 8)),
    AmbiguousNameSpec("Bin Zhu", (48, 40, 32, 24)),
    AmbiguousNameSpec("Rakesh Kumar", (52, 44, 36, 28)),
    AmbiguousNameSpec("Lei Chen", (10, 8, 6, 6)),
    AmbiguousNameSpec("Wen Gao", (9, 7, 5)),
    AmbiguousNameSpec("Hui Fang", (6, 5, 4)),
]

#: The small name whose neighborhood receives the delta.
TARGET = "Hui Fang"

FULL_SCALE = 2.0
TINY_SCALE = 0.15

#: Crawl-increment size as a fraction of the world's papers (≤10% is the
#: regime the headline claims; the split keeps it local on top of small).
DELTA_FRACTION = 0.05

#: Papers in the increment written by one TARGET entity itself (these
#: become genuinely new references for the ladder and the greedy path).
TARGET_PAPERS = 3

#: How many distinct (unique-name) authors write the background
#: increment. A real crawl increment is one venue's worth of authors,
#: not a whole community; the cap keeps the changed Authors/Proceedings
#: row set — and with it the dirty blast radius — small.
POOL_CAP = 12


def git_sha() -> str:
    """The commit this run measured, for provenance; "unknown" outside git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent.parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def counter_value(name: str) -> float:
    return float(get_metrics().snapshot()["counters"].get(name, 0.0))


def base_config() -> DistinctConfig:
    """The ingest pipeline configuration: fast kernels, fixed SVM cost."""
    return DistinctConfig(
        n_positive=300,
        n_negative=300,
        svm_C=10.0,
        similarity_backend="vectorized",
        propagation_backend="batched",
    )


@dataclass
class Snapshot:
    """Everything byte-identity compares for one name."""

    rows: list[int]
    clusters: list[list[int]]
    resem: bytes
    walk: bytes
    merges: list[tuple[int, int, int]]
    sims: bytes

    @classmethod
    def of(cls, resolution) -> "Snapshot":
        clustering = resolution.clustering
        return cls(
            rows=list(resolution.rows),
            clusters=sorted(sorted(c) for c in resolution.clusters),
            resem=resolution.resem_matrix.tobytes(),
            walk=resolution.walk_matrix.tobytes(),
            merges=list(clustering.dendrogram.merges) if clustering else [],
            sims=(
                np.asarray(clustering.merge_similarities).tobytes()
                if clustering
                else b""
            ),
        )


def build_split(scale: float, seed: int):
    """The grown world split into (base, localized delta, truth).

    The world's communities are venue-isolated (no shared or foreign
    venues), modeling the common case where one crawl increment lands in
    one research community. The delta's authors are the members of a
    TARGET entity's community chosen to host no *other* ambiguous
    entity, so the increment's genuine blast radius is that community:
    the other names' references provably keep their profiles and stay on
    the reuse rungs of the ladder.
    """
    rare = 120 if scale <= 1.0 else max(4, round(120 / scale))
    world = generate_world(
        GeneratorConfig(
            seed=seed,
            scale=scale,
            rare_entities=rare,
            shared_conferences=0,
            p_shared_venue=0.0,
            p_foreign_venue=0.0,
        ),
        SPEC,
    )
    ambiguous = [e for e in world.entities if e.kind == "ambiguous"]
    targets = [e for e in ambiguous if e.name == TARGET]
    # Anchor in the TARGET community whose foreign ambiguous co-residents
    # carry the fewest references: names with no entity resident there
    # provably keep their whole profile set, and whoever does co-reside
    # contributes only a small partially-dirty refresh (the reuse rung).
    refs_of = {s.name: sum(s.ref_counts) for s in SPEC}
    def foreign_cost(entity):
        c = set(entity.communities)
        return sum(
            refs_of.get(e.name, 0)
            for e in ambiguous
            if e.name != TARGET and set(e.communities) & c
        )
    anchor = min(targets, key=foreign_cost)
    home = set(anchor.communities)
    # Two leak channels are closed here. Authors rows are keyed by
    # *name*: a delta coauthor whose name recurs in another community
    # genuinely re-weights that shared author row for everyone carrying
    # it — so delta authors must hold globally-unique names. And
    # multi-community members (hubs) publish in *both* their
    # communities' venues, dragging foreign proceedings into the blast
    # radius — so the pool keeps single-community residents only.
    holders: dict[str, int] = {}
    for e in world.entities:
        holders[e.name] = holders.get(e.name, 0) + 1
    pool = [
        e.entity_id
        for e in world.entities
        if e.kind != "ambiguous"
        and set(e.communities) <= home
        and holders[e.name] == 1
    ]
    # A tight author pool concentrates the increment: each changed
    # Authors/Proceedings row reaches fewer foreign references, so the
    # dirty set stays a handful of refs instead of a handful of names.
    pool = pool[:POOL_CAP]
    n_background = max(1, round(DELTA_FRACTION * len(world.papers)))
    grown = grow_world(world, n_background, seed=seed, author_pool=pool)
    grown = grow_world(
        grown, TARGET_PAPERS, seed=seed + 1, author_pool=[anchor.entity_id]
    )
    n_delta = n_background + TARGET_PAPERS
    return world, split_world(grown, n_delta), n_delta


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="small world for CI smoke (same equivalence gates, no 5x gate)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--timestamp",
        default=None,
        help="timestamp recorded in the history line (default: now, UTC); "
             "CI passes the commit timestamp for stable trend axes",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=DEFAULT_HISTORY,
        help="JSONL file to append this run's summary line to",
    )
    args = parser.parse_args(argv)

    scale = TINY_SCALE if args.tiny else FULL_SCALE
    config = base_config()
    names = [spec.name for spec in SPEC]

    # -- setup: base world, localized delta, fitted pipeline, warm state -----
    world, split, n_delta = build_split(scale, args.seed)
    n_papers = len(world.papers)
    delta_rows = sum(len(rows) for rows in split.delta.rows.values())
    t0 = time.perf_counter()
    distinct = Distinct(config).fit(split.base)
    fit_s = time.perf_counter() - t0
    engine = IngestEngine(distinct)
    cold_state = {}
    t0 = time.perf_counter()
    for name in names:
        cold_state[name] = engine.resolve(name)
    resolve_s = time.perf_counter() - t0
    setup = {
        "scale": scale,
        "papers": n_papers,
        "delta_papers": n_delta,
        "delta_rows": delta_rows,
        "delta_fraction": n_delta / n_papers,
        "n_names": len(names),
        "n_refs": sum(len(r.rows) for r in cold_state.values()),
        "fit_seconds": fit_s,
        "cold_resolve_seconds": resolve_s,
    }
    print(
        f"setup x{scale}: {n_papers} papers, delta {n_delta} papers "
        f"({setup['delta_fraction']:.1%}, {delta_rows} rows), "
        f"{setup['n_refs']} refs over {len(names)} names  "
        f"fit {fit_s:.1f}s  resolve {resolve_s:.1f}s"
    )

    # -- exact: the ladder vs a cold refit -----------------------------------
    tracked = (
        "ingest.refs_dirty",
        "ingest.pairs_recomputed",
        "ingest.pairs_reused",
        "cluster.merges_replayed",
        "perf.ingest.rows_dirty",
        "perf.ingest.rows_reused",
    )
    before = {k: counter_value(k) for k in tracked}
    t0 = time.perf_counter()
    report = engine.ingest(split.delta)
    ingest_s = time.perf_counter() - t0
    deltas = {k: counter_value(k) - v for k, v in before.items()}

    t0 = time.perf_counter()
    cold = {
        name: distinct.cluster_prepared(distinct.prepare(name))
        for name in names
    }
    cold_s = time.perf_counter() - t0

    identical = all(
        Snapshot.of(report.resolution(name)) == Snapshot.of(cold[name])
        for name in names
    )
    exact = {
        "ingest_seconds": ingest_s,
        "cold_refit_seconds": cold_s,
        "speedup": cold_s / ingest_s,
        "byte_identical": identical,
        "names_refreshed": len(report.names_refreshed),
        "names_clean": len(report.names_clean),
        "refs_dirty": int(deltas["ingest.refs_dirty"]),
        "pairs_recomputed": int(deltas["ingest.pairs_recomputed"]),
        "pairs_reused": int(deltas["ingest.pairs_reused"]),
        "merges_replayed": int(deltas["cluster.merges_replayed"]),
        "cache_rows_dirty": int(deltas["perf.ingest.rows_dirty"]),
        "cache_rows_reused": int(deltas["perf.ingest.rows_reused"]),
    }
    print(
        f"exact: ingest {ingest_s:.2f}s vs cold refit {cold_s:.2f}s "
        f"({exact['speedup']:.1f}x), identical={identical}; "
        f"{exact['names_clean']}/{len(names)} names clean, "
        f"{exact['refs_dirty']} dirty refs, "
        f"{exact['pairs_recomputed']} pairs recomputed / "
        f"{exact['pairs_reused']} reused, "
        f"{exact['merges_replayed']} merges replayed"
    )

    # -- parallel: same ingest at --workers on an identical second base ------
    _, split2, _ = build_split(scale, args.seed)
    distinct2 = Distinct.from_models(
        split2.base, distinct.resem_model_, distinct.walk_model_, config
    )
    engine2 = IngestEngine(distinct2)
    for name in names:
        engine2.resolve(name)
    t0 = time.perf_counter()
    report2 = engine2.ingest(split2.delta, workers=args.workers)
    parallel_s = time.perf_counter() - t0
    parallel_identical = all(
        Snapshot.of(report2.resolution(name)) == Snapshot.of(report.resolution(name))
        for name in names
    )
    parallel = {
        "workers": args.workers,
        "seconds": parallel_s,
        "identical_to_serial": parallel_identical,
        "speedup_vs_serial_ingest": ingest_s / parallel_s,
    }
    print(
        f"parallel x{args.workers}: {parallel_s:.2f}s "
        f"(serial ingest {ingest_s:.2f}s), identical={parallel_identical}"
    )

    # -- greedy: the approximate fast path over the same delta ---------------
    _, split3, _ = build_split(scale, args.seed)
    distinct3 = Distinct.from_models(
        split3.base, distinct.resem_model_, distinct.walk_model_, config
    )
    target_base = distinct3.resolve(TARGET)
    from repro.core.references import extract_references
    from repro.reldb.delta import apply_delta

    apply_delta(distinct3.db, split3.delta)
    refs = extract_references(distinct3.db, TARGET, distinct3.config)
    new_rows = [r for r in refs.rows if r not in set(target_base.rows)]
    t0 = time.perf_counter()
    extended, assignments = extend_resolution(
        distinct3, target_base, new_rows, backend="vectorized"
    )
    greedy_s = time.perf_counter() - t0
    exact_resolution = report.resolution(TARGET)
    exact_cluster_of = {}
    for idx, cluster in enumerate(exact_resolution.clusters):
        for row in cluster:
            exact_cluster_of[row] = idx
    greedy_cluster_of = {}
    for idx, cluster in enumerate(extended.clusters):
        for row in cluster:
            greedy_cluster_of[row] = idx
    # Agreement: a new row placed with the same *old* companions.
    agree = 0
    for row in new_rows:
        exact_mates = {
            r for r in exact_resolution.rows
            if r != row and r not in new_rows
            and exact_cluster_of.get(r) == exact_cluster_of.get(row)
        }
        greedy_mates = {
            r for r in extended.rows
            if r != row and r not in new_rows
            and greedy_cluster_of.get(r) == greedy_cluster_of.get(row)
        }
        agree += exact_mates == greedy_mates
    greedy = {
        "target": TARGET,
        "new_refs": len(new_rows),
        "seconds": greedy_s,
        "agreement": agree,
        "new_clusters": sum(a.created_new_cluster for a in assignments),
    }
    print(
        f"greedy ({TARGET}): {len(new_rows)} new refs in {greedy_s:.3f}s, "
        f"{agree}/{len(new_rows)} placements agree with exact"
    )

    # -- gates ---------------------------------------------------------------
    failures = []
    if not exact["byte_identical"]:
        failures.append("exact: ingest differs from cold refit")
    if not parallel["identical_to_serial"]:
        failures.append("parallel: worker results differ from serial ingest")
    if setup["delta_fraction"] > 0.10:
        failures.append("setup: delta exceeds the ≤10% regime")
    if not args.tiny:
        if exact["speedup"] < 5.0:
            failures.append(
                f"exact: ingest speedup {exact['speedup']:.1f}x below 5x"
            )
        if exact["pairs_reused"] <= 0:
            failures.append("exact: ladder reused no pairs at full scale")
    equivalent = not failures

    timestamp = args.timestamp or datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    sha = git_sha()
    report_payload = {
        "generated_by": "benchmarks/bench_ingest.py",
        "timestamp": timestamp,
        "git_sha": sha,
        "tiny": args.tiny,
        "config": {
            "scale": scale,
            "seed": args.seed,
            "workers": args.workers,
            "n_refs": setup["n_refs"],
            "delta_fraction": setup["delta_fraction"],
            "backend": config.similarity_backend,
            "propagation": config.propagation_backend,
        },
        "setup": setup,
        "exact": exact,
        "parallel": parallel,
        "greedy": greedy,
        "gates": {"failures": failures, "equivalent": equivalent},
    }
    args.out.write_text(json.dumps(report_payload, indent=2) + "\n")

    history_line = {
        "timestamp": timestamp,
        "git_sha": sha,
        "bench": "ingest",
        "tiny": args.tiny,
        "config": report_payload["config"],
        "speedups": {
            "ingest_vs_cold_refit": exact["speedup"],
            "parallel_ingest": parallel["speedup_vs_serial_ingest"],
        },
        "refs_dirty": exact["refs_dirty"],
        "pairs_reused": exact["pairs_reused"],
        "names_clean": exact["names_clean"],
        "equivalent": equivalent,
    }
    with args.history.open("a") as fh:
        fh.write(json.dumps(history_line) + "\n")

    print(f"ingest bench ({'tiny' if args.tiny else 'full'}) -> {args.out}")
    print(f"  history    : {timestamp} ({sha[:12]}) >> {args.history}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
