"""Perf-kernel benchmark: scalar vs vectorized vs parallel.

Standalone script (not a pytest bench — CI runs it directly)::

    PYTHONPATH=src python benchmarks/bench_perf_kernels.py [--tiny] [--out PATH]

It times the three execution strategies this repo offers for the
similarity stage on a synthetic ambiguous name:

1. **scalar** — the reference per-pair loops
   (:func:`repro.similarity.resemblance.set_resemblance`,
   :func:`repro.similarity.randomwalk.walk_probability`);
2. **vectorized** — the chunked sparse-matrix kernels of
   :mod:`repro.similarity.vectorized`, both the pair-list and the
   all-pairs-matrix forms;
3. **parallel** — the per-name process-pool map of
   :mod:`repro.perf.parallel` over several such names.

Results land in ``BENCH_perf.json`` (machine-readable: wall times,
speedup ratios, max kernel deviations). The script exits non-zero if the
vectorized kernels disagree with the scalar reference beyond ``ATOL`` —
that equivalence gate is what the CI bench-smoke job enforces; speedups
are reported for trend tracking, not gated in CI (they are
hardware-dependent).

Profiles are synthesized with a seeded RNG to the paper's scale (§5: the
largest evaluated name has 151 references), so the bench needs no world
generation or SVM fit and runs in seconds.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.paths.joinpath import JoinPath
from repro.paths.profiles import NeighborProfile
from repro.perf import ordered_process_map
from repro.reldb.joins import JoinStep
from repro.similarity.randomwalk import walk_probability
from repro.similarity.resemblance import set_resemblance
from repro.similarity.vectorized import (
    pair_resemblance_values,
    pair_walk_values,
    pairwise_resemblance_matrix,
    pairwise_walk_matrix,
    profile_matrices,
)

#: Kernel-equivalence tolerance (floating-point reassociation only).
ATOL = 1e-9

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

PATHS = [
    JoinPath([JoinStep("Publish", f"k{i}", f"R{i}", f"k{i}", "n1")])
    for i in range(4)
]


def synth_profiles(
    rng: np.ndarray, path: JoinPath, n_refs: int, n_columns: int, support: int
) -> list[NeighborProfile]:
    """Random profiles mimicking propagation output: each reference
    reaches ``support`` of ``n_columns`` end-relation tuples with a
    sub-distribution of forward mass and per-tuple backward probabilities."""
    profiles = []
    for row in range(n_refs):
        cols = rng.choice(n_columns, size=support, replace=False)
        fwd = rng.random(support)
        fwd /= fwd.sum() * rng.uniform(1.0, 1.5)  # forward mass <= 1
        back = rng.random(support)
        weights = {
            int(c): (float(f), float(b)) for c, f, b in zip(cols, fwd, back)
        }
        profiles.append(NeighborProfile(path=path, origin_row=row, weights=weights))
    return profiles


def all_pairs(n: int) -> list[tuple[int, int]]:
    return [(i, j) for i in range(n) for j in range(i + 1, n)]


def timed(fn, repeats: int):
    """Best-of-``repeats`` wall time and the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


# -- per-strategy feature computation ----------------------------------------


def scalar_features(profiles_by_path, pairs):
    resem = np.zeros((len(pairs), len(profiles_by_path)))
    walk = np.zeros_like(resem)
    for p, profiles in enumerate(profiles_by_path):
        for k, (i, j) in enumerate(pairs):
            resem[k, p] = set_resemblance(profiles[i], profiles[j])
            walk[k, p] = walk_probability(profiles[i], profiles[j])
    return resem, walk


def vectorized_features(profiles_by_path, pairs):
    idx_a = np.fromiter((i for i, _ in pairs), dtype=np.int64, count=len(pairs))
    idx_b = np.fromiter((j for _, j in pairs), dtype=np.int64, count=len(pairs))
    resem = np.zeros((len(pairs), len(profiles_by_path)))
    walk = np.zeros_like(resem)
    for p, profiles in enumerate(profiles_by_path):
        forward, backward = profile_matrices(profiles)
        resem[:, p] = pair_resemblance_values(forward, idx_a, idx_b)
        walk[:, p] = pair_walk_values(forward, backward, idx_a, idx_b)
    return resem, walk


def scalar_matrices(profiles_by_path):
    out = []
    for profiles in profiles_by_path:
        n = len(profiles)
        resem = np.zeros((n, n))
        walk = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                resem[i, j] = resem[j, i] = set_resemblance(profiles[i], profiles[j])
                walk[i, j] = walk[j, i] = walk_probability(profiles[i], profiles[j])
        out.append((resem, walk))
    return out


def vectorized_matrices(profiles_by_path):
    return [
        (pairwise_resemblance_matrix(p), pairwise_walk_matrix(p))
        for p in profiles_by_path
    ]


def _name_task(payload, name_idx):
    """Per-name work unit for the parallel phase (module-level: pickled
    by reference into the pool)."""
    profile_sets, pairs = payload
    resem, walk = vectorized_features(profile_sets[name_idx], pairs)
    return float(resem.sum() + walk.sum())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="small corpus for CI smoke (same gates, seconds of runtime)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1007)
    args = parser.parse_args(argv)

    if args.tiny:
        n_refs, n_columns, support, n_names, repeats = 40, 200, 20, 3, 1
    else:
        # The paper's largest evaluated name has 151 references (§5).
        n_refs, n_columns, support, n_names, repeats = 150, 600, 50, 6, 3

    rng = np.random.default_rng(args.seed)
    profiles_by_path = [
        synth_profiles(rng, path, n_refs, n_columns, support) for path in PATHS
    ]
    pairs = all_pairs(n_refs)

    # -- pair-list kernels (the shape compute_pair_features runs) ------------
    scalar_s, (resem_s, walk_s) = timed(
        lambda: scalar_features(profiles_by_path, pairs), repeats
    )
    vector_s, (resem_v, walk_v) = timed(
        lambda: vectorized_features(profiles_by_path, pairs), repeats
    )
    diff_resem = float(np.abs(resem_s - resem_v).max())
    diff_walk = float(np.abs(walk_s - walk_v).max())

    # -- all-pairs matrices ---------------------------------------------------
    scalar_m, grids_s = timed(lambda: scalar_matrices(profiles_by_path), 1)
    vector_m, grids_v = timed(lambda: vectorized_matrices(profiles_by_path), repeats)
    diff_matrix = 0.0
    for (rs, ws), (rv, wv) in zip(grids_s, grids_v):
        np.fill_diagonal(rs, 0.0)  # matrix kernels zero the diagonal
        np.fill_diagonal(ws, 0.0)
        wv = wv.toarray() if hasattr(wv, "toarray") else wv
        diff_matrix = max(
            diff_matrix,
            float(np.abs(rs - rv).max()),
            float(np.abs(ws - wv).max()),
        )

    # -- parallel per-name map ------------------------------------------------
    name_rng = np.random.default_rng(args.seed + 1)
    profile_sets = [
        [synth_profiles(name_rng, path, n_refs, n_columns, support) for path in PATHS]
        for _ in range(n_names)
    ]
    payload = (profile_sets, pairs)
    serial_p, serial_values = timed(
        lambda: [_name_task(payload, i) for i in range(n_names)], 1
    )
    t0 = time.perf_counter()
    outcomes = list(
        ordered_process_map(
            _name_task, payload, list(range(n_names)), workers=args.workers
        )
    )
    parallel_p = time.perf_counter() - t0
    parallel_values = [o.value for o in outcomes]
    parallel_identical = parallel_values == serial_values

    equivalent = max(diff_resem, diff_walk, diff_matrix) <= ATOL
    report = {
        "generated_by": "benchmarks/bench_perf_kernels.py",
        "tiny": args.tiny,
        "config": {
            "n_refs": n_refs,
            "n_columns": n_columns,
            "support": support,
            "n_paths": len(PATHS),
            "n_pairs": len(pairs),
            "n_names_parallel": n_names,
            "workers": args.workers,
            "seed": args.seed,
            "repeats": repeats,
        },
        "pair_kernels": {
            "scalar_seconds": scalar_s,
            "vectorized_seconds": vector_s,
            "speedup": scalar_s / vector_s,
            "max_abs_diff_resemblance": diff_resem,
            "max_abs_diff_walk": diff_walk,
        },
        "all_pairs_matrices": {
            "scalar_seconds": scalar_m,
            "vectorized_seconds": vector_m,
            "speedup": scalar_m / vector_m,
            "max_abs_diff": diff_matrix,
        },
        "parallel_map": {
            "serial_seconds": serial_p,
            "parallel_seconds": parallel_p,
            "speedup": serial_p / parallel_p,
            "results_identical": parallel_identical,
        },
        "equivalence": {"atol": ATOL, "equivalent": equivalent},
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"perf kernels ({'tiny' if args.tiny else 'full'} corpus) -> {args.out}")
    print(
        f"  pair kernels : scalar {scalar_s:.3f}s  vectorized {vector_s:.3f}s  "
        f"({report['pair_kernels']['speedup']:.1f}x)"
    )
    print(
        f"  all-pairs    : scalar {scalar_m:.3f}s  vectorized {vector_m:.3f}s  "
        f"({report['all_pairs_matrices']['speedup']:.1f}x)"
    )
    print(
        f"  parallel map : serial {serial_p:.3f}s  workers={args.workers} "
        f"{parallel_p:.3f}s  ({report['parallel_map']['speedup']:.2f}x, "
        f"identical={parallel_identical})"
    )
    print(
        f"  equivalence  : max diff {max(diff_resem, diff_walk, diff_matrix):.2e} "
        f"(atol {ATOL:g}) -> {'OK' if equivalent else 'FAIL'}"
    )
    if not equivalent:
        print("FAIL: vectorized kernels deviate from the scalar reference", file=sys.stderr)
        return 1
    if not parallel_identical:
        print("FAIL: parallel map results differ from serial", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
