"""Perf-kernel benchmark: scalar vs vectorized vs batched vs parallel.

Standalone script (not a pytest bench — CI runs it directly)::

    PYTHONPATH=src python benchmarks/bench_perf_kernels.py [--tiny] [--out PATH]

It times the execution strategies this repo offers for the propagation
and similarity stages on a synthetic ambiguous name:

1. **scalar** — the reference per-pair loops
   (:func:`repro.similarity.resemblance.set_resemblance`,
   :func:`repro.similarity.randomwalk.walk_probability`);
2. **vectorized** — the chunked sparse-matrix kernels of
   :mod:`repro.similarity.vectorized`, both the pair-list and the
   all-pairs-matrix forms;
3. **batched propagation** — :mod:`repro.paths.batch` SpMM propagation
   against the scalar :class:`~repro.paths.profiles.ProfileBuilder`
   walk, on a community-structured synthetic DBLP database;
4. **pair pruning** — :mod:`repro.perf.blocking` zero-overlap pruning
   against full evaluation, including the clustering-unchanged check;
5. **parallel** — the per-name map of :mod:`repro.perf.parallel`, with
   dispatch mode chosen by :func:`repro.perf.should_inline`.

Results land in ``BENCH_perf.json`` (machine-readable: wall times,
speedup ratios, max kernel deviations), and a one-line summary of each
run is appended to ``BENCH_history.jsonl`` for trend tracking across
commits. The script exits non-zero if any backend disagrees with its
scalar reference beyond ``ATOL``, if pruning changes any feature value
or the clustering, or if the parallel map's output differs from serial —
those equivalence gates are what the CI bench-smoke job enforces;
speedups are reported for trend tracking, not gated in CI (they are
hardware-dependent).

Kernel-stage profiles are synthesized with a seeded RNG to the paper's
scale (§5: the largest evaluated name has 151 references); the
propagation stages run on a generated DBLP-style database whose papers
split into disjoint coauthor/conference communities (the structure that
makes zero-overlap pruning bite), so the bench needs no world generation
or SVM fit and runs in seconds.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster.agglomerative import AgglomerativeClusterer
from repro.cluster.composite import CompositeMeasure
from repro.core.features import compute_pair_features, pair_matrix
from repro.data.dblp_schema import new_dblp_database
from repro.obs import enable_tracing, get_metrics, span, write_trace
from repro.paths.joinpath import JoinPath
from repro.paths.profiles import NeighborProfile, ProfileBuilder
from repro.paths.propagation import make_exclusions
from repro.perf import ordered_process_map, should_inline
from repro.reldb.joins import JoinStep
from repro.similarity.combine import uniform_weights
from repro.similarity.randomwalk import walk_probability
from repro.similarity.resemblance import set_resemblance
from repro.similarity.vectorized import (
    pair_resemblance_values,
    pair_walk_values,
    pairwise_resemblance_matrix,
    pairwise_walk_matrix,
    profile_matrices,
)

#: Kernel-equivalence tolerance (floating-point reassociation only).
ATOL = 1e-9

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
DEFAULT_HISTORY = Path(__file__).resolve().parent.parent / "BENCH_history.jsonl"


def git_sha() -> str:
    """The commit this run measured, for provenance; "unknown" outside git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent.parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"

PATHS = [
    JoinPath([JoinStep("Publish", f"k{i}", f"R{i}", f"k{i}", "n1")])
    for i in range(4)
]

# Join steps of the DBLP schema, for the propagation-stage paths.
PUB_PAP = JoinStep("Publish", "paper_key", "Publications", "paper_key", "n1")
PUB_AUTH = JoinStep("Publish", "author_key", "Authors", "author_key", "n1")
PAP_PROC = JoinStep("Publications", "proc_key", "Proceedings", "proc_key", "n1")
PROC_CONF = JoinStep("Proceedings", "conf_key", "Conferences", "conf_key", "n1")

#: The four propagation-bench paths: coauthors, conference, proceedings
#: siblings, and coauthors' papers (a mix of short and high-fanout walks).
PROP_PATHS = [
    JoinPath([PUB_PAP, PUB_PAP.reverse(), PUB_AUTH]),
    JoinPath([PUB_PAP, PAP_PROC, PROC_CONF]),
    JoinPath([PUB_PAP, PAP_PROC, PAP_PROC.reverse()]),
    JoinPath(
        [PUB_PAP, PUB_PAP.reverse(), PUB_AUTH, PUB_AUTH.reverse(), PUB_PAP]
    ),
]


def synth_community_db(n_refs: int, n_communities: int, seed: int):
    """A DBLP-style database whose references split into disjoint communities.

    One ambiguous author (row 0) appears on ``n_refs`` papers; papers are
    assigned round-robin to ``n_communities`` communities with disjoint
    coauthor pools and disjoint conferences, so references of different
    communities share no neighbor tuples on any of ``PROP_PATHS`` — the
    structure zero-overlap pruning exploits. Returns the database and the
    Publish row ids of the ambiguous references.
    """
    rng = np.random.default_rng(seed)
    coauthors_per_comm = 40
    db = new_dblp_database()

    authors = [(0, "J Smith")]
    pools = []
    next_key = 1
    for c in range(n_communities):
        pool = list(range(next_key, next_key + coauthors_per_comm))
        authors.extend((k, f"c{c} author {k}") for k in pool)
        pools.append(pool)
        next_key += coauthors_per_comm

    confs = [(c, f"CONF{c}", f"publisher {c}") for c in range(n_communities)]
    procs = []
    proc_ids = [[] for _ in range(n_communities)]
    pid = 0
    for c in range(n_communities):
        for year in range(4):
            procs.append((pid, c, 2000 + year, f"city {pid}"))
            proc_ids[c].append(pid)
            pid += 1

    publications = []
    publish = []
    ref_rows = []
    paper_key = 0
    for r in range(n_refs):
        c = r % n_communities
        proc = int(rng.choice(proc_ids[c]))
        publications.append((paper_key, f"paper {paper_key}", proc))
        ref_rows.append(len(publish))
        publish.append((paper_key, 0))
        for co in rng.choice(pools[c], size=5, replace=False):
            publish.append((paper_key, int(co)))
        paper_key += 1
    # Coauthor-only filler papers: give the coauthors other publications
    # so the longer walks have realistic fanout (each coauthor circle is
    # shared by many references — the redundancy batched SpMM dedups).
    for c in range(n_communities):
        for _ in range(2 * (n_refs // n_communities)):
            proc = int(rng.choice(proc_ids[c]))
            publications.append((paper_key, f"paper {paper_key}", proc))
            for co in rng.choice(pools[c], size=5, replace=False):
                publish.append((paper_key, int(co)))
            paper_key += 1

    db.insert_many("Authors", authors)
    db.insert_many("Conferences", confs)
    db.insert_many("Proceedings", procs)
    db.insert_many("Publications", publications)
    db.insert_many("Publish", publish)
    db.check_integrity()
    return db, ref_rows


def synth_profiles(
    rng: np.ndarray, path: JoinPath, n_refs: int, n_columns: int, support: int
) -> list[NeighborProfile]:
    """Random profiles mimicking propagation output: each reference
    reaches ``support`` of ``n_columns`` end-relation tuples with a
    sub-distribution of forward mass and per-tuple backward probabilities."""
    profiles = []
    for row in range(n_refs):
        cols = rng.choice(n_columns, size=support, replace=False)
        fwd = rng.random(support)
        fwd /= fwd.sum() * rng.uniform(1.0, 1.5)  # forward mass <= 1
        back = rng.random(support)
        weights = {
            int(c): (float(f), float(b)) for c, f, b in zip(cols, fwd, back)
        }
        profiles.append(NeighborProfile(path=path, origin_row=row, weights=weights))
    return profiles


def all_pairs(n: int) -> list[tuple[int, int]]:
    return [(i, j) for i in range(n) for j in range(i + 1, n)]


def timed(fn, repeats: int):
    """Best-of-``repeats`` wall time and the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


# -- per-strategy feature computation ----------------------------------------


def scalar_features(profiles_by_path, pairs):
    resem = np.zeros((len(pairs), len(profiles_by_path)))
    walk = np.zeros_like(resem)
    for p, profiles in enumerate(profiles_by_path):
        for k, (i, j) in enumerate(pairs):
            resem[k, p] = set_resemblance(profiles[i], profiles[j])
            walk[k, p] = walk_probability(profiles[i], profiles[j])
    return resem, walk


def vectorized_features(profiles_by_path, pairs):
    idx_a = np.fromiter((i for i, _ in pairs), dtype=np.int64, count=len(pairs))
    idx_b = np.fromiter((j for _, j in pairs), dtype=np.int64, count=len(pairs))
    resem = np.zeros((len(pairs), len(profiles_by_path)))
    walk = np.zeros_like(resem)
    for p, profiles in enumerate(profiles_by_path):
        forward, backward = profile_matrices(profiles)
        resem[:, p] = pair_resemblance_values(forward, idx_a, idx_b)
        walk[:, p] = pair_walk_values(forward, backward, idx_a, idx_b)
    return resem, walk


def scalar_matrices(profiles_by_path):
    out = []
    for profiles in profiles_by_path:
        n = len(profiles)
        resem = np.zeros((n, n))
        walk = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                resem[i, j] = resem[j, i] = set_resemblance(profiles[i], profiles[j])
                walk[i, j] = walk[j, i] = walk_probability(profiles[i], profiles[j])
        out.append((resem, walk))
    return out


def vectorized_matrices(profiles_by_path):
    return [
        (pairwise_resemblance_matrix(p), pairwise_walk_matrix(p))
        for p in profiles_by_path
    ]


def _name_task(payload, name_idx):
    """Per-name work unit for the parallel phase (module-level: pickled
    by reference into the pool)."""
    profile_sets, pairs = payload
    resem, walk = vectorized_features(profile_sets[name_idx], pairs)
    return float(resem.sum() + walk.sum())


# -- propagation + pruning stages (real database) -----------------------------


def _fresh_builder(db) -> ProfileBuilder:
    """A builder under the ambiguous name's exclusions, cold caches."""
    return ProfileBuilder(db, PROP_PATHS, make_exclusions(Authors={0}))


def bench_propagation(db, ref_rows, repeats: int) -> dict:
    """Scalar ``warm`` walk vs batched SpMM over the same references.

    Fresh builders per timing run so neither side benefits from a warm
    profile cache; equivalence compares every per-reference profile of
    every path (values *and* supports).
    """
    scalar_s, builder = timed(
        lambda: (lambda b: (b.warm(ref_rows), b)[1])(_fresh_builder(db)), repeats
    )
    batched_s, matrices = timed(
        lambda: _fresh_builder(db).matrices_for(ref_rows), repeats
    )

    max_diff = 0.0
    supports_identical = True
    for path in PROP_PATHS:
        batched = matrices[path]
        for k, row in enumerate(ref_rows):
            scalar = builder.profile(path, row).weights
            got = batched.weights_for(k)
            if set(scalar) != set(got):
                supports_identical = False
            for t in set(scalar) | set(got):
                sf, sb = scalar.get(t, (0.0, 0.0))
                gf, gb = got.get(t, (0.0, 0.0))
                max_diff = max(max_diff, abs(sf - gf), abs(sb - gb))
    return {
        "scalar_seconds": scalar_s,
        "batched_seconds": batched_s,
        "speedup": scalar_s / batched_s,
        "max_abs_diff": max_diff,
        "supports_identical": supports_identical,
    }


def _counter(name: str) -> float:
    return float(get_metrics().snapshot()["counters"].get(name, 0.0))


def bench_pair_pruning(
    db, ref_rows, backend: str, propagation: str, repeats: int
) -> dict:
    """Full evaluation vs zero-overlap pruning through the pipeline route.

    Pruned pairs are *exact* zeros; a full evaluation of the same pair
    carries the kernel's reassociation noise (~1e-16) around that zero,
    so features are compared at ``ATOL`` — and the downstream
    agglomerative clustering must produce identical clusters.
    """
    pairs = [
        (ref_rows[i], ref_rows[j])
        for i in range(len(ref_rows))
        for j in range(i + 1, len(ref_rows))
    ]
    builder = _fresh_builder(db)
    if propagation == "scalar":
        builder.warm(ref_rows)  # compare the similarity stage, not the cache
    run_full = lambda: compute_pair_features(
        builder, pairs, backend=backend, propagation=propagation, prune=False
    )
    run_pruned = lambda: compute_pair_features(
        builder, pairs, backend=backend, propagation=propagation, prune=True
    )
    full_s, full = timed(run_full, repeats)
    pruned_before = _counter("blocking.pairs_pruned")
    pruned_s, pruned = timed(run_pruned, repeats)
    pruned_count = int(
        (_counter("blocking.pairs_pruned") - pruned_before) / repeats
    )

    features_max_diff = max(
        float(np.abs(full.resemblance - pruned.resemblance).max()),
        float(np.abs(full.walk - pruned.walk).max()),
    )

    def clusters_of(features):
        uniform = uniform_weights(len(PROP_PATHS))
        resem_values, walk_values = features.combined(uniform, uniform)
        resem = pair_matrix(ref_rows, features.pairs, resem_values)
        walk = pair_matrix(ref_rows, features.pairs, walk_values)
        result = AgglomerativeClusterer(min_sim=0.005).cluster(
            CompositeMeasure(resem, walk)
        )
        return sorted(sorted(c) for c in result.clusters)

    clusterings_identical = clusters_of(full) == clusters_of(pruned)
    return {
        "full_seconds": full_s,
        "pruned_seconds": pruned_s,
        "speedup": full_s / pruned_s,
        "pairs_total": len(pairs),
        "pairs_pruned": pruned_count,
        "max_abs_diff": features_max_diff,
        "clusterings_identical": clusterings_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="small corpus for CI smoke (same gates, seconds of runtime)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1007)
    parser.add_argument(
        "--backend",
        choices=("scalar", "vectorized"),
        default="vectorized",
        help="similarity backend for the pair-pruning stage",
    )
    parser.add_argument(
        "--propagation",
        choices=("scalar", "batched"),
        default="batched",
        help="propagation backend for the pair-pruning stage",
    )
    parser.add_argument(
        "--timestamp",
        default=None,
        help="timestamp recorded in the history line (default: now, UTC); "
             "CI passes the commit timestamp for stable trend axes",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=DEFAULT_HISTORY,
        help="JSONL file to append this run's summary line to",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="enable tracing and write the bench's span tree + metrics "
             "JSON here (feed to `repro report` for the Chrome export)",
    )
    args = parser.parse_args(argv)

    if args.trace_out:
        enable_tracing()

    if args.tiny:
        n_refs, n_columns, support, n_names, repeats = 40, 200, 20, 3, 1
    else:
        # The paper's largest evaluated name has 151 references (§5).
        n_refs, n_columns, support, n_names, repeats = 150, 600, 50, 6, 3
    n_communities = 3

    rng = np.random.default_rng(args.seed)
    profiles_by_path = [
        synth_profiles(rng, path, n_refs, n_columns, support) for path in PATHS
    ]
    pairs = all_pairs(n_refs)

    # -- pair-list kernels (the shape compute_pair_features runs) ------------
    with span("bench.pair_kernels", n_pairs=len(pairs)):
        scalar_s, (resem_s, walk_s) = timed(
            lambda: scalar_features(profiles_by_path, pairs), repeats
        )
        vector_s, (resem_v, walk_v) = timed(
            lambda: vectorized_features(profiles_by_path, pairs), repeats
        )
    diff_resem = float(np.abs(resem_s - resem_v).max())
    diff_walk = float(np.abs(walk_s - walk_v).max())

    # -- all-pairs matrices ---------------------------------------------------
    with span("bench.all_pairs_matrices"):
        scalar_m, grids_s = timed(lambda: scalar_matrices(profiles_by_path), 1)
        vector_m, grids_v = timed(
            lambda: vectorized_matrices(profiles_by_path), repeats
        )
    diff_matrix = 0.0
    for (rs, ws), (rv, wv) in zip(grids_s, grids_v):
        np.fill_diagonal(rs, 0.0)  # matrix kernels zero the diagonal
        np.fill_diagonal(ws, 0.0)
        wv = wv.toarray() if hasattr(wv, "toarray") else wv
        diff_matrix = max(
            diff_matrix,
            float(np.abs(rs - rv).max()),
            float(np.abs(ws - wv).max()),
        )

    # -- batched propagation + zero-overlap pruning (real database) ----------
    prop_db, ref_rows = synth_community_db(n_refs, n_communities, args.seed + 2)
    with span("bench.propagation", n_refs=len(ref_rows)):
        propagation = bench_propagation(prop_db, ref_rows, repeats)
    with span("bench.pair_pruning"):
        pruning = bench_pair_pruning(
            prop_db, ref_rows, args.backend, args.propagation, repeats
        )

    # -- parallel per-name map ------------------------------------------------
    name_rng = np.random.default_rng(args.seed + 1)
    profile_sets = [
        [synth_profiles(name_rng, path, n_refs, n_columns, support) for path in PATHS]
        for _ in range(n_names)
    ]
    payload = (profile_sets, pairs)
    serial_p, serial_values = timed(
        lambda: [_name_task(payload, i) for i in range(n_names)], 1
    )
    task_cost = serial_p / n_names
    inline = should_inline(n_names, args.workers, task_cost_hint=task_cost)
    chunk_size = 1 if inline else max(1, n_names // (args.workers * 2))
    t0 = time.perf_counter()
    with span("bench.parallel_map", workers=args.workers, n_names=n_names):
        outcomes = list(
            ordered_process_map(
                _name_task,
                payload,
                list(range(n_names)),
                workers=args.workers,
                chunk_size=chunk_size,
                inline=inline,
            )
        )
    parallel_p = time.perf_counter() - t0
    parallel_values = [o.value for o in outcomes]
    parallel_identical = parallel_values == serial_values

    equivalent = (
        max(
            diff_resem,
            diff_walk,
            diff_matrix,
            propagation["max_abs_diff"],
            pruning["max_abs_diff"],
        )
        <= ATOL
    )
    # Provenance: every report and history line says which commit and when,
    # so trend lines and the regression observatory can attribute changes.
    timestamp = args.timestamp or datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    sha = git_sha()
    report = {
        "generated_by": "benchmarks/bench_perf_kernels.py",
        "timestamp": timestamp,
        "git_sha": sha,
        "tiny": args.tiny,
        "config": {
            "n_refs": n_refs,
            "n_columns": n_columns,
            "support": support,
            "n_paths": len(PATHS),
            "n_pairs": len(pairs),
            "n_names_parallel": n_names,
            "n_communities": n_communities,
            "workers": args.workers,
            "seed": args.seed,
            "repeats": repeats,
            "backend": args.backend,
            "propagation": args.propagation,
        },
        "pair_kernels": {
            "scalar_seconds": scalar_s,
            "vectorized_seconds": vector_s,
            "speedup": scalar_s / vector_s,
            "max_abs_diff_resemblance": diff_resem,
            "max_abs_diff_walk": diff_walk,
        },
        "all_pairs_matrices": {
            "scalar_seconds": scalar_m,
            "vectorized_seconds": vector_m,
            "speedup": scalar_m / vector_m,
            "max_abs_diff": diff_matrix,
        },
        "propagation": propagation,
        "pair_pruning": pruning,
        "parallel_map": {
            "serial_seconds": serial_p,
            "parallel_seconds": parallel_p,
            "speedup": serial_p / parallel_p,
            "mode": "inline" if inline else "pool",
            "chunk_size": chunk_size,
            "task_cost_seconds": task_cost,
            "results_identical": parallel_identical,
        },
        "equivalence": {"atol": ATOL, "equivalent": equivalent},
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    history_line = {
        "timestamp": timestamp,
        "git_sha": sha,
        "tiny": args.tiny,
        "config": report["config"],
        "speedups": {
            "pair_kernels": report["pair_kernels"]["speedup"],
            "all_pairs_matrices": report["all_pairs_matrices"]["speedup"],
            "propagation": propagation["speedup"],
            "pair_pruning": pruning["speedup"],
            "parallel_map": report["parallel_map"]["speedup"],
        },
        "parallel_mode": report["parallel_map"]["mode"],
        "pairs_pruned": pruning["pairs_pruned"],
        "equivalent": equivalent,
    }
    with args.history.open("a") as fh:
        fh.write(json.dumps(history_line) + "\n")

    print(f"perf kernels ({'tiny' if args.tiny else 'full'} corpus) -> {args.out}")
    print(
        f"  pair kernels : scalar {scalar_s:.3f}s  vectorized {vector_s:.3f}s  "
        f"({report['pair_kernels']['speedup']:.1f}x)"
    )
    print(
        f"  all-pairs    : scalar {scalar_m:.3f}s  vectorized {vector_m:.3f}s  "
        f"({report['all_pairs_matrices']['speedup']:.1f}x)"
    )
    print(
        f"  propagation  : scalar {propagation['scalar_seconds']:.3f}s  "
        f"batched {propagation['batched_seconds']:.3f}s  "
        f"({propagation['speedup']:.1f}x, max diff "
        f"{propagation['max_abs_diff']:.2e})"
    )
    print(
        f"  pair pruning : full {pruning['full_seconds']:.3f}s  pruned "
        f"{pruning['pruned_seconds']:.3f}s  ({pruning['speedup']:.2f}x, "
        f"{pruning['pairs_pruned']}/{pruning['pairs_total']} pairs pruned)"
    )
    print(
        f"  parallel map : serial {serial_p:.3f}s  workers={args.workers} "
        f"{parallel_p:.3f}s  ({report['parallel_map']['speedup']:.2f}x, "
        f"mode={report['parallel_map']['mode']}, "
        f"identical={parallel_identical})"
    )
    print(
        f"  equivalence  : max diff "
        f"{max(diff_resem, diff_walk, diff_matrix, propagation['max_abs_diff']):.2e} "
        f"(atol {ATOL:g}) -> {'OK' if equivalent else 'FAIL'}"
    )
    print(f"  history      : {timestamp} ({sha[:12]}) >> {args.history}")
    if args.trace_out:
        write_trace(args.trace_out)
        print(f"  trace        : {args.trace_out}")
    if not equivalent:
        print(
            "FAIL: a backend deviates from the scalar reference beyond ATOL",
            file=sys.stderr,
        )
        return 1
    if not propagation["supports_identical"]:
        print("FAIL: batched propagation support differs from scalar", file=sys.stderr)
        return 1
    if not pruning["clusterings_identical"]:
        print("FAIL: pair pruning changed the clustering", file=sys.stderr)
        return 1
    if not parallel_identical:
        print("FAIL: parallel map results differ from serial", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
