"""Cross-domain generality: the music-store schema (§1's allmusic example).

The paper motivates object distinction with songs/albums sharing titles.
This bench runs the unchanged pipeline on the music-store database (bands
sharing the stage name "The Forgotten") — nothing DBLP-specific is involved,
only a different DistinctConfig binding — and sweeps the threshold.
"""

from repro import Distinct
from repro.data.music import (
    MusicConfig,
    generate_music_database,
    music_distinct_config,
)
from repro.eval.metrics import pairwise_scores
from repro.eval.reporting import format_table

GRID = (0.001, 0.003, 0.006, 0.01, 0.03)


def test_music_domain(benchmark, report):
    config = MusicConfig()
    db, truth = generate_music_database(config)
    distinct = Distinct(music_distinct_config()).fit(db)

    name = config.ambiguous_name
    prep = distinct.prepare(name)
    gold = list(truth.clusters_for(name).values())

    rows = []
    best_f1 = 0.0
    for min_sim in GRID:
        resolution = distinct.cluster_prepared(prep, min_sim=min_sim)
        scores = pairwise_scores(resolution.clusters, gold)
        best_f1 = max(best_f1, scores.f1)
        rows.append(
            [min_sim, resolution.n_clusters, scores.precision, scores.recall, scores.f1]
        )

    table = format_table(
        ["min-sim", "#clusters", "precision", "recall", "f1"],
        rows,
        title=(
            f"Music store: {len(prep.rows)} credits of {name!r} "
            f"({len(gold)} real bands, {len(distinct.paths_)} join paths "
            "enumerated on the music schema)"
        ),
        float_format="{:.4f}",
    )
    report("music_domain", table)

    # The DBLP-calibrated default threshold transfers to the music domain.
    default = distinct.cluster_prepared(prep, min_sim=music_distinct_config().min_sim)
    assert pairwise_scores(default.clusters, gold).f1 > 0.9
    assert best_f1 > 0.95

    def kernel():
        return distinct.cluster_prepared(prep)

    benchmark(kernel)
