"""Fig 5: the cluster diagram for "Wei Wang" (14 real authors).

The paper's figure shows one gray box per real Wei Wang with reference
counts (UNC-CH 57, Fudan 31, UNSW 19, ...) and arrows marking DISTINCT's
mistakes. This bench renders the text analogue (cluster composition +
split/merge error summary) and the Graphviz DOT export.

The timed kernel is the end-to-end ``resolve`` for the name, which is the
paper's per-name unit of work.
"""

from repro.eval.experiment import score_resolution
from repro.eval.visualize import render_clusters_dot, render_clusters_text


def test_fig5_wei_wang(benchmark, distinct, preparations, db_truth, report):
    _, truth = db_truth
    resolution = distinct.cluster_prepared(preparations["Wei Wang"])
    text = render_clusters_text(resolution, truth)
    report("fig5_wei_wang", text)

    dot = render_clusters_dot(resolution, truth)
    from benchmarks.conftest import RESULTS_DIR

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fig5_wei_wang.dot").write_text(dot + "\n")

    result = score_resolution(resolution, truth)
    # Paper: "in general DISTINCT does a very good job ... although it makes
    # some mistakes" — the resolution should be strong but imperfect-ish;
    # assert the strong part and the coverage.
    assert result.n_refs == 141
    assert result.n_entities == 14
    assert result.scores.f1 > 0.8
    assert 10 <= result.n_clusters <= 20

    # The two largest predicted clusters should be dominated by the two
    # largest real authors (57 and 31 references).
    largest = max(resolution.clusters, key=len)
    from collections import Counter

    majority_entity, count = Counter(
        truth.entity_of_row[row] for row in largest
    ).most_common(1)[0]
    assert count / len(largest) > 0.8

    def kernel():
        return distinct.resolve("Wei Wang")

    fresh = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert fresh.n_clusters == resolution.n_clusters
