"""Fig 4: accuracy and f-measure of the six pipeline variants.

Paper reference points: DISTINCT leads the unsupervised single-measure
baselines ([1] set resemblance, [9] random walk) by ~15 points of
f-measure; supervised learning contributes >10 points; combining the two
measures contributes ~3 points. Every variant except DISTINCT gets the
min-sim that maximizes its average accuracy (as in the paper).

The timed kernel is one full variant evaluation at one threshold.
"""

from repro.core.variants import FIG4_VARIANTS, variant_by_key
from repro.eval.experiment import run_experiment, run_variant
from repro.eval.reporting import format_bar_chart, format_table
from repro.eval.significance import paired_bootstrap


def test_fig4_variants(benchmark, distinct, preparations, db_truth, report):
    _, truth = db_truth
    results = run_experiment(
        distinct, truth, list(preparations), FIG4_VARIANTS
    )

    labels = {v.key: v.label for v in FIG4_VARIANTS}
    rows = [
        [labels[key], r.min_sim, r.avg_accuracy, r.avg_f1, r.avg_precision, r.avg_recall]
        for key, r in results.items()
    ]
    table = format_table(
        ["variant", "min-sim", "accuracy", "f-measure", "precision", "recall"],
        rows,
        title="Fig 4 (table form): accuracy and f-measure of each variant",
        float_format="{:.4f}",
    )
    chart = format_bar_chart(
        [(labels[key], r.avg_f1) for key, r in results.items()],
        title="Fig 4 (bars): average f-measure",
    )
    comparisons = [
        paired_bootstrap(results["distinct"], results[key], seed=1)
        for key in ("unsup_combined", "sup_resem", "sup_walk", "unsup_resem", "unsup_walk")
    ]
    significance = "\n".join(
        "paired bootstrap (f1): " + str(c) for c in comparisons
    )
    report("fig4_variants", table + "\n\n" + chart + "\n\n" + significance)

    f1 = {key: r.avg_f1 for key, r in results.items()}
    # Shape assertions from the paper:
    # 1. DISTINCT beats every other variant.
    assert all(f1["distinct"] >= f1[k] - 1e-9 for k in f1)
    # 2. Supervision helps (combined measure, learned vs uniform weights).
    assert f1["distinct"] > f1["unsup_combined"] + 0.05
    # 3. Each supervised single measure beats its unsupervised counterpart.
    assert f1["sup_resem"] > f1["unsup_resem"]
    assert f1["sup_walk"] > f1["unsup_walk"]
    # 4. Combining measures is at least as good as either alone.
    assert f1["distinct"] >= max(f1["sup_resem"], f1["sup_walk"]) - 1e-9

    variant = variant_by_key("sup_resem")

    def kernel():
        return run_variant(distinct, preparations, truth, variant, min_sim=0.03)

    result = benchmark(kernel)
    assert result.names
