"""Ablation E: the citation linkage the paper mentions but Fig 2 omits.

§1 lists citations among the linkage types connecting author references,
but the evaluated schema (Fig 2) has none. We generate the same world with
an optional ``Cites(citing, cited)`` relation (community-biased citations),
refit on the citation-bearing schema (which roughly doubles the path set),
and compare against the citation-free schema on a subset of names.
"""

from repro import Distinct, DistinctConfig, GeneratorConfig, generate_world
from repro.core.variants import variant_by_key
from repro.data.world import world_to_database
from repro.eval.experiment import prepare_names, run_variant
from repro.eval.reporting import format_table

NAMES = ["Wei Wang", "Rakesh Kumar", "Bing Liu", "Hui Fang"]


def _evaluate(with_citations: bool):
    config = GeneratorConfig(seed=7, with_citations=with_citations)
    world = generate_world(config)
    db, truth = world_to_database(world, with_citations=with_citations)
    distinct = Distinct(DistinctConfig(svm_C=10.0)).fit(db)
    preparations = prepare_names(distinct, NAMES)
    result = run_variant(
        distinct,
        preparations,
        truth,
        variant_by_key("distinct"),
        distinct.config.min_sim,
    )
    return distinct, result


def test_citation_linkage(benchmark, report):
    without_d, without = _evaluate(with_citations=False)
    with_d, with_cites = _evaluate(with_citations=True)

    rows = [
        [
            "Fig-2 schema (no citations)",
            len(without_d.paths_),
            without.avg_precision,
            without.avg_recall,
            without.avg_f1,
        ],
        [
            "with Cites relation",
            len(with_d.paths_),
            with_cites.avg_precision,
            with_cites.avg_recall,
            with_cites.avg_f1,
        ],
    ]
    table = format_table(
        ["schema", "#paths", "precision", "recall", "f1"],
        rows,
        title="Ablation E: citation linkage (4 names, fixed C)",
        float_format="{:.4f}",
    )
    report("ablation_citations", table)

    # Citation paths in this world carry community-level (not entity-level)
    # signal; supervised weighting must keep the pipeline in the same
    # quality band rather than letting the extra noisy paths destroy it.
    assert with_cites.avg_f1 > without.avg_f1 - 0.15
    assert without.avg_f1 > 0.8

    citation_weights = [
        abs(w)
        for sig, w in zip(with_d.resem_model_.signatures, with_d.resem_model_.weights)
        if "Cites" in sig
    ]
    coauthor_weight = max(
        w
        for sig, w in zip(with_d.resem_model_.signatures, with_d.resem_model_.weights)
        if "Authors" in sig
    )
    # The coauthor path outweighs every citation path.
    assert coauthor_weight > max(citation_weights)

    prep = with_d.prepare("Hui Fang")

    def kernel():
        return with_d.cluster_prepared(prep)

    benchmark(kernel)
