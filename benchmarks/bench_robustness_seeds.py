"""Robustness: is Table 2 a property of the method or of one lucky world?

Re-runs the full pipeline (generate -> fit -> resolve all ten names) on
three different world seeds with a fixed SVM cost, reporting mean and
standard deviation of the averaged metrics. The paper has a single world
(reality); a reproduction should show its headline number is stable.
"""

import numpy as np

from repro import Distinct, DistinctConfig, GeneratorConfig, generate_world
from repro.core.variants import variant_by_key
from repro.data.world import world_to_database
from repro.eval.experiment import prepare_names, run_variant
from repro.eval.reporting import format_table

SEEDS = (7, 101, 202)


def test_seed_robustness(benchmark, report):
    rows = []
    f1s = []
    for seed in SEEDS:
        world = generate_world(GeneratorConfig(seed=seed))
        db, truth = world_to_database(world)
        distinct = Distinct(DistinctConfig(svm_C=10.0)).fit(db)
        preparations = prepare_names(distinct, world.ambiguous_names)
        result = run_variant(
            distinct,
            preparations,
            truth,
            variant_by_key("distinct"),
            distinct.config.min_sim,
        )
        f1s.append(result.avg_f1)
        rows.append(
            [seed, result.avg_precision, result.avg_recall, result.avg_f1]
        )

    rows.append(
        [
            "mean +- std",
            float(np.mean([r[1] for r in rows])),
            float(np.mean([r[2] for r in rows])),
            f"{np.mean(f1s):.4f} +- {np.std(f1s):.4f}",
        ]
    )
    table = format_table(
        ["world seed", "precision", "recall", "f1"],
        rows,
        title=(
            "Robustness: Table-2 average over three independent worlds "
            "(fixed C, shipped min-sim)"
        ),
        float_format="{:.4f}",
    )
    report("robustness_seeds", table)

    assert min(f1s) > 0.8, "headline quality should not depend on the seed"
    assert float(np.std(f1s)) < 0.08

    config = GeneratorConfig(seed=7, scale=0.3)

    def kernel():
        world = generate_world(config)
        db, _ = world_to_database(world)
        return Distinct(DistinctConfig(svm_C=10.0, n_positive=200, n_negative=200)).fit(db)

    benchmark.pedantic(kernel, rounds=1, iterations=1)
