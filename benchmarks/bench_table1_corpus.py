"""Table 1: the ten ambiguous names and their (#authors, #references).

The synthetic world injects the paper's counts exactly, so this bench both
regenerates the table and verifies the corpus against the paper's numbers.
The timed kernel is world generation + relational loading.
"""

from repro import GeneratorConfig, generate_world
from repro.core.references import reference_counts_by_name
from repro.data.ambiguity import TABLE1_EXPECTED
from repro.data.world import world_to_database
from repro.eval.reporting import format_table


def test_table1_corpus(benchmark, world, db_truth, report):
    db, truth = db_truth

    rows = []
    for name in world.ambiguous_names:
        entities = truth.clusters_for(name)
        refs = truth.rows_of_name[name]
        expected_authors, expected_refs = TABLE1_EXPECTED[name]
        rows.append(
            [name, len(entities), len(refs), expected_authors, expected_refs]
        )
        assert len(entities) == expected_authors
        assert len(refs) == expected_refs

    stats = world.stats()
    header = (
        f"world: {stats['papers']} papers, {stats['authorships']} authorship "
        f"rows, {stats['distinct_names']} distinct names "
        f"(paper: ~616K papers, 1.29M references, 127,124 authors)"
    )
    table = format_table(
        ["name", "#authors", "#refs", "paper #authors", "paper #refs"],
        rows,
        title="Table 1: names corresponding to multiple authors\n" + header,
    )
    report("table1_corpus", table)

    def kernel():
        w = generate_world(GeneratorConfig(scale=0.25))
        return world_to_database(w)[0]

    result = benchmark(kernel)
    assert reference_counts_by_name(result)  # non-empty world


def test_table1_reference_counts_consistent(benchmark, db_truth, world):
    """Cross-check: reference counts via the query layer match ground truth."""
    db, truth = db_truth
    counts = benchmark(reference_counts_by_name, db)
    for name in world.ambiguous_names:
        assert counts[name] == len(truth.rows_of_name[name])
