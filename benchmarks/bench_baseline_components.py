"""Extra baseline: transitive closure (connected components) vs DISTINCT.

The simplest conceivable grouping rule — link any two references whose
combined similarity clears a threshold, take connected components — is
equivalent to Single-Link clustering and is what naive ER systems do. This
bench contrasts it with the composite agglomerative engine over identical
pair similarities, each at its best threshold.
"""

import numpy as np

from repro.eval.metrics import pairwise_scores
from repro.eval.reporting import format_table
from repro.graph.refgraph import connected_component_clusters, reference_graph

GRID = (1e-4, 1e-3, 0.003, 0.006, 0.01, 0.03, 0.1, 0.3)


def test_components_baseline(benchmark, distinct, preparations, db_truth, report):
    _, truth = db_truth

    resolutions = {
        name: distinct.cluster_prepared(prep, min_sim=distinct.config.min_sim)
        for name, prep in preparations.items()
    }
    graphs = {name: reference_graph(res) for name, res in resolutions.items()}

    def components_f1(min_sim: float) -> float:
        scores = []
        for name, graph in graphs.items():
            clusters = connected_component_clusters(graph, min_sim)
            gold = list(truth.clusters_for(name).values())
            scores.append(pairwise_scores(clusters, gold).f1)
        return float(np.mean(scores))

    component_scores = {min_sim: components_f1(min_sim) for min_sim in GRID}
    best_sim = max(component_scores, key=component_scores.get)

    distinct_f1 = float(
        np.mean(
            [
                pairwise_scores(
                    res.clusters, list(truth.clusters_for(name).values())
                ).f1
                for name, res in resolutions.items()
            ]
        )
    )

    rows = [
        ["DISTINCT (composite agglomerative)", distinct.config.min_sim, distinct_f1],
        ["transitive closure (components)", best_sim, component_scores[best_sim]],
    ]
    table = format_table(
        ["method", "min-sim", "avg f1"],
        rows,
        title="Baseline: transitive closure over the same pair similarities",
        float_format="{:.4f}",
    )
    report("baseline_components", table)

    # Chaining through single misleading links must cost the baseline.
    assert distinct_f1 > component_scores[best_sim]

    graph = graphs["Wei Wang"]

    def kernel():
        return connected_component_clusters(graph, 0.006)

    benchmark(kernel)
