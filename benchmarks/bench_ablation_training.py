"""Ablation C: how much automatically labeled training data is needed?

The paper uses 1000 positive + 1000 negative pairs. This bench retrains the
per-path weights at several training-set sizes (fixed C to isolate the size
effect) and evaluates the resulting DISTINCT on all ten names at the
default threshold.
"""

from repro import Distinct, DistinctConfig
from repro.core.variants import variant_by_key
from repro.eval.experiment import run_variant
from repro.eval.reporting import format_table

SIZES = (50, 200, 1000)


def test_training_size_ablation(
    benchmark, db_truth, distinct, preparations, report
):
    db, truth = db_truth
    variant = variant_by_key("distinct")
    rows = []
    f1_by_size = {}
    for size in SIZES:
        config = DistinctConfig(n_positive=size, n_negative=size, svm_C=10.0)
        trained = Distinct(config).fit(db)
        # Reuse the session's expensive per-name preparations: the features
        # depend only on the path set, which is identical.
        result = run_variant(trained, preparations, truth, variant, config.min_sim)
        f1_by_size[size] = result.avg_f1
        rows.append(
            [
                f"{size}+{size}",
                trained.fit_report_.train_accuracy_resem,
                result.avg_precision,
                result.avg_recall,
                result.avg_f1,
            ]
        )

    table = format_table(
        ["training pairs", "train acc (resem)", "precision", "recall", "f1"],
        rows,
        title="Ablation C: training-set size (paper uses 1000+1000)",
        float_format="{:.4f}",
    )
    report("ablation_training", table)

    # More data should not hurt much; the paper-scale setting performs well.
    assert f1_by_size[1000] > 0.8
    assert f1_by_size[1000] >= f1_by_size[50] - 0.05

    config = DistinctConfig(n_positive=200, n_negative=200, svm_C=10.0)

    def kernel():
        return Distinct(config).fit(db)

    trained = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert trained.fit_report_.n_training_pairs == 400
