"""§5 timing: "We first build a training set ... then SVM with linear
kernel is applied. The whole process takes 62.1 seconds."

Reports the phase breakdown of the session's fit (training-set
construction, pair-feature computation, SVM training incl. the C search)
and times the two cheap phases as kernels. Absolute numbers are not
comparable (the paper timed a 2006 workstation against full DBLP; we run a
scaled world), but the breakdown shows the same profile: feature
computation dominates, SVM training itself is cheap.
"""

import numpy as np

from repro.eval.reporting import format_table
from repro.ml.svm import LinearSVM
from repro.ml.trainingset import build_training_set


def test_training_phase_breakdown(benchmark, distinct, db_truth, report):
    db, _ = db_truth
    fit = distinct.fit_report_
    table = format_table(
        ["phase", "seconds"],
        [
            ["training-set construction (rare names)", fit.seconds_training_set],
            ["pair feature computation (propagation)", fit.seconds_features],
            ["SVM training (incl. C selection)", fit.seconds_svm],
            ["total", fit.seconds_total],
        ],
        title=(
            "Training pipeline timing (paper: whole process 62.1 s on full "
            f"DBLP; {fit.n_training_pairs} pairs from {fit.n_rare_names} rare names)"
        ),
    )
    report(
        "training_time",
        table,
        data={
            "seconds_training_set": round(fit.seconds_training_set, 3),
            "seconds_features": round(fit.seconds_features, 3),
            "seconds_svm": round(fit.seconds_svm, 3),
            "seconds_total": round(fit.seconds_total, 3),
            "n_training_pairs": fit.n_training_pairs,
            "n_rare_names": fit.n_rare_names,
        },
    )

    result = benchmark(build_training_set, db)
    assert result.n_positive == 1000
    assert result.n_negative == 1000


def test_svm_training_kernel(benchmark, distinct):
    """Time one SVM fit at the selected C on the actual training features."""
    features = distinct._training_features(distinct.training_set_)
    labels = np.asarray(distinct.training_set_.labels(), dtype=float)
    cost = distinct.resem_model_.metadata["C"]

    def kernel():
        svm = LinearSVM(
            C=cost, loss="squared_hinge", tol=1e-3, max_epochs=600, strict=False
        )
        return svm.fit(features.resemblance, labels)

    svm = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert svm.accuracy(features.resemblance, labels) > 0.7
