"""Ablation B: which join-path families carry the signal?

Families are dropped by zeroing their learned weights (both measures) and
re-clustering — the profiles and pair features are untouched, so this
isolates the contribution of each linkage type exactly as Eq 1 sees it:

- coauthor family: every path whose end relation is ``Authors`` or that
  passes through the ``Authors`` relation (coauthors, coauthors' papers);
- venue family: paths through ``Proceedings``/``Conferences`` (and their
  virtualized year/location/publisher values) that avoid ``Authors``.

Also reports the deep-path configuration (7 hops, includes the paper's
coauthor-of-coauthor path) against the default 5-hop budget.
"""

import pytest

from repro import Distinct, DistinctConfig, deep_path_config
from repro.core.variants import variant_by_key
from repro.eval.experiment import prepare_names, run_variant
from repro.eval.reporting import format_table
from repro.ml.model import PathWeightModel


def _masked(model: PathWeightModel, keep) -> PathWeightModel:
    weights = [
        w if keep(sig) else 0.0 for sig, w in zip(model.signatures, model.weights)
    ]
    return PathWeightModel(model.measure, list(model.signatures), weights, model.bias)


def _family(signature: str) -> str:
    return "coauthor" if "Authors" in signature else "venue"


@pytest.fixture()
def swap_models(distinct):
    """Context helper: run with masked models, always restore."""
    original = (distinct.resem_model_, distinct.walk_model_)

    def _swap(keep):
        distinct.resem_model_ = _masked(original[0], keep)
        distinct.walk_model_ = _masked(original[1], keep)

    yield _swap
    distinct.resem_model_, distinct.walk_model_ = original


def test_path_family_ablation(
    benchmark, distinct, preparations, db_truth, report, swap_models
):
    _, truth = db_truth
    variant = variant_by_key("distinct")
    min_sim = distinct.config.min_sim

    settings = {
        "full model": lambda sig: True,
        "coauthor paths only": lambda sig: _family(sig) == "coauthor",
        "venue paths only": lambda sig: _family(sig) == "venue",
    }
    rows = []
    scores = {}
    for label, keep in settings.items():
        swap_models(keep)
        result = run_variant(distinct, preparations, truth, variant, min_sim)
        scores[label] = result.avg_f1
        rows.append([label, result.avg_precision, result.avg_recall, result.avg_f1])

    table = format_table(
        ["setting", "precision", "recall", "f1"],
        rows,
        title="Ablation B: join-path family contributions (weights masked)",
        float_format="{:.4f}",
    )
    report("ablation_paths", table)

    # Coauthor linkage is the workhorse (§3's example); venue-only should
    # collapse, and the full model should beat either family alone.
    assert scores["coauthor paths only"] > scores["venue paths only"]
    assert scores["full model"] >= scores["coauthor paths only"] - 0.02

    swap_models(lambda sig: True)

    def kernel():
        return run_variant(distinct, preparations, truth, variant, min_sim)

    benchmark(kernel)


def test_deep_paths_including_coauthor_of_coauthor(
    benchmark, db_truth, world, report
):
    """7-hop budget (coauthors of coauthors, §1) vs the default 5 hops."""
    db, truth = db_truth
    config = DistinctConfig(path_config=deep_path_config(), svm_C=10.0)
    deep = Distinct(config).fit(db)
    assert any(
        p.describe().count("Authors") >= 2 for p in deep.paths_
    ), "coauthor-of-coauthor path missing from the deep budget"

    names = ["Wei Wang", "Bin Yu", "Hui Fang"]
    preps = prepare_names(deep, names)
    result = run_variant(
        deep, preps, truth, variant_by_key("distinct"), config.min_sim
    )
    table = format_table(
        ["name", "precision", "recall", "f1"],
        [[r.name, r.scores.precision, r.scores.recall, r.scores.f1] for r in result.names],
        title=(
            f"Ablation B2: deep path budget ({len(deep.paths_)} paths incl. "
            "coauthor-of-coauthor) on three names"
        ),
        float_format="{:.4f}",
    )
    report("ablation_paths_deep", table)
    assert result.avg_f1 > 0.6

    def kernel():
        return deep.cluster_prepared(preps["Bin Yu"], min_sim=config.min_sim)

    benchmark(kernel)
