"""Ablation A: sensitivity to the min-sim clustering threshold.

The paper fixes one min-sim for DISTINCT and tunes it per baseline; this
bench sweeps the threshold for the full composite measure and reports the
precision/recall trade-off curve, verifying the expected monotonicity
(higher threshold -> no fewer clusters -> precision up, recall down).
"""

from repro.core.variants import variant_by_key
from repro.eval.experiment import run_variant, sweep_min_sim
from repro.eval.reporting import format_table, format_xy_chart

GRID = (0.001, 0.002, 0.004, 0.006, 0.008, 0.012, 0.02, 0.03, 0.05, 0.1)


def test_minsim_sweep(benchmark, distinct, preparations, db_truth, report):
    _, truth = db_truth
    variant = variant_by_key("distinct")
    best, runs = sweep_min_sim(
        distinct, preparations, truth, variant, GRID
    )

    rows = [
        [r.min_sim, r.avg_precision, r.avg_recall, r.avg_f1, r.avg_accuracy]
        for r in runs
    ]
    table = format_table(
        ["min-sim", "precision", "recall", "f1", "accuracy"],
        rows,
        title=(
            "Ablation A: min-sim sensitivity of DISTINCT "
            f"(configured default = {distinct.config.min_sim}, "
            f"best on this grid = {best.min_sim})"
        ),
        float_format="{:.4f}",
    )
    curve = format_xy_chart(
        [(r.min_sim, r.avg_f1) for r in runs],
        title="f1 vs min-sim (rank-scaled x)",
        x_label="min-sim",
        y_label="avg f1",
    )
    report("ablation_minsim", table + "\n\n" + curve)

    by_sim = {r.min_sim: r for r in runs}
    ordered = [by_sim[s] for s in GRID]
    # Precision rises (weakly) with the threshold; recall falls (weakly).
    for lo, hi in zip(ordered, ordered[1:]):
        assert hi.avg_precision >= lo.avg_precision - 0.02
        assert hi.avg_recall <= lo.avg_recall + 0.02
    # The configured default should be near-optimal on its own grid.
    assert by_sim[distinct.config.min_sim].avg_f1 >= best.avg_f1 - 0.05

    def kernel():
        return run_variant(distinct, preparations, truth, variant, 0.006)

    benchmark(kernel)
