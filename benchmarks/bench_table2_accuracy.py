"""Table 2: per-name precision / recall / f-measure of DISTINCT.

Paper reference points: no false positives in 7 of 10 names, average recall
83.6%, average f-measure ~0.90, with recall lost mainly to split multi-era
authors (18 Michael Wagner references divided in two).

The timed kernel is the clustering stage for the largest name (the
per-threshold cost the min-sim sweep pays).
"""

from repro.core.variants import variant_by_key
from repro.eval.experiment import run_variant
from repro.eval.reporting import format_table


def test_table2_accuracy(benchmark, distinct, preparations, db_truth, report):
    _, truth = db_truth
    result = run_variant(
        distinct,
        preparations,
        truth,
        variant_by_key("distinct"),
        min_sim=distinct.config.min_sim,
    )

    rows = [
        [r.name, r.n_entities, r.n_refs, r.n_clusters,
         r.scores.precision, r.scores.recall, r.scores.f1]
        for r in result.names
    ]
    rows.append(
        ["average", "", "", "", result.avg_precision, result.avg_recall, result.avg_f1]
    )
    table = format_table(
        ["name", "#authors", "#refs", "#clusters", "precision", "recall", "f1"],
        rows,
        title=(
            "Table 2: accuracy for distinguishing references "
            f"(min-sim = {distinct.config.min_sim})\n"
            "paper: avg precision ~0.99 (7/10 names with no false positives), "
            "avg recall 0.836, avg f ~0.90"
        ),
    )
    report(
        "table2_accuracy",
        table,
        data={
            "avg_precision": round(result.avg_precision, 4),
            "avg_recall": round(result.avg_recall, 4),
            "avg_f1": round(result.avg_f1, 4),
            "min_sim": distinct.config.min_sim,
            "per_name_f1": {r.name: round(r.scores.f1, 4) for r in result.names},
        },
    )

    # Shape assertions (paper-vs-measured detailed in EXPERIMENTS.md):
    perfect_precision = sum(1 for r in result.names if r.scores.precision >= 0.999)
    assert perfect_precision >= 5, "most names should have no false positives"
    assert result.avg_precision > 0.85
    assert result.avg_recall > 0.75
    assert result.avg_f1 > 0.80

    # Michael Wagner's unbridged multi-era author should lose recall, as in
    # the paper ("18 references ... divided into two groups").
    wagner = next(r for r in result.names if r.name == "Michael Wagner")
    assert wagner.scores.recall < 0.9

    prep = preparations["Wei Wang"]

    def kernel():
        return distinct.cluster_prepared(prep, min_sim=distinct.config.min_sim)

    resolution = benchmark(kernel)
    assert resolution.n_clusters >= 2
