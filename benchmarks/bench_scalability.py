"""Scalability: pipeline cost as the world grows.

The paper runs against full DBLP (616K papers); our substrate is a pure
Python in-memory engine, so this bench characterizes how its phases scale
with world size: relational loading, per-reference profiling, pair-feature
computation, and clustering. The per-pair cost should stay roughly flat
while total cost grows with the reference count.
"""

import time

from repro import Distinct, DistinctConfig, GeneratorConfig, generate_world
from repro.data.ambiguity import AmbiguousNameSpec
from repro.data.world import world_to_database
from repro.eval.reporting import format_table

SPEC = [AmbiguousNameSpec("Wei Wang", (20, 12, 8))]
SCALES = (0.5, 1.0, 2.0)


def test_scaling_world_size(benchmark, report):
    rows = []
    for scale in SCALES:
        config = GeneratorConfig(seed=3, scale=scale)
        t0 = time.perf_counter()
        world = generate_world(config, SPEC)
        db, truth = world_to_database(world)
        t_load = time.perf_counter() - t0

        distinct = Distinct(
            DistinctConfig(n_positive=300, n_negative=300, svm_C=10.0)
        )
        t0 = time.perf_counter()
        distinct.fit(db)
        t_fit = time.perf_counter() - t0

        t0 = time.perf_counter()
        prep = distinct.prepare("Wei Wang")
        t_prepare = time.perf_counter() - t0

        t0 = time.perf_counter()
        distinct.cluster_prepared(prep)
        t_cluster = time.perf_counter() - t0

        stats = world.stats()
        rows.append(
            [
                f"x{scale}",
                stats["papers"],
                stats["authorships"],
                t_load,
                t_fit,
                t_prepare,
                t_cluster,
            ]
        )

    table = format_table(
        ["scale", "papers", "authorships", "load s", "fit s", "prepare s", "cluster s"],
        rows,
        title="Scalability: phase cost vs world size (one 40-ref name)",
    )
    report(
        "scalability",
        table,
        data={
            row[0]: {
                "papers": row[1],
                "authorships": row[2],
                "load_s": round(row[3], 3),
                "fit_s": round(row[4], 3),
                "prepare_s": round(row[5], 3),
                "cluster_s": round(row[6], 3),
            }
            for row in rows
        },
    )

    # Loading should scale roughly linearly (within generous bounds).
    assert rows[-1][3] < rows[0][3] * 12

    config = GeneratorConfig(seed=3, scale=0.5)

    def kernel():
        world = generate_world(config, SPEC)
        return world_to_database(world)

    benchmark.pedantic(kernel, rounds=2, iterations=1)
