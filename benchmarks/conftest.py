"""Shared state for the benchmark harness.

All benches run against the full Table-1 world (the paper's evaluation
setting): built once per session, fitted once per session. Each bench
regenerates one table or figure of the paper, prints it to the terminal
(bypassing capture so it lands in ``bench_output.txt``), writes it to
``benchmarks/results/``, and times a representative kernel with
pytest-benchmark.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import Distinct, DistinctConfig, generate_world
from repro.data.world import world_to_database
from repro.eval.experiment import prepare_names

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def world():
    return generate_world()  # Table-1 spec, default world size


@pytest.fixture(scope="session")
def db_truth(world):
    return world_to_database(world)


@pytest.fixture(scope="session")
def distinct(db_truth):
    db, _ = db_truth
    return Distinct(DistinctConfig()).fit(db)


@pytest.fixture(scope="session")
def preparations(distinct, world):
    """Per-name profiles + pair features for all ten evaluation names."""
    return prepare_names(distinct, world.ambiguous_names)


@pytest.fixture()
def report(capsys):
    """Print a reproduced table/figure to the real terminal and archive it."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")

    return _report
