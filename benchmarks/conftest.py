"""Shared state for the benchmark harness.

All benches run against the full Table-1 world (the paper's evaluation
setting): built once per session, fitted once per session. Each bench
regenerates one table or figure of the paper, prints it to the terminal
(bypassing capture so it lands in ``bench_output.txt``), writes it to
``benchmarks/results/``, and times a representative kernel with
pytest-benchmark. Benches that pass ``data=`` to the report fixture also
land their key numbers in ``benchmarks/results/summary.json`` for
machine consumption (trend tracking across PRs).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import Distinct, DistinctConfig, generate_world
from repro.data.world import world_to_database
from repro.eval.experiment import prepare_names
from repro.obs import disable_tracing, get_metrics

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def isolated_observability():
    """Fresh metrics and no leftover tracer for every bench case.

    The metrics registry and the global tracer are process-wide; without
    this, one bench's counters bleed into the next bench's reported
    numbers and a bench that enables tracing slows down every bench
    after it.
    """
    get_metrics().reset()
    disable_tracing()
    yield
    get_metrics().reset()
    disable_tracing()


@pytest.fixture(scope="session")
def world():
    return generate_world()  # Table-1 spec, default world size


@pytest.fixture(scope="session")
def db_truth(world):
    return world_to_database(world)


@pytest.fixture(scope="session")
def distinct(db_truth):
    db, _ = db_truth
    return Distinct(DistinctConfig()).fit(db)


@pytest.fixture(scope="session")
def preparations(distinct, world):
    """Per-name profiles + pair features for all ten evaluation names."""
    return prepare_names(distinct, world.ambiguous_names)


@pytest.fixture()
def report(capsys):
    """Print a reproduced table/figure to the real terminal and archive it.

    ``data`` (optional) is a JSON-serializable dict of the bench's key
    numbers; it is merged into ``benchmarks/results/summary.json`` under
    the bench name, so the numeric trajectory of every bench is
    machine-readable, not just the formatted text tables.
    """

    def _report(name: str, text: str, data: dict | None = None) -> None:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        if data is not None:
            summary_path = RESULTS_DIR / "summary.json"
            summary = (
                json.loads(summary_path.read_text()) if summary_path.exists() else {}
            )
            summary[name] = data
            summary_path.write_text(
                json.dumps(summary, indent=2, sort_keys=True) + "\n"
            )
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")

    return _report
