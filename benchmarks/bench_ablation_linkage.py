"""Ablation D: the §4.1 cluster-similarity design discussion, measured.

The paper argues: Complete-Link fails on weakly linked partitions of one
author, Single-Link chains through one misleading linkage, Average-Link is
reasonable but still under-merges large partitions, and the composite
(average resemblance x collective walk, geometric mean) fixes that. This
bench runs all four cluster measures over the same learned pair matrices,
each at its best threshold from a small grid (the fair §4.1 comparison).
"""

import numpy as np

from repro.cluster.agglomerative import AgglomerativeClusterer
from repro.cluster.composite import CompositeMeasure
from repro.cluster.kmedoids import kmedoids
from repro.cluster.linkage import (
    AverageLinkMeasure,
    CompleteLinkMeasure,
    SingleLinkMeasure,
)
from repro.similarity.combine import geometric_mean
from repro.eval.metrics import pairwise_scores
from repro.eval.reporting import format_table

GRID = (1e-4, 1e-3, 0.003, 0.006, 0.01, 0.03, 0.1, 0.3)

MEASURES = {
    "composite (DISTINCT)": lambda r, w: CompositeMeasure(r, w),
    "Average-Link": lambda r, w: AverageLinkMeasure(r),
    "Single-Link": lambda r, w: SingleLinkMeasure(r),
    "Complete-Link": lambda r, w: CompleteLinkMeasure(r),
}


def test_linkage_comparison(benchmark, distinct, preparations, db_truth, report):
    _, truth = db_truth

    # Combined pair matrices per name, computed once.
    per_name = {}
    for name, prep in preparations.items():
        resolution = distinct.cluster_prepared(prep, min_sim=0.006)
        per_name[name] = (
            prep.rows,
            resolution.resem_matrix,
            resolution.walk_matrix,
            list(truth.clusters_for(name).values()),
        )

    def evaluate(make_measure, min_sim):
        f1s = []
        for rows, resem, walk, gold in per_name.values():
            result = AgglomerativeClusterer(min_sim).cluster(make_measure(resem, walk))
            clusters = [{rows[i] for i in c} for c in result.clusters]
            f1s.append(pairwise_scores(clusters, gold).f1)
        return float(np.mean(f1s))

    rows_out = []
    best_f1 = {}
    for label, make_measure in MEASURES.items():
        scores = {min_sim: evaluate(make_measure, min_sim) for min_sim in GRID}
        best_sim = max(scores, key=scores.get)
        best_f1[label] = scores[best_sim]
        rows_out.append([label, best_sim, scores[best_sim]])

    # k-medoids strawman with ORACLE k (the true entity count) — it needs k,
    # which the agglomerative engine does not; even so it should not win.
    pam_scores = []
    for rows, resem, walk, gold in per_name.values():
        n = len(rows)
        combined = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                combined[i, j] = combined[j, i] = geometric_mean(
                    resem[i, j], walk[i, j]
                )
        np.fill_diagonal(combined, 1.0)
        clusters = kmedoids(combined, k=len(gold))
        mapped = [{rows[i] for i in c} for c in clusters]
        pam_scores.append(pairwise_scores(mapped, gold).f1)
    best_f1["k-medoids (oracle k)"] = float(np.mean(pam_scores))
    rows_out.append(["k-medoids (oracle k)", "-", best_f1["k-medoids (oracle k)"]])

    table = format_table(
        ["cluster measure", "best min-sim", "avg f1"],
        rows_out,
        title="Ablation D: cluster-similarity measures over identical pair "
        "matrices (each at its best threshold)",
        float_format="{:.4f}",
    )
    report("ablation_linkage", table)

    # §4.1 shape: the composite should lead, and the extreme linkages should
    # not beat Average-Link's family.
    assert best_f1["composite (DISTINCT)"] >= best_f1["Average-Link"] - 1e-9
    assert best_f1["composite (DISTINCT)"] > best_f1["Single-Link"] - 1e-9
    assert best_f1["composite (DISTINCT)"] > best_f1["Complete-Link"] - 1e-9
    # Even with the oracle cluster count, PAM should not beat the composite.
    assert best_f1["composite (DISTINCT)"] >= best_f1["k-medoids (oracle k)"] - 0.02

    rows, resem, walk, gold = per_name["Wei Wang"]

    def kernel():
        return AgglomerativeClusterer(0.006).cluster(CompositeMeasure(resem, walk))

    benchmark(kernel)
