"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Schema/data problems raise the more specific subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A relation, attribute, or foreign key is declared inconsistently."""


class IntegrityError(ReproError):
    """Data violates a declared constraint (key uniqueness, FK target, arity)."""


class UnknownRelationError(SchemaError):
    """A relation name does not exist in the schema."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class UnknownAttributeError(SchemaError):
    """An attribute name does not exist in a relation."""

    def __init__(self, relation: str, attribute: str) -> None:
        super().__init__(f"relation {relation!r} has no attribute {attribute!r}")
        self.relation = relation
        self.attribute = attribute


class PathError(ReproError):
    """A join path is malformed (non-contiguous steps, bad endpoints)."""


class TrainingError(ReproError):
    """The automatic training-set construction could not produce examples."""


class NotFittedError(ReproError):
    """A model or pipeline was used before being fitted."""


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration budget."""


class PersistenceError(ReproError):
    """A saved artifact (results, models, checkpoints) is missing required
    keys, has an unknown format version, or cannot be decoded."""


class CheckpointError(PersistenceError):
    """A checkpoint file is corrupt, has an unknown version, or does not
    match the run it is being resumed into."""

    def __init__(self, message: str, path: object = None) -> None:
        if path is not None:
            message = f"{message} (checkpoint: {path})"
        super().__init__(message)
        self.path = path


class StaleCacheError(ReproError):
    """An epoch-pinned cache was read at a different ``db.epoch`` than it
    was built (or last advanced) at.

    Raised by the fanout memo and transition cache instead of silently
    serving rows compiled against a database state that a
    :func:`repro.reldb.apply_delta` has since extended. Callers must run
    the cache's ``advance()`` (invalidate rows whose partner lists
    changed) before reading at the new epoch.
    """

    def __init__(self, cache: str, cache_epoch: int, db_epoch: int) -> None:
        super().__init__(
            f"{cache} pinned at epoch {cache_epoch} read at db epoch "
            f"{db_epoch}; call advance() after apply_delta"
        )
        self.cache = cache
        self.cache_epoch = cache_epoch
        self.db_epoch = db_epoch


class DeadlineExceeded(ReproError):
    """A run hit its wall-clock deadline before completing.

    Raised by :meth:`repro.resilience.Deadline.check`; long loops catch it
    (or poll :meth:`~repro.resilience.Deadline.expired`) to stop gracefully
    after writing a checkpoint. Error policies never swallow it.
    """
