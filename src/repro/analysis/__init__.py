"""repro.analysis: AST-based static analysis enforcing project contracts.

The pipeline's cross-cutting guarantees — the layering DAG, the
byte-identical-parallelism determinism contract, the never-swallow-
``DeadlineExceeded`` exception discipline, the obs metric-name registry,
the ``DistinctConfig``-to-docs/CLI surface, and the picklability of
process-pool task functions — are enforced mechanically here instead of
by review-time vigilance. See ``docs/static_analysis.md`` for the rule
catalogue and ``repro lint`` for the CLI entry point.

::

    from repro.analysis import run_lint, load_config

    result = run_lint(repo_root, config=load_config(repo_root))
    assert result.ok, [f.render() for f in result.findings]
"""

from repro.analysis.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.cfg import CFG, build_cfg, function_cfgs
from repro.analysis.config import (
    AllowEntry,
    LintConfig,
    ResourceSpec,
    default_config,
    load_config,
)
from repro.analysis.dataflow import (
    FixpointDiverged,
    ForwardAnalysis,
    GenKillAnalysis,
)
from repro.analysis.engine import Rule, all_rules, register, rule_catalogue, run_lint
from repro.analysis.findings import Finding, LintResult, Severity
from repro.analysis.incremental import changed_files, filter_to_changed
from repro.analysis.project import ModuleInfo, Project, load_project
from repro.analysis.report import format_json, format_text
from repro.analysis.sarif import format_sarif, sarif_document

__all__ = [
    "AllowEntry",
    "CFG",
    "CallGraph",
    "Finding",
    "FixpointDiverged",
    "ForwardAnalysis",
    "GenKillAnalysis",
    "LintConfig",
    "LintResult",
    "ModuleInfo",
    "Project",
    "ResourceSpec",
    "Rule",
    "Severity",
    "all_rules",
    "apply_baseline",
    "build_call_graph",
    "build_cfg",
    "changed_files",
    "default_config",
    "filter_to_changed",
    "fingerprint",
    "format_json",
    "format_sarif",
    "format_text",
    "function_cfgs",
    "load_baseline",
    "load_config",
    "load_project",
    "register",
    "rule_catalogue",
    "run_lint",
    "sarif_document",
    "write_baseline",
]
