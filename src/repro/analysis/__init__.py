"""repro.analysis: AST-based static analysis enforcing project contracts.

The pipeline's cross-cutting guarantees — the layering DAG, the
byte-identical-parallelism determinism contract, the never-swallow-
``DeadlineExceeded`` exception discipline, the obs metric-name registry,
the ``DistinctConfig``-to-docs/CLI surface, and the picklability of
process-pool task functions — are enforced mechanically here instead of
by review-time vigilance. See ``docs/static_analysis.md`` for the rule
catalogue and ``repro lint`` for the CLI entry point.

::

    from repro.analysis import run_lint, load_config

    result = run_lint(repo_root, config=load_config(repo_root))
    assert result.ok, [f.render() for f in result.findings]
"""

from repro.analysis.config import (
    AllowEntry,
    LintConfig,
    default_config,
    load_config,
)
from repro.analysis.engine import Rule, all_rules, register, rule_catalogue, run_lint
from repro.analysis.findings import Finding, LintResult, Severity
from repro.analysis.project import ModuleInfo, Project, load_project
from repro.analysis.report import format_json, format_text

__all__ = [
    "AllowEntry",
    "Finding",
    "LintConfig",
    "LintResult",
    "ModuleInfo",
    "Project",
    "Rule",
    "Severity",
    "all_rules",
    "default_config",
    "format_json",
    "format_text",
    "load_config",
    "load_project",
    "register",
    "rule_catalogue",
    "run_lint",
]
