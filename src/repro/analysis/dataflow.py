"""A small worklist fixpoint framework over :mod:`repro.analysis.cfg`.

Two layers:

- :class:`ForwardAnalysis` — the generic engine. A rule subclasses it
  with an ``initial()`` state, a ``transfer(node, state)`` function, and
  optionally ``refine(test, polarity, state)`` applied along ``true`` /
  ``false`` branch edges (how the lifecycle rule understands
  ``if handle is not None:`` guards). States are joined at merge points
  with ``join`` and iterated to fixpoint; loops terminate because states
  must grow monotonically in a finite lattice, and a hard iteration cap
  turns an accidentally infinite lattice into a loud error instead of a
  hung lint run.

- :class:`GenKillAnalysis` — the classic bit-vector special case over
  ``frozenset`` facts with per-node ``gen`` / ``kill`` sets, in ``may``
  (union-join, e.g. taint) or ``must`` (intersection-join, e.g.
  "an fsync is available on every path") flavors.

States are treated as immutable values: ``transfer`` must return a new
state, never mutate its argument, and ``equals`` decides convergence.
"""

from __future__ import annotations

import ast
from typing import Generic, Mapping, TypeVar

from repro.analysis.cfg import CFG, EXC, FALSE, TRUE, Node

__all__ = [
    "ForwardAnalysis",
    "GenKillAnalysis",
    "FixpointDiverged",
    "MAY",
    "MUST",
    "reachable_without",
    "statement_lines",
]

S = TypeVar("S")

MAY = "may"
MUST = "must"

#: Hard cap on worklist node-visits, as a multiple of the node count. A
#: correct finite-lattice analysis converges in a handful of passes; the
#: cap exists so a buggy transfer function fails loudly and fast.
MAX_VISITS_PER_NODE = 200


class FixpointDiverged(RuntimeError):
    """The analysis hit the iteration cap without converging."""


class ForwardAnalysis(Generic[S]):
    """Forward dataflow over one CFG; subclass and override the hooks."""

    def initial(self) -> S:
        """The state at function entry."""
        raise NotImplementedError

    def bottom(self) -> S:
        """The state of a not-yet-visited node (identity of ``join``)."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def equals(self, a: S, b: S) -> bool:
        return bool(a == b)

    def transfer(self, node: Node, state: S) -> S:
        """The state after executing ``node`` with ``state`` before it."""
        raise NotImplementedError

    def transfer_exc(self, node: Node, state: S) -> S:
        """State flowing along an exception edge out of ``node``.

        Defaults to the pre-state: the exception may fire before the
        statement's own effect completed (the conservative choice for a
        leak analysis — an acquire-then-raise still holds the resource).
        """
        return state

    def refine(self, test: ast.expr | None, polarity: bool, state: S) -> S:
        """Narrow ``state`` along a branch edge; default: no refinement."""
        return state

    def solve(self, cfg: CFG) -> dict[int, S]:
        """IN-states per node id at fixpoint (post-states via transfer)."""
        in_states: dict[int, S] = {node.id: self.bottom() for node in cfg.nodes}
        in_states[cfg.entry] = self.initial()
        # Seed with every node (entry first): each transfer must run at
        # least once even where the incoming state equals bottom, or
        # facts generated mid-graph would never propagate.
        worklist: list[int] = [cfg.entry] + [
            node.id for node in cfg.nodes if node.id != cfg.entry
        ]
        budget = MAX_VISITS_PER_NODE * max(len(cfg.nodes), 1)
        visits = 0
        while worklist:
            visits += 1
            if visits > budget:
                raise FixpointDiverged(
                    f"dataflow did not converge after {visits} node visits "
                    f"({len(cfg.nodes)} nodes) — non-monotone transfer?"
                )
            node_id = worklist.pop(0)
            node = cfg.node(node_id)
            state = in_states[node_id]
            post = self.transfer(node, state)
            exc_post = self.transfer_exc(node, state)
            for edge in cfg.succ(node_id):
                if edge.label == EXC:
                    out = exc_post
                elif edge.label == TRUE:
                    out = self.refine(node.test, True, post)
                elif edge.label == FALSE:
                    out = self.refine(node.test, False, post)
                else:
                    out = post
                merged = self.join(in_states[edge.dst], out)
                if not self.equals(merged, in_states[edge.dst]):
                    in_states[edge.dst] = merged
                    if edge.dst not in worklist:
                        worklist.append(edge.dst)
        return in_states


class GenKillAnalysis(ForwardAnalysis[frozenset]):
    """Set-fact dataflow: ``out = (in - kill(node)) | gen(node)``.

    ``mode=MAY`` joins by union (a fact holds if it holds on *some* path
    in); ``mode=MUST`` joins by intersection (a fact holds only when it
    holds on *every* path in — unvisited predecessors contribute the
    universe, represented lazily by ``None``-free bookkeeping below).
    """

    def __init__(self, mode: str = MAY, universe: frozenset | None = None):
        if mode not in (MAY, MUST):
            raise ValueError(f"mode must be {MAY!r} or {MUST!r}")
        self.mode = mode
        #: MUST-mode needs a top element for unvisited nodes; callers
        #: provide the fact universe (all gens in the function suffice).
        self.universe: frozenset = universe if universe is not None else frozenset()

    def gen(self, node: Node) -> frozenset:
        return frozenset()

    def kill(self, node: Node) -> frozenset:
        return frozenset()

    def initial(self) -> frozenset:
        return frozenset()

    def bottom(self) -> frozenset:
        return self.universe if self.mode == MUST else frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return (a & b) if self.mode == MUST else (a | b)

    def transfer(self, node: Node, state: frozenset) -> frozenset:
        return (state - self.kill(node)) | self.gen(node)


def reachable_without(
    cfg: CFG, start: int, blocked: frozenset[int]
) -> frozenset[int]:
    """Node ids reachable from ``start`` without entering ``blocked``.

    A tiny graph utility several rules share: "can execution get from the
    acquire to an exit while avoiding every release site?"
    """
    seen: set[int] = set()
    stack = [start]
    while stack:
        node_id = stack.pop()
        if node_id in seen:
            continue
        seen.add(node_id)
        for edge in cfg.succ(node_id):
            if edge.dst not in blocked and edge.dst not in seen:
                stack.append(edge.dst)
    return frozenset(seen)


def statement_lines(cfg: CFG) -> Mapping[int, int]:
    """node id -> source line for every real-statement node."""
    return {
        node.id: node.line for node in cfg.nodes if node.stmt is not None
    }
