"""Intraprocedural control-flow graphs over the project's ASTs.

:func:`build_cfg` turns one function body into a statement-level CFG:
every statement is a node, plus three synthetic nodes — ``entry``,
``exit`` (normal return) and ``raise_exit`` (an exception leaving the
function). Branch edges carry their test expression and polarity so a
flow analysis can refine facts per branch (``if handle is not None:``).

Exception modeling is deliberately pragmatic: a statement gets an
implicit exception edge only when it sits inside a ``try`` — the place
the author declared exception-awareness — plus explicit ``raise`` and
``assert`` statements anywhere. Modeling "any expression may raise"
would route every path through ``raise_exit`` and drown the lifecycle
rules in unfixable findings; modeling none would miss exactly the
deadline-tail leaks this layer exists to catch (a ``finally`` that
forgets a release). ``finally`` bodies are built once and their exits
fan out to every continuation observed flowing through them (normal
fall-through, exceptional propagation, routed ``return``/``break``/
``continue``), which over-approximates paths but never loses one.

``with`` blocks are transparent containers (their ``__exit__`` is
assumed not to swallow exceptions — true of every context manager this
project uses); loop back-edges make the graphs cyclic, so consumers
must iterate to fixpoint (:mod:`repro.analysis.dataflow`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "CFG",
    "EXC",
    "FALSE",
    "LOOP",
    "NEXT",
    "TRUE",
    "Edge",
    "Node",
    "build_cfg",
    "function_cfgs",
]

NEXT = "next"
TRUE = "true"
FALSE = "false"
EXC = "exc"
LOOP = "loop"

@dataclass
class Node:
    """One CFG node: a statement, or a synthetic entry/exit/raise node.

    ``stmt`` is usually an ``ast.stmt``; handler-entry nodes carry the
    ``ast.ExceptHandler`` instead (it owns the lineno of the ``except``).
    """

    id: int
    kind: str  # "entry" | "exit" | "raise" | "stmt" | "branch" | "finally"
    stmt: ast.AST | None = None
    test: ast.expr | None = None  # branch nodes: the refinable condition

    @property
    def line(self) -> int:
        return int(getattr(self.stmt, "lineno", 0)) if self.stmt is not None else 0


@dataclass(frozen=True)
class Edge:
    src: int
    dst: int
    label: str


@dataclass
class CFG:
    """The control-flow graph of one function."""

    func: ast.FunctionDef | ast.AsyncFunctionDef
    nodes: list[Node] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)
    entry: int = 0
    exit: int = 1
    raise_exit: int = 2

    def succ(self, node_id: int) -> list[Edge]:
        return [e for e in self.edges if e.src == node_id]

    def pred(self, node_id: int) -> list[Edge]:
        return [e for e in self.edges if e.dst == node_id]

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    @property
    def exits(self) -> tuple[int, int]:
        """Both ways out of the function: normal return and propagation."""
        return (self.exit, self.raise_exit)


@dataclass
class _Frame:
    """One enclosing ``try``: where exceptions and jumps route through."""

    handler_entries: list[int]
    finally_entry: int | None
    #: Continuations observed flowing through the finally (routed jumps);
    #: wired to the finally's exit frontier once its body exists.
    finally_continuations: set[int] = field(default_factory=set)


@dataclass
class _Loop:
    head: int
    break_sources: list[tuple[int, str]] = field(default_factory=list)


class _Builder:
    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        self.cfg = CFG(func=func)
        self._add_node("entry")
        self._add_node("exit")
        self._add_node("raise")
        self.frames: list[_Frame] = []
        self.loops: list[_Loop] = []

    # -- graph primitives ----------------------------------------------

    def _add_node(
        self,
        kind: str,
        stmt: ast.AST | None = None,
        test: ast.expr | None = None,
    ) -> int:
        node = Node(id=len(self.cfg.nodes), kind=kind, stmt=stmt, test=test)
        self.cfg.nodes.append(node)
        return node.id

    def _add_edge(self, src: int, dst: int, label: str) -> None:
        edge = Edge(src=src, dst=dst, label=label)
        if edge not in self.cfg.edges:
            self.cfg.edges.append(edge)

    def _connect(self, frontier: list[tuple[int, str]], dst: int) -> None:
        for src, label in frontier:
            self._add_edge(src, dst, label)

    # -- exception and jump routing ------------------------------------

    def _exc_targets(self) -> list[int]:
        """Where an exception raised at the current point can land."""
        if not self.frames:
            return [self.cfg.raise_exit]
        frame = self.frames[-1]
        targets = list(frame.handler_entries)
        if frame.finally_entry is not None:
            targets.append(frame.finally_entry)
        else:
            # No finally here: an exception no handler matches keeps
            # propagating to the next frame out (or leaves the function).
            targets.append(self._outer_exc_target(len(self.frames) - 1))
        return targets

    def _outer_exc_target(self, frame_index: int) -> int:
        """The propagation target just outside ``frames[frame_index]``."""
        for frame in reversed(self.frames[:frame_index]):
            if frame.finally_entry is not None:
                return frame.finally_entry
            if frame.handler_entries:
                return frame.handler_entries[0]
        return self.cfg.raise_exit

    def _route_jump(self, src: int, target: int) -> None:
        """Wire ``src`` to ``target`` through the innermost finally, if any.

        The traversed finally records ``target`` as a continuation; its
        exit frontier fans out to every recorded continuation once the
        finally body is built (outer finallys are then reached through
        that fan-out — an over-approximation that never loses a path).
        """
        for frame in reversed(self.frames):
            if frame.finally_entry is not None:
                self._add_edge(src, frame.finally_entry, NEXT)
                frame.finally_continuations.add(target)
                return
        self._add_edge(src, target, NEXT)

    # -- statement dispatch --------------------------------------------

    def build(self) -> CFG:
        frontier = self._seq(self.func.body, [(self.cfg.entry, NEXT)])
        self._connect(frontier, self.cfg.exit)
        return self.cfg

    def _seq(
        self, stmts: list[ast.stmt], frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        for stmt in stmts:
            if not frontier:
                break  # unreachable after return/raise/break/continue
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(
        self, stmt: ast.stmt, frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        handler = getattr(self, f"_build_{type(stmt).__name__}", None)
        if handler is not None:
            return handler(stmt, frontier)
        node = self._add_node("stmt", stmt)
        self._connect(frontier, node)
        self._maybe_exc_edge(node)
        return [(node, NEXT)]

    def _maybe_exc_edge(self, node_id: int) -> None:
        """Implicit may-raise edges, only inside a ``try``."""
        if self.frames:
            for target in self._exc_targets():
                self._add_edge(node_id, target, EXC)

    # -- specific statements -------------------------------------------

    def _build_If(
        self, stmt: ast.If, frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        node = self._add_node("branch", stmt, test=stmt.test)
        self._connect(frontier, node)
        self._maybe_exc_edge(node)
        out = self._seq(stmt.body, [(node, TRUE)])
        if stmt.orelse:
            out = out + self._seq(stmt.orelse, [(node, FALSE)])
        else:
            out = out + [(node, FALSE)]
        return out

    def _build_While(
        self, stmt: ast.While, frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        head = self._add_node("branch", stmt, test=stmt.test)
        self._connect(frontier, head)
        self._maybe_exc_edge(head)
        loop = _Loop(head=head)
        self.loops.append(loop)
        body_frontier = self._seq(stmt.body, [(head, TRUE)])
        for src, _label in body_frontier:
            self._add_edge(src, head, LOOP)
        self.loops.pop()
        out = list(loop.break_sources)
        if stmt.orelse:
            out = out + self._seq(stmt.orelse, [(head, FALSE)])
        else:
            out = out + [(head, FALSE)]
        return out

    def _build_For(
        self, stmt: ast.For, frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        return self._build_loop_for(stmt, frontier)

    def _build_AsyncFor(
        self, stmt: ast.AsyncFor, frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        return self._build_loop_for(stmt, frontier)

    def _build_loop_for(
        self, stmt: ast.For | ast.AsyncFor, frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        head = self._add_node("branch", stmt, test=None)
        self._connect(frontier, head)
        self._maybe_exc_edge(head)
        loop = _Loop(head=head)
        self.loops.append(loop)
        body_frontier = self._seq(stmt.body, [(head, TRUE)])
        for src, _label in body_frontier:
            self._add_edge(src, head, LOOP)
        self.loops.pop()
        out = list(loop.break_sources)
        if stmt.orelse:
            out = out + self._seq(stmt.orelse, [(head, FALSE)])
        else:
            out = out + [(head, FALSE)]
        return out

    def _build_With(
        self, stmt: ast.With, frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        return self._build_with(stmt, frontier)

    def _build_AsyncWith(
        self, stmt: ast.AsyncWith, frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        return self._build_with(stmt, frontier)

    def _build_with(
        self, stmt: ast.With | ast.AsyncWith, frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        node = self._add_node("stmt", stmt)
        self._connect(frontier, node)
        self._maybe_exc_edge(node)
        return self._seq(stmt.body, [(node, NEXT)])

    def _build_Try(
        self, stmt: ast.Try, frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        handler_entries = [
            self._add_node("stmt", handler) for handler in stmt.handlers
        ]
        finally_entry = (
            self._add_node("finally", stmt) if stmt.finalbody else None
        )
        frame = _Frame(
            handler_entries=handler_entries, finally_entry=finally_entry
        )

        self.frames.append(frame)
        body_frontier = self._seq(stmt.body, frontier)
        if stmt.orelse:
            body_frontier = self._seq(stmt.orelse, body_frontier)
        self.frames.pop()

        # Handler bodies: exceptions inside them skip the local handlers
        # and route to the finally (or outward).
        handler_frame = _Frame(handler_entries=[], finally_entry=finally_entry)
        handler_frontiers: list[tuple[int, str]] = []
        self.frames.append(handler_frame)
        for entry, handler in zip(handler_entries, stmt.handlers):
            handler_frontiers.extend(self._seq(handler.body, [(entry, NEXT)]))
        self.frames.pop()
        frame.finally_continuations |= handler_frame.finally_continuations

        normal = body_frontier + handler_frontiers
        if finally_entry is None:
            return normal

        self._connect(normal, finally_entry)
        finally_frontier = self._seq(stmt.finalbody, [(finally_entry, NEXT)])
        # Exceptional pass-through: a finally entered by propagation
        # completes and *then* re-raises. The synthetic reraise node
        # sits after the finally body so dataflow sees the body's full
        # effect (and branch-edge refinements) before the exception
        # leaves; finallys entered normally also flow through it, a
        # harmless over-approximation ("may re-raise").
        outer = self._outer_exc_target(len(self.frames))
        reraise = self._add_node("reraise")
        self._connect(finally_frontier, reraise)
        self._add_edge(reraise, outer, EXC)
        for continuation in sorted(frame.finally_continuations):
            # Preserve edge labels so branch refinement applies on the
            # way to the continuation too.
            for src, label in finally_frontier:
                self._add_edge(src, continuation, label)
        return finally_frontier

    def _build_Return(
        self, stmt: ast.Return, frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        node = self._add_node("stmt", stmt)
        self._connect(frontier, node)
        self._maybe_exc_edge(node)
        self._route_jump(node, self.cfg.exit)
        return []

    def _build_Raise(
        self, stmt: ast.Raise, frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        node = self._add_node("stmt", stmt)
        self._connect(frontier, node)
        for target in self._exc_targets():
            self._add_edge(node, target, EXC)
        return []

    def _build_Assert(
        self, stmt: ast.Assert, frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        node = self._add_node("stmt", stmt)
        self._connect(frontier, node)
        for target in self._exc_targets():
            self._add_edge(node, target, EXC)
        return [(node, NEXT)]

    def _build_Break(
        self, stmt: ast.Break, frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        node = self._add_node("stmt", stmt)
        self._connect(frontier, node)
        if self.loops:
            for frame in reversed(self.frames):
                if frame.finally_entry is not None:
                    # break runs intervening finallys before leaving.
                    self._add_edge(node, frame.finally_entry, NEXT)
                    break
            self.loops[-1].break_sources.append((node, NEXT))
        return []

    def _build_Continue(
        self, stmt: ast.Continue, frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        node = self._add_node("stmt", stmt)
        self._connect(frontier, node)
        if self.loops:
            self._route_jump(node, self.loops[-1].head)
        return []

    def _build_Match(
        self, stmt: ast.stmt, frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        node = self._add_node("branch", stmt)
        self._connect(frontier, node)
        self._maybe_exc_edge(node)
        out: list[tuple[int, str]] = [(node, FALSE)]  # no case matched
        for case in stmt.cases:  # type: ignore[attr-defined]
            out.extend(self._seq(case.body, [(node, TRUE)]))
        return out

    # Nested definitions are opaque single statements (their bodies get
    # their own CFGs via function_cfgs).
    def _build_FunctionDef(
        self, stmt: ast.FunctionDef, frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        node = self._add_node("stmt", stmt)
        self._connect(frontier, node)
        return [(node, NEXT)]

    def _build_AsyncFunctionDef(
        self, stmt: ast.AsyncFunctionDef, frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        node = self._add_node("stmt", stmt)
        self._connect(frontier, node)
        return [(node, NEXT)]

    def _build_ClassDef(
        self, stmt: ast.ClassDef, frontier: list[tuple[int, str]]
    ) -> list[tuple[int, str]]:
        node = self._add_node("stmt", stmt)
        self._connect(frontier, node)
        return [(node, NEXT)]


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """The statement-level CFG of one function definition."""
    return _Builder(func).build()


def function_cfgs(tree: ast.Module) -> list[tuple[str, CFG]]:
    """``(qualified name, CFG)`` for every function in a module, outermost
    first; nested functions and methods get dotted names (``Outer.inner``)."""
    out: list[tuple[str, CFG]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{prefix}{child.name}"
                out.append((name, build_cfg(child)))
                visit(child, f"{name}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return out
