"""Rendering lint results: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

from repro.analysis.findings import LintResult, Severity

__all__ = ["format_json", "format_text"]


def format_text(result: LintResult, min_severity: Severity = Severity.INFO) -> str:
    """One line per finding plus a summary, like a compiler's output."""
    shown = [f for f in result.findings if f.severity >= min_severity]
    lines = [finding.render() for finding in shown]
    hidden = len(result.findings) - len(shown)
    summary = (
        f"{result.n_modules} module(s) scanned: "
        f"{result.count(Severity.ERROR)} error(s), "
        f"{result.count(Severity.WARNING)} warning(s), "
        f"{result.count(Severity.INFO)} info"
    )
    if result.n_suppressed:
        summary += f"; {result.n_suppressed} finding(s) suppressed"
    if hidden:
        summary += f"; {hidden} below --min-severity not shown"
    if lines:
        lines.append("")
    lines.append(summary)
    return "\n".join(lines)


def format_json(result: LintResult, min_severity: Severity = Severity.INFO) -> str:
    """The full result as indented JSON (stable key order)."""
    payload = result.to_dict()
    payload["findings"] = [
        f.to_dict() for f in result.findings if f.severity >= min_severity
    ]
    return json.dumps(payload, indent=2, sort_keys=True)
