"""determinism/*: iteration-order hazards in reproducibility-critical code.

The perf layer guarantees that ``workers=N`` runs are byte-identical to
serial ones (asserted in ``tests/eval/test_parallel_runner.py``), and
checkpointed runs must replay identically. Both collapse if a hot path's
output depends on ``set`` iteration order, which varies with
``PYTHONHASHSEED`` and across processes. Inside the configured scope
(``similarity``, ``paths``, ``cluster``, ``core``, ``perf``,
``resilience``):

- ``determinism/set-iteration`` (error) — a ``for`` loop or comprehension
  iterating directly over a set expression. ``sorted(set(...))`` — the
  set as the *direct* argument of ``sorted`` — is fine; the sort imposes
  the order locally and auditably.
- ``determinism/unkeyed-sort`` (warning) — ``sorted(...)`` without
  ``key=``; fine for plain str/int sequences, a hazard when elements are
  floats-with-ties or rich objects whose comparison is partial.
- ``determinism/dict-keys-iteration`` (warning) — ``for k in d.keys()``;
  iterate the dict itself (insertion order is the contract) so the
  intent is visible.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import LintConfig
from repro.analysis.engine import register
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import ModuleInfo, Project


def is_set_expr(node: ast.expr) -> bool:
    """True when ``node`` syntactically produces a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return is_set_expr(node.left) or is_set_expr(node.right)
    return False


def _iteration_sites(tree: ast.Module) -> Iterator[tuple[ast.expr, int]]:
    """Every (iterable expression, line) a for/comprehension loops over."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, node.lineno
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                yield gen.iter, gen.iter.lineno


def _in_scope(info: ModuleInfo, config: LintConfig) -> bool:
    return info.package in config.determinism_scope


@register(
    "determinism/set-iteration",
    "no direct iteration over sets in reproducibility-critical packages "
    "(set order varies with PYTHONHASHSEED and across worker processes)",
    Severity.ERROR,
)
def check_set_iteration(
    project: Project, config: LintConfig
) -> Iterator[Finding]:
    for info in project.modules:
        if not _in_scope(info, config):
            continue
        for iterable, lineno in _iteration_sites(info.tree):
            if is_set_expr(iterable):
                yield Finding(
                    rule="determinism/set-iteration",
                    severity=Severity.ERROR,
                    path=info.rel_path,
                    line=lineno,
                    message=(
                        "iteration over a set has nondeterministic order; "
                        "this package feeds the byte-identical parallelism "
                        "and checkpoint-replay guarantees"
                    ),
                    hint="impose an order at the iteration site: "
                         "sorted(<the set>) as the direct argument, or build "
                         "an insertion-ordered sequence (e.g. dict.fromkeys)",
                )


@register(
    "determinism/unkeyed-sort",
    "sorted() without key= in reproducibility-critical packages "
    "(verify the elements have a deterministic total order)",
    Severity.WARNING,
)
def check_unkeyed_sort(
    project: Project, config: LintConfig
) -> Iterator[Finding]:
    for info in project.modules:
        if not _in_scope(info, config):
            continue
        for node in ast.walk(info.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sorted"
                and not any(kw.arg == "key" for kw in node.keywords)
            ):
                yield Finding(
                    rule="determinism/unkeyed-sort",
                    severity=Severity.WARNING,
                    path=info.rel_path,
                    line=node.lineno,
                    message=(
                        "sorted() without key=: fine for str/int elements, "
                        "a tie-order hazard for floats or rich objects"
                    ),
                    hint="add an explicit total-order key= if elements can "
                         "tie or compare partially",
                )


@register(
    "determinism/dict-keys-iteration",
    "iterate dicts directly instead of .keys() so insertion-order intent "
    "is visible",
    Severity.WARNING,
)
def check_dict_keys(project: Project, config: LintConfig) -> Iterator[Finding]:
    for info in project.modules:
        if not _in_scope(info, config):
            continue
        for iterable, lineno in _iteration_sites(info.tree):
            if (
                isinstance(iterable, ast.Call)
                and isinstance(iterable.func, ast.Attribute)
                and iterable.func.attr == "keys"
                and not iterable.args
            ):
                yield Finding(
                    rule="determinism/dict-keys-iteration",
                    severity=Severity.WARNING,
                    path=info.rel_path,
                    line=lineno,
                    message="iteration over .keys(); iterate the mapping "
                            "itself (insertion order is the contract)",
                    hint="drop .keys(), or use sorted(d) when the consumer "
                         "needs a canonical order",
                )
