"""forkstate/*: shared-state mutation across the fork boundary.

Worker processes are forked (or spawned) copies: a mutation of
module-level or closure state inside a worker changes *that worker's*
copy and silently diverges from both the parent and the serial run —
the picklability rules catch unshippable arguments, but nothing until
now caught state that ships fine and then forks into inconsistency.

``forkstate/worker-global-mutation`` (error) walks the project call
graph from the worker entrypoints (the configured pool internals plus
every function passed as the task to ``ordered_process_map``) and flags,
in any function reachable from them:

- stores to ``global``- or ``nonlocal``-declared names,
- stores through module-level names (``_CACHE[key] = ...``,
  ``STATE.attr = ...``),
- mutating method calls on module-level names (``.append``, ``.update``,
  ``.add``, ...).

Registered ``repro.obs`` instruments are exempt: names bound at module
level to ``counter()``/``gauge()``/``histogram()`` (and the ``obs``
package internals themselves) are the sanctioned cross-process channel —
the pool snapshots worker-side counters and merges them back
deterministically. Anything else needs an inline
``# lint: allow[forkstate/worker-global-mutation]`` with a comment
explaining why the divergence is designed (e.g. the pool initializer
priming per-worker payload globals).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.config import LintConfig
from repro.analysis.engine import register
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import ModuleInfo, Project
from repro.analysis.rules.lifecycle import dotted_name, tail_matches

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "extend",
        "insert",
        "remove",
        "discard",
        "sort",
        "reverse",
    }
)


def _module_level_names(
    info: ModuleInfo, config: LintConfig
) -> dict[str, bool]:
    """Top-level bindings of a module -> "is a registered instrument"."""
    names: dict[str, bool] = {}
    for stmt in info.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        for target in targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    instrument = False
                    if isinstance(value, ast.Call):
                        name = dotted_name(value.func) or ""
                        instrument = any(
                            tail_matches(name, factory)
                            for factory in config.fork_instrument_factories
                        )
                    names[sub.id] = names.get(sub.id, False) or instrument
    return names


def _worker_roots(
    project: Project, graph: CallGraph, config: LintConfig
) -> list[str]:
    roots = [q for q in config.fork_entrypoints if q in graph.functions]
    for info in project.modules:
        for node in ast.walk(info.tree):
            if not (isinstance(node, ast.Call) and node.args):
                continue
            name = dotted_name(node.func) or ""
            if not any(
                tail_matches(name, map_name)
                for map_name in config.parallel_map_names
            ):
                continue
            task = node.args[0]
            if isinstance(task, ast.Name):
                resolved = graph.resolve(info.module, task.id)
                if resolved is not None:
                    roots.append(resolved)
    return sorted(set(roots))


def _declared(func: ast.AST, kind: type[ast.stmt]) -> set[str]:
    out: set[str] = set()
    for sub in ast.walk(func):
        if isinstance(sub, kind):
            out.update(sub.names)  # type: ignore[attr-defined]
    return out


def _mutations(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    module_names: dict[str, bool],
    config: LintConfig,
) -> Iterator[tuple[int, str]]:
    """(line, description) for every shared-state store in ``func``."""
    global_names = _declared(func, ast.Global)
    nonlocal_names = _declared(func, ast.Nonlocal)

    def exempt(name: str) -> bool:
        return module_names.get(name, False)  # registered instrument

    for sub in ast.walk(func):
        if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id in global_names and not exempt(target.id):
                        yield (
                            sub.lineno,
                            f"store to global {target.id!r}",
                        )
                    elif target.id in nonlocal_names:
                        yield (
                            sub.lineno,
                            f"store to nonlocal {target.id!r}",
                        )
                elif isinstance(target, (ast.Attribute, ast.Subscript)):
                    base = target.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id in module_names
                        and not exempt(base.id)
                    ):
                        what = (
                            "item" if isinstance(target, ast.Subscript)
                            else "attribute"
                        )
                        yield (
                            sub.lineno,
                            f"{what} store through module-level "
                            f"{base.id!r}",
                        )
        elif isinstance(sub, ast.Call):
            func_expr = sub.func
            if (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr in _MUTATORS
                and isinstance(func_expr.value, ast.Name)
                and func_expr.value.id in module_names
                and not exempt(func_expr.value.id)
            ):
                yield (
                    sub.lineno,
                    f".{func_expr.attr}() on module-level "
                    f"{func_expr.value.id!r}",
                )


@register(
    "forkstate/worker-global-mutation",
    "code reachable from pool worker entrypoints must not mutate "
    "module-level or closure state (each worker forks its own copy and "
    "silently diverges); registered obs instruments are the sanctioned "
    "channel",
    Severity.ERROR,
)
def check_worker_global_mutation(
    project: Project, config: LintConfig
) -> Iterator[Finding]:
    graph = build_call_graph(project)
    roots = _worker_roots(project, graph, config)
    chains = graph.reachable_from(roots)
    module_names: dict[str, dict[str, bool]] = {}
    modules_by_name = {info.module: info for info in project.modules}
    for qualname in sorted(chains):
        fn = graph.functions[qualname]
        info = modules_by_name.get(fn.module)
        if info is None or info.package in config.fork_exempt_packages:
            continue
        if fn.module not in module_names:
            module_names[fn.module] = _module_level_names(info, config)
        chain = chains[qualname]
        via = (
            "" if len(chain) == 1
            else " (via " + " -> ".join(
                q.rsplit(".", 1)[-1] for q in chain
            ) + ")"
        )
        for line, description in _mutations(
            fn.node, module_names[fn.module], config
        ):
            yield Finding(
                rule="forkstate/worker-global-mutation",
                severity=Severity.ERROR,
                path=fn.rel_path,
                line=line,
                message=(
                    f"{description} in {qualname}, which runs inside "
                    f"pool workers{via}; the mutation stays in that "
                    "worker's copy and diverges from the serial run"
                ),
                hint="return the data to the parent, use a registered "
                     "obs instrument, or carry an inline allow with the "
                     "design rationale (pool-initializer priming)",
            )
