"""exceptions/*: broad-``except`` discipline and interrupt re-raising.

The resilience layer's contract (``docs/robustness.md``) is that
:class:`~repro.errors.DeadlineExceeded` is control flow, not an item
failure — *nothing* outside the sanctioned policy engine may absorb it,
and nothing anywhere may absorb ``KeyboardInterrupt``/``SystemExit``.

- ``exceptions/broad-except`` (error) — ``except Exception`` (or broader)
  outside the sanctioned modules (``repro.resilience.policy``,
  ``repro.perf.parallel``). A broad handler is tolerated when the same
  ``try`` first catches ``DeadlineExceeded`` (and ideally
  ``KeyboardInterrupt``) and re-raises, which proves interrupts pass
  through untouched. Bare ``except:`` / ``except BaseException`` is
  tolerated only when the handler's last statement is a bare ``raise``
  (the cleanup-and-rethrow idiom).
- ``exceptions/swallowed-interrupt`` (error) — a handler that catches
  ``DeadlineExceeded`` or ``KeyboardInterrupt`` and does not re-raise.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import LintConfig
from repro.analysis.engine import register
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project

_INTERRUPTS = ("DeadlineExceeded", "KeyboardInterrupt", "SystemExit")


def _caught_names(handler: ast.ExceptHandler) -> list[str]:
    """The (unqualified) exception class names a handler catches.

    An untyped ``except:`` is reported as catching ``BaseException``.
    """
    node = handler.type
    if node is None:
        return ["BaseException"]
    types = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for t in types:
        if isinstance(t, ast.Name):
            names.append(t.id)
        elif isinstance(t, ast.Attribute):
            names.append(t.attr)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler contains a bare ``raise`` anywhere."""
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


def _ends_with_bare_raise(handler: ast.ExceptHandler) -> bool:
    body = handler.body
    return bool(body) and isinstance(body[-1], ast.Raise) and body[-1].exc is None


def _interrupt_shielded(try_node: ast.Try, upto: int) -> bool:
    """True when a handler before index ``upto`` re-raises DeadlineExceeded."""
    for handler in try_node.handlers[:upto]:
        if "DeadlineExceeded" in _caught_names(handler) and _reraises(handler):
            return True
    return False


@register(
    "exceptions/broad-except",
    "except Exception/BaseException only at sanctioned resilience sites, "
    "or shielded by a preceding DeadlineExceeded re-raise handler",
    Severity.ERROR,
)
def check_broad_except(project: Project, config: LintConfig) -> Iterator[Finding]:
    for info in project.modules:
        sanctioned = info.module in config.exception_sanctioned
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Try):
                continue
            for index, handler in enumerate(node.handlers):
                names = _caught_names(handler)
                broad_base = handler.type is None or "BaseException" in names
                if broad_base:
                    if not _ends_with_bare_raise(handler):
                        yield Finding(
                            rule="exceptions/broad-except",
                            severity=Severity.ERROR,
                            path=info.rel_path,
                            line=handler.lineno,
                            message=(
                                "bare except / except BaseException can "
                                "absorb KeyboardInterrupt and SystemExit"
                            ),
                            hint="catch Exception (at a sanctioned site) or "
                                 "end the handler with a bare raise",
                        )
                    continue
                if "Exception" not in names:
                    continue
                if sanctioned or _interrupt_shielded(node, index):
                    continue
                yield Finding(
                    rule="exceptions/broad-except",
                    severity=Severity.ERROR,
                    path=info.rel_path,
                    line=handler.lineno,
                    message=(
                        "broad `except Exception` outside the sanctioned "
                        "resilience sites can absorb DeadlineExceeded "
                        "control flow"
                    ),
                    hint="add a preceding `except (DeadlineExceeded, "
                         "KeyboardInterrupt): raise` handler, narrow the "
                         "exception types, or route the work through "
                         "repro.resilience.guard",
                )


@register(
    "exceptions/swallowed-interrupt",
    "handlers catching DeadlineExceeded/KeyboardInterrupt must re-raise",
    Severity.ERROR,
)
def check_swallowed_interrupt(
    project: Project, config: LintConfig
) -> Iterator[Finding]:
    for info in project.modules:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = [n for n in _caught_names(node) if n in _INTERRUPTS]
            if not caught or _reraises(node):
                continue
            yield Finding(
                rule="exceptions/swallowed-interrupt",
                severity=Severity.ERROR,
                path=info.rel_path,
                line=node.lineno,
                message=(
                    f"handler catches {', '.join(caught)} without "
                    "re-raising; interrupts are control flow, never item "
                    "failures"
                ),
                hint="re-raise with a bare `raise` after any cleanup",
            )
