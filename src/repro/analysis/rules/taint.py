"""taint/*: nondeterminism propagated to persisted or compared values.

The determinism family (:mod:`repro.analysis.rules.determinism`) flags
hazardous *expressions* where they appear; this family tracks the
*values*: a nondeterministic source (wall-clock time, directory listing
order, unseeded randomness, set iteration) must never flow — through
assignments, arithmetic, loops, or project-internal calls — into a sink
that persists or compares it (checkpoint payloads via
``write_json_atomic``, integrity digests via ``attach_checksum``, wire
dicts via ``span_to_wire``). Sanitizers kill taint: ``sorted()``
restores a canonical order, aggregations (``len``/``sum``/``min``/
``max``) are order-independent.

- ``taint/nondeterministic-sink`` (error) — a tainted value reaches a
  registered sink call. Intraprocedurally this is a fixpoint over the
  CFG (loop-carried taint converges); interprocedurally, functions whose
  return value is tainted are promoted to sources for their callers and
  iterated over the call graph until stable.

- ``taint/unseeded-rng`` (error) — ``random.Random()`` /
  ``default_rng()`` constructed with no seed, or seeded from a parameter
  whose default is ``None`` (the caller that forgets the kwarg silently
  gets run-to-run jitter). Pin with ``Random(0 if seed is None else
  seed)`` or require the argument.

Scope: the determinism-critical packages plus ``eval`` and ``obs`` —
the layers that assemble checkpoint payloads and wire formats.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.cfg import CFG, Node, build_cfg, function_cfgs
from repro.analysis.config import LintConfig
from repro.analysis.dataflow import ForwardAnalysis
from repro.analysis.engine import register
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import ModuleInfo, Project
from repro.analysis.rules.determinism import is_set_expr
from repro.analysis.rules.lifecycle import _own_exprs, dotted_name, tail_matches

TaintState = frozenset  # of tainted variable names


def _scope(config: LintConfig) -> frozenset[str]:
    return frozenset(config.determinism_scope) | {"eval", "obs"}


def _matches_any(name: str, patterns: tuple[str, ...]) -> bool:
    return any(tail_matches(name, pattern) for pattern in patterns)


def _expr_tainted(
    expr: ast.expr,
    tainted: frozenset,
    config: LintConfig,
    tainted_funcs: frozenset[str],
) -> bool:
    """Does evaluating ``expr`` produce a nondeterministic value?"""
    if isinstance(expr, ast.Call):
        name = dotted_name(expr.func) or ""
        if name and _matches_any(name, config.taint_sanitizers):
            return False
        if name and _matches_any(name, config.taint_sources):
            return True
        if name and (
            name in tainted_funcs
            or name.rsplit(".", 1)[-1] in tainted_funcs
        ):
            return True
        return any(
            _expr_tainted(arg, tainted, config, tainted_funcs)
            for arg in list(expr.args) + [kw.value for kw in expr.keywords]
        )
    if isinstance(expr, ast.Name):
        return expr.id in tainted
    for child in ast.iter_child_nodes(expr):
        if isinstance(child, ast.expr) and _expr_tainted(
            child, tainted, config, tainted_funcs
        ):
            return True
    return False


class _TaintAnalysis(ForwardAnalysis[TaintState]):
    """Which local names hold nondeterministic values at each point."""

    def __init__(
        self, config: LintConfig, tainted_funcs: frozenset[str]
    ) -> None:
        self.config = config
        self.tainted_funcs = tainted_funcs

    def initial(self) -> TaintState:
        return frozenset()

    def bottom(self) -> TaintState:
        return frozenset()

    def join(self, a: TaintState, b: TaintState) -> TaintState:
        return a | b

    def transfer(self, node: Node, state: TaintState) -> TaintState:
        stmt = node.stmt
        if stmt is None:
            return state
        out = set(state)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = stmt.value
            if value is not None:
                hot = _expr_tainted(
                    value, state, self.config, self.tainted_funcs
                )
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            if hot:
                                out.add(sub.id)
                            else:
                                out.discard(sub.id)  # strong update
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name) and _expr_tainted(
                stmt.value, state, self.config, self.tainted_funcs
            ):
                out.add(stmt.target.id)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            # Iterating a set (order nondeterminism) or a tainted
            # iterable taints the loop targets.
            if is_set_expr(stmt.iter) or _expr_tainted(
                stmt.iter, state, self.config, self.tainted_funcs
            ):
                for sub in ast.walk(stmt.target):
                    if isinstance(sub, ast.Name):
                        out.add(sub.id)
        return frozenset(out)


def _function_cfg_index(info: ModuleInfo) -> list[tuple[str, CFG]]:
    return function_cfgs(info.tree)


def _returns_tainted(
    cfg: CFG, config: LintConfig, tainted_funcs: frozenset[str]
) -> bool:
    analysis = _TaintAnalysis(config, tainted_funcs)
    states = analysis.solve(cfg)
    for node in cfg.nodes:
        stmt = node.stmt
        if (
            isinstance(stmt, ast.Return)
            and stmt.value is not None
            and _expr_tainted(
                stmt.value, states[node.id], config, tainted_funcs
            )
        ):
            return True
    return False


def _tainted_functions(
    graph: CallGraph, config: LintConfig, scope: frozenset[str]
) -> frozenset[str]:
    """Fixpoint of "returns a tainted value" over the call graph."""
    tainted: set[str] = set()
    for _pass in range(5):
        changed = False
        frozen = frozenset(tainted)
        for qualname, fn in graph.functions.items():
            if qualname in tainted:
                continue
            package = fn.module.split(".")[1] if "." in fn.module else ""
            if package not in scope:
                continue
            if _returns_tainted(build_cfg(fn.node), config, frozen):
                tainted.add(qualname)
                tainted.add(fn.node.name)
                changed = True
        if not changed:
            break
    return frozenset(tainted)


@register(
    "taint/nondeterministic-sink",
    "nondeterministic values (time, fs order, unseeded randomness, set "
    "iteration) must not reach checkpoint payloads, checksums, or wire "
    "dicts; sanitize with sorted()/aggregation or pin the seed",
    Severity.ERROR,
)
def check_taint_sinks(
    project: Project, config: LintConfig
) -> Iterator[Finding]:
    scope = _scope(config)
    graph = build_call_graph(project)
    tainted_funcs = _tainted_functions(graph, config, scope)
    for info in project.modules:
        if info.package not in scope:
            continue
        for qualname, cfg in _function_cfg_index(info):
            analysis = _TaintAnalysis(config, tainted_funcs)
            states = analysis.solve(cfg)
            for node in cfg.nodes:
                if node.stmt is None:
                    continue
                state = states[node.id]
                for expr in _own_exprs(node.stmt):
                    for sub in ast.walk(expr):
                        if not isinstance(sub, ast.Call):
                            continue
                        name = dotted_name(sub.func) or ""
                        if not (
                            name and _matches_any(name, config.taint_sinks)
                        ):
                            continue
                        hot = [
                            arg
                            for arg in list(sub.args)
                            + [kw.value for kw in sub.keywords]
                            if _expr_tainted(
                                arg, state, config, tainted_funcs
                            )
                        ]
                        if hot:
                            yield Finding(
                                rule="taint/nondeterministic-sink",
                                severity=Severity.ERROR,
                                path=info.rel_path,
                                line=sub.lineno,
                                message=(
                                    f"nondeterministic value flows into "
                                    f"{name.rsplit('.', 1)[-1]}() in "
                                    f"{qualname}; persisted/compared "
                                    "output would differ run to run"
                                ),
                                hint="sanitize at the source: sorted() "
                                     "for orderings, a pinned seed for "
                                     "randomness, logical counters for "
                                     "time",
                            )


def _param_defaults_none(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Parameter names whose default is the literal ``None``."""
    args = func.args
    names: set[str] = set()
    positional = args.posonlyargs + args.args
    for arg, default in zip(
        positional[len(positional) - len(args.defaults):], args.defaults
    ):
        if isinstance(default, ast.Constant) and default.value is None:
            names.add(arg.arg)
    for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        if isinstance(kw_default, ast.Constant) and kw_default.value is None:
            names.add(arg.arg)
    return names


def _assigned_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    for sub in ast.walk(func):
        if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in targets:
                for element in ast.walk(target):
                    if isinstance(element, ast.Name):
                        names.add(element.id)
    return names


_RNG_CONSTRUCTORS = ("Random", "default_rng")


@register(
    "taint/unseeded-rng",
    "RNG constructed without a pinned seed (no argument, or a seed "
    "parameter defaulting to None) in determinism-critical code",
    Severity.ERROR,
)
def check_unseeded_rng(
    project: Project, config: LintConfig
) -> Iterator[Finding]:
    scope = _scope(config)
    for info in project.modules:
        if info.package not in scope:
            continue
        functions: list[ast.FunctionDef | ast.AsyncFunctionDef] = [
            node
            for node in ast.walk(info.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        contexts: list[
            tuple[ast.AST, set[str], str]
        ] = [(info.tree, set(), "<module>")]
        for func in functions:
            maybe_none = _param_defaults_none(func) - _assigned_names(func)
            contexts.append((func, maybe_none, func.name))
        seen: set[int] = set()
        for owner, maybe_none, where in reversed(contexts):
            # Innermost context wins: reversed() visits functions before
            # the module, and `seen` keeps each call site single-owner.
            for sub in ast.walk(owner):
                if not isinstance(sub, ast.Call) or id(sub) in seen:
                    continue
                name = dotted_name(sub.func) or ""
                if not name or not _matches_any(name, _RNG_CONSTRUCTORS):
                    continue
                seen.add(id(sub))
                if not sub.args and not sub.keywords:
                    yield Finding(
                        rule="taint/unseeded-rng",
                        severity=Severity.ERROR,
                        path=info.rel_path,
                        line=sub.lineno,
                        message=(
                            f"{name}() constructed without a seed in "
                            f"{where}; every run draws a different "
                            "sequence"
                        ),
                        hint="thread an explicit seed (DistinctConfig."
                             "seed) through to this constructor",
                    )
                elif (
                    len(sub.args) == 1
                    and not sub.keywords
                    and isinstance(sub.args[0], ast.Name)
                    and sub.args[0].id in maybe_none
                ):
                    yield Finding(
                        rule="taint/unseeded-rng",
                        severity=Severity.ERROR,
                        path=info.rel_path,
                        line=sub.lineno,
                        message=(
                            f"{name}({sub.args[0].id}) in {where} seeds "
                            "from a parameter whose default is None — "
                            "callers that omit it get run-to-run jitter"
                        ),
                        hint=f"pin the fallback: "
                             f"{name}(0 if {sub.args[0].id} is None else "
                             f"{sub.args[0].id})",
                    )
