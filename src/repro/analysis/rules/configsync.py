"""config/*: every ``DistinctConfig`` field documented and reachable.

``DistinctConfig`` is the pipeline's entire user-facing knob surface.
A field that exists in code but not in ``docs/api.md`` is invisible; a
field with neither a CLI flag nor an explicit programmatic-only
declaration is unreachable for operators. The contract, per field:

- it must be mentioned (as a word) in the docs file
  (``config/undocumented``);
- it must either map to a CLI flag that actually exists in
  ``repro.cli``'s source (``config/flag-missing`` when the mapped flag
  is gone) or be declared programmatic-only in the lint config
  (``config/unreachable`` otherwise);
- flag-map / programmatic-only entries naming fields that no longer
  exist are stale (``config/stale-entry``).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.config import LintConfig
from repro.analysis.engine import register
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project


def _dataclass_fields(project: Project, config: LintConfig) -> tuple[dict[str, int] | None, str]:
    """{field: line} of the config dataclass, or (None, problem)."""
    info = project.by_module(config.config_module)
    if info is None:
        return None, f"config module {config.config_module!r} not found"
    for node in ast.walk(info.tree):
        if isinstance(node, ast.ClassDef) and node.name == config.config_class:
            fields = {
                stmt.target.id: stmt.lineno
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and not stmt.target.id.startswith("_")
            }
            return fields, info.rel_path
    return None, (
        f"class {config.config_class!r} not found in {config.config_module}"
    )


def _mentioned(text: str, word: str) -> bool:
    return re.search(rf"(?<![\w]){re.escape(word)}(?![\w])", text) is not None


@register(
    "config/undocumented",
    "every DistinctConfig field must be mentioned in docs/api.md",
    Severity.ERROR,
)
def check_config_surface(project: Project, config: LintConfig) -> Iterator[Finding]:
    fields, origin = _dataclass_fields(project, config)
    if fields is None:
        yield Finding(
            rule="config/undocumented",
            severity=Severity.ERROR,
            path=f"src/{config.package}",
            line=1,
            message=origin,
        )
        return
    docs = project.read_text(config.config_docs_file)
    if docs is None:
        yield Finding(
            rule="config/undocumented",
            severity=Severity.ERROR,
            path=config.config_docs_file,
            line=1,
            message=f"docs file {config.config_docs_file!r} is missing; "
                    "the config surface cannot be verified",
        )
        return
    cli_info = project.by_module(config.cli_module)
    cli_source = cli_info.source if cli_info is not None else ""
    programmatic = set(config.config_programmatic_only)

    for name, line in fields.items():
        if not _mentioned(docs, name):
            yield Finding(
                rule="config/undocumented",
                severity=Severity.ERROR,
                path=origin,
                line=line,
                message=f"config field {name!r} is not mentioned in "
                        f"{config.config_docs_file}",
                hint="add it to the DistinctConfig surface table in the "
                     "API docs",
            )
        flag = config.config_flag_map.get(name)
        if flag is not None:
            if f'"{flag}"' not in cli_source and f"'{flag}'" not in cli_source:
                yield Finding(
                    rule="config/flag-missing",
                    severity=Severity.ERROR,
                    path=origin,
                    line=line,
                    message=f"config field {name!r} maps to CLI flag "
                            f"{flag!r}, which does not exist in "
                            f"{config.cli_module}",
                    hint="restore the flag, update the flag map, or move "
                         "the field to programmatic-only",
                )
        elif name not in programmatic:
            yield Finding(
                rule="config/unreachable",
                severity=Severity.ERROR,
                path=origin,
                line=line,
                message=(
                    f"config field {name!r} has no CLI flag and is not "
                    "declared programmatic-only"
                ),
                hint="add a CLI flag + flag-map entry, or declare it in "
                     "config_programmatic_only (repro.analysis.config)",
            )

    for name in [*config.config_flag_map, *programmatic]:
        if name not in fields:
            yield Finding(
                rule="config/stale-entry",
                severity=Severity.ERROR,
                path=origin,
                line=1,
                message=f"lint config references config field {name!r}, "
                        f"which no longer exists on {config.config_class}",
                hint="drop the stale flag-map / programmatic-only entry",
            )


@register(
    "config/unreachable",
    "fields need a CLI flag or an explicit programmatic-only declaration",
    Severity.ERROR,
)
def _listed_unreachable(project: Project, config: LintConfig) -> Iterator[Finding]:
    # Emitted by check_config_surface; registered for listing/overrides.
    return
    yield  # pragma: no cover


@register(
    "config/flag-missing",
    "flag-map entries must point at flags that exist in the CLI source",
    Severity.ERROR,
)
def _listed_flag_missing(project: Project, config: LintConfig) -> Iterator[Finding]:
    return
    yield  # pragma: no cover


@register(
    "config/stale-entry",
    "flag-map / programmatic-only entries must name existing fields",
    Severity.ERROR,
)
def _listed_stale(project: Project, config: LintConfig) -> Iterator[Finding]:
    return
    yield  # pragma: no cover
