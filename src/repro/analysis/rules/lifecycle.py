"""lifecycle/*: path-sensitive acquire/release checking over CFGs.

The perf layer's resources are unmanaged by design — shm segments must
outlive ``with`` blocks, pools are shut down from generator ``finally``
clauses — so nothing but discipline guarantees that every acquire
reaches its release on *every* path, including the exception edges and
the deadline-tail path where a never-started generator's ``finally`` is
skipped. This family machine-checks that discipline:

- ``lifecycle/leak`` (error) — a typestate analysis over each function's
  CFG (:mod:`repro.analysis.cfg` + :mod:`repro.analysis.dataflow`).
  Every acquire site of a registered resource
  (:data:`~repro.analysis.config.DEFAULT_LIFECYCLE_RESOURCES`) must be
  dead — released, returned to the caller, or stored/escaped into an
  owning structure — on every path reaching the function's normal and
  exceptional exits. Passing a handle to a registered *borrower*
  (``ordered_process_map``) is not an escape: the caller keeps
  release responsibility (the exact contract behind the guarded
  ``payload_handle.release()`` in repro.eval.runner). ``None`` guards
  are understood: on the ``x is None`` branch, sites ``x`` could have
  held are treated as never-acquired — the guarded-release idiom — which
  trades a sliver of soundness (an alias kept live after ``x = None``
  would be missed) for zero false positives on the project's canonical
  pattern.

- ``lifecycle/fsync-before-rename`` (error) — in any function that opens
  a file for writing, every ``os.replace`` must have an ``os.fsync`` on
  *all* incoming paths (MUST-dataflow); rename-without-fsync is how a
  checkpoint survives the process but not the machine.

Functions that *return* a registered acquire directly (``_new_pool``
returning a ``ProcessPoolExecutor``) are promoted to acquire functions
themselves — a one-level call-graph summary — so their callers are held
to the same contract.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import build_call_graph
from repro.analysis.cfg import Node, function_cfgs
from repro.analysis.config import LintConfig, ResourceSpec
from repro.analysis.dataflow import MUST, ForwardAnalysis, GenKillAnalysis
from repro.analysis.engine import register
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project

__all__ = ["dotted_name", "tail_matches"]

#: Abstract values a variable can hold besides live site ids.
NONE = "none"
OTHER = "other"

Val = int | str
EnvPair = tuple[str, Val]
#: (variable environment, live-site set) — both joined by union.
State = tuple[frozenset[EnvPair], frozenset[int]]


def dotted_name(expr: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def tail_matches(name: str, pattern: str) -> bool:
    """True when ``name``'s dotted tail is ``pattern``."""
    return name == pattern or name.endswith("." + pattern)


def _own_exprs(stmt: ast.AST) -> list[ast.expr]:
    """The expressions evaluated *at* this CFG node — compound statements
    contribute only their header (their bodies are separate nodes)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    return [
        child for child in ast.iter_child_nodes(stmt)
        if isinstance(child, ast.expr)
    ]


def _kwargs_ok(call: ast.Call, spec: ResourceSpec) -> bool:
    for key, expected in spec.require_kwargs:
        for kw in call.keywords:
            if (
                kw.arg == key
                and isinstance(kw.value, ast.Constant)
                and kw.value.value == expected
            ):
                break
        else:
            return False
    return True


def _match_acquire(
    expr: ast.expr,
    specs: tuple[ResourceSpec, ...],
    extra: dict[str, ResourceSpec],
) -> ResourceSpec | None:
    """The resource spec ``expr`` acquires, if it is an acquire call."""
    if not isinstance(expr, ast.Call):
        return None
    name = dotted_name(expr.func)
    if name is None:
        return None
    for spec in specs:
        for pattern in spec.acquire:
            if tail_matches(name, pattern) and _kwargs_ok(expr, spec):
                return spec
    return extra.get(name.rsplit(".", 1)[-1])


def _none_branch(test: ast.expr | None, polarity: bool) -> tuple[str, bool] | None:
    """Decode a None-guard: ``(var, var_is_none_on_this_branch)``.

    Understands ``x is None`` / ``x is not None`` / bare ``x`` tests.
    """
    if isinstance(test, ast.Name):
        return (test.id, not polarity)
    if (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and len(test.ops) == 1
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        if isinstance(test.ops[0], ast.Is):
            return (test.left.id, polarity)
        if isinstance(test.ops[0], ast.IsNot):
            return (test.left.id, not polarity)
    return None


class _LeakAnalysis(ForwardAnalysis[State]):
    """Typestate: which acquire sites may still be live at each point."""

    def __init__(
        self,
        specs: tuple[ResourceSpec, ...],
        extra: dict[str, ResourceSpec],
        borrowers: tuple[str, ...],
        escape_names: frozenset[str] = frozenset(),
    ) -> None:
        self.specs = specs
        self.extra = extra
        self.borrowers = borrowers
        #: names declared global/nonlocal: storing a handle into one
        #: hands ownership to the enclosing scope (handle_break's
        #: ``nonlocal pool`` — the outer generator's finally shuts it
        #: down).
        self.escape_names = escape_names
        #: site id (CFG node id) -> (spec, acquire line)
        self.sites: dict[int, tuple[ResourceSpec, int]] = {}
        self._release_methods: dict[str, list[ResourceSpec]] = {}
        for spec in specs:
            for method in spec.release_methods:
                self._release_methods.setdefault(method, []).append(spec)
        for spec in extra.values():
            for method in spec.release_methods:
                entries = self._release_methods.setdefault(method, [])
                if spec not in entries:
                    entries.append(spec)

    # -- lattice -------------------------------------------------------

    def initial(self) -> State:
        return (frozenset(), frozenset())

    def bottom(self) -> State:
        return (frozenset(), frozenset())

    def join(self, a: State, b: State) -> State:
        return (a[0] | b[0], a[1] | b[1])

    # -- transfer ------------------------------------------------------

    def transfer(self, node: Node, state: State) -> State:
        stmt = node.stmt
        if stmt is None:
            return state
        env: dict[str, set[Val]] = {}
        for var, val in state[0]:
            env.setdefault(var, set()).add(val)
        live = set(state[1])

        # Program order: the RHS (and any call arguments) is evaluated
        # against the *old* bindings — `x = wrap(x)` escapes the old x,
        # not the freshly acquired site — then the assignment binds.
        self._apply_releases(stmt, env, live)
        self._apply_escapes(stmt, env, live)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._transfer_assign(stmt, node, env, live)

        pairs = frozenset(
            (var, val) for var, vals in env.items() for val in vals
        )
        return (pairs, frozenset(live))

    def _transfer_assign(
        self,
        stmt: ast.Assign | ast.AnnAssign | ast.AugAssign,
        node: Node,
        env: dict[str, set[Val]],
        live: set[int],
    ) -> None:
        value = stmt.value
        if value is None:  # annotation-only AnnAssign
            return
        vals = self._eval(value, node, env, live)
        targets: list[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        else:
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name):
                env[target.id] = set(vals)
                if target.id in self.escape_names:
                    for val in vals:
                        if isinstance(val, int):
                            live.discard(val)
            elif isinstance(target, (ast.Tuple, ast.List)):
                # Unpacking loses tracking: every bound name is opaque.
                for element in ast.walk(target):
                    if isinstance(element, ast.Name):
                        env[element.id] = {OTHER}

    def _eval(
        self,
        expr: ast.expr,
        node: Node,
        env: dict[str, set[Val]],
        live: set[int],
    ) -> set[Val]:
        """Abstract value of an assigned expression; registers acquires."""
        spec = _match_acquire(expr, self.specs, self.extra)
        if spec is not None:
            site = node.id
            self.sites[site] = (spec, expr.lineno)
            live.add(site)
            return {site}
        if isinstance(expr, ast.IfExp):
            return self._eval(expr.body, node, env, live) | self._eval(
                expr.orelse, node, env, live
            )
        if isinstance(expr, ast.Constant) and expr.value is None:
            return {NONE}
        if isinstance(expr, ast.Name):
            return set(env.get(expr.id, {OTHER}))
        return {OTHER}

    def _apply_releases(
        self, stmt: ast.AST, env: dict[str, set[Val]], live: set[int]
    ) -> None:
        for expr in _own_exprs(stmt):
            for call in ast.walk(expr):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                if isinstance(func, ast.Attribute) and isinstance(
                    func.value, ast.Name
                ):
                    specs = self._release_methods.get(func.attr, ())
                    if specs:
                        kinds = {spec.kind for spec in specs}
                        for val in env.get(func.value.id, set()):
                            if (
                                isinstance(val, int)
                                and val in self.sites
                                and self.sites[val][0].kind in kinds
                            ):
                                live.discard(val)
                name = dotted_name(call.func)
                if name is None:
                    continue
                for spec in list(self.specs) + list(self.extra.values()):
                    if any(
                        tail_matches(name, pattern)
                        for pattern in spec.release_calls
                    ):
                        # Singleton release (disable_tracing): clears every
                        # live site of this resource kind.
                        for site in list(live):
                            if self.sites[site][0].kind == spec.kind:
                                live.discard(site)

    def _apply_escapes(
        self, stmt: ast.AST, env: dict[str, set[Val]], live: set[int]
    ) -> None:
        """Ownership transfers: the site is no longer ours to release."""
        escaped_names: list[str] = []
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            escaped_names.extend(self._names_in(stmt.value))
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    escaped_names.extend(self._names_in(stmt.value))
        for expr in _own_exprs(stmt):
            for sub in ast.walk(expr):
                if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                    inner = sub.value
                    if inner is not None:
                        escaped_names.extend(self._names_in(inner))
                if not isinstance(sub, ast.Call):
                    continue
                name = dotted_name(sub.func) or ""
                if any(
                    tail_matches(name, borrower)
                    for borrower in self.borrowers
                ):
                    continue  # borrowed, not owned: we still must release
                if isinstance(sub.func, ast.Attribute) and isinstance(
                    sub.func.value, ast.Name
                ):
                    if sub.func.attr in self._release_methods:
                        continue  # the release itself is not an escape
                for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                    escaped_names.extend(self._names_in(arg))
        for var in escaped_names:
            for val in env.get(var, set()):
                if isinstance(val, int):
                    live.discard(val)

    @staticmethod
    def _names_in(expr: ast.expr) -> list[str]:
        return [
            sub.id for sub in ast.walk(expr) if isinstance(sub, ast.Name)
        ]

    # -- branch refinement ---------------------------------------------

    def refine(
        self, test: ast.expr | None, polarity: bool, state: State
    ) -> State:
        guard = _none_branch(test, polarity)
        if guard is None:
            return state
        var, is_none = guard
        env: dict[str, set[Val]] = {}
        for name, val in state[0]:
            env.setdefault(name, set()).add(val)
        if var not in env:
            return state
        live = set(state[1])
        if is_none:
            removed = {val for val in env[var] if isinstance(val, int)}
            env[var] = {NONE}
            # The guard proves the acquire never happened on this path
            # (the guarded-release idiom); see the module docstring for
            # the alias caveat this accepts.
            live -= removed
        else:
            remaining = env[var] - {NONE}
            if remaining:
                env[var] = remaining
        pairs = frozenset(
            (name, val) for name, vals in env.items() for val in vals
        )
        return (pairs, frozenset(live))


def _acquire_summaries(
    project: Project, specs: tuple[ResourceSpec, ...]
) -> dict[str, ResourceSpec]:
    """One-level summaries: functions whose return *is* an acquire."""
    graph = build_call_graph(project)
    out: dict[str, ResourceSpec] = {}
    for fn in graph.functions.values():
        for sub in ast.walk(fn.node):
            if isinstance(sub, ast.Return) and sub.value is not None:
                spec = _match_acquire(sub.value, specs, {})
                if spec is not None:
                    out[fn.node.name] = spec
    return out


@register(
    "lifecycle/leak",
    "every acquired resource (shm segment, payload, pool, tracer) must be "
    "released, returned, or handed off on every CFG path, including "
    "exception edges",
    Severity.ERROR,
)
def check_leaks(project: Project, config: LintConfig) -> Iterator[Finding]:
    specs = config.lifecycle_resources
    extra = _acquire_summaries(project, specs)
    for info in project.modules:
        for qualname, cfg in function_cfgs(info.tree):
            declared: set[str] = set()
            for sub in ast.walk(cfg.func):
                if isinstance(sub, (ast.Global, ast.Nonlocal)):
                    declared.update(sub.names)
            analysis = _LeakAnalysis(
                specs, extra, config.lifecycle_borrowers, frozenset(declared)
            )
            states = analysis.solve(cfg)
            leaked = (
                states[cfg.exit][1] | states[cfg.raise_exit][1]
            )
            for site in sorted(leaked):
                spec, line = analysis.sites[site]
                via = []
                if site in states[cfg.exit][1]:
                    via.append("return")
                if site in states[cfg.raise_exit][1]:
                    via.append("exception")
                yield Finding(
                    rule="lifecycle/leak",
                    severity=Severity.ERROR,
                    path=info.rel_path,
                    line=line,
                    message=(
                        f"{spec.kind} acquired in {qualname} may never be "
                        f"released on a path to {'/'.join(via)} exit"
                    ),
                    hint=(
                        "release in a finally; if the handle is conditional, "
                        "bind it to a separate variable initialised to None "
                        "and guard the release with 'is not None' "
                        "(see repro.eval.runner)"
                    ),
                )


class _FsyncAnalysis(GenKillAnalysis):
    """MUST-availability of an ``os.fsync`` along every incoming path."""

    FACT = "fsync"

    def __init__(self) -> None:
        super().__init__(mode=MUST, universe=frozenset({self.FACT}))

    def gen(self, node: Node) -> frozenset:
        if node.stmt is not None and _node_calls(node.stmt, "os.fsync"):
            return frozenset({self.FACT})
        return frozenset()


def _node_calls(stmt: ast.AST, pattern: str) -> bool:
    for expr in _own_exprs(stmt):
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                name = dotted_name(sub.func)
                if name is not None and tail_matches(name, pattern):
                    return True
    return False


def _opens_for_write(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for sub in ast.walk(func):
        if not (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "open"
        ):
            continue
        mode: ast.expr | None = None
        if len(sub.args) >= 2:
            mode = sub.args[1]
        for kw in sub.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and any(ch in mode.value for ch in "wxa")
        ):
            return True
    return False


@register(
    "lifecycle/fsync-before-rename",
    "in functions that write files, os.replace must be preceded by "
    "os.fsync on every path (rename-without-fsync loses the write on "
    "power failure)",
    Severity.ERROR,
)
def check_fsync_before_rename(
    project: Project, config: LintConfig
) -> Iterator[Finding]:
    for info in project.modules:
        for qualname, cfg in function_cfgs(info.tree):
            if not _opens_for_write(cfg.func):
                continue
            replace_nodes = [
                node
                for node in cfg.nodes
                if node.stmt is not None
                and _node_calls(node.stmt, "os.replace")
            ]
            if not replace_nodes:
                continue
            states = _FsyncAnalysis().solve(cfg)
            for node in replace_nodes:
                if _FsyncAnalysis.FACT not in states[node.id]:
                    yield Finding(
                        rule="lifecycle/fsync-before-rename",
                        severity=Severity.ERROR,
                        path=info.rel_path,
                        line=node.line,
                        message=(
                            f"os.replace in {qualname} is reachable without "
                            "an os.fsync of the written file"
                        ),
                        hint="flush and os.fsync(handle.fileno()) before "
                             "renaming (see write_json_atomic)",
                    )
