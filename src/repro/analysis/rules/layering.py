"""layering/import-dag: the package dependency DAG.

Every internal import must go strictly *down* the layer ranks declared in
:data:`repro.analysis.config.DEFAULT_LAYER_RANKS` (``reldb`` at the
bottom, the CLI at the top). Cross-cutting packages (``errors``, ``obs``,
``resilience``, ``perf``) are importable from any layer but are
themselves constrained to the dependencies listed for them — the
observability layer must never grow a dependency on the pipeline it
observes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import LintConfig
from repro.analysis.engine import register
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import ModuleInfo, Project


def _imported_modules(info: ModuleInfo, package: str) -> Iterator[tuple[str, int]]:
    """Yield (dotted internal module, line) for every internal import."""
    prefix = package + "."
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == package or alias.name.startswith(prefix):
                    yield alias.name, node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative: resolve against this module's package
                base = info.module.split(".")
                # level=1 strips the module name itself; __init__ modules
                # are already named after their package, so strip one less.
                strip = node.level - (1 if info.path.name == "__init__.py" else 0)
                base = base[: len(base) - strip] if strip < len(base) else base[:1]
                target = ".".join(base + (node.module or "").split("."))
                yield target.rstrip("."), node.lineno
            elif node.module and (
                node.module == package or node.module.startswith(prefix)
            ):
                yield node.module, node.lineno


def _package_of(dotted: str, package: str) -> str:
    parts = dotted.split(".")
    if parts[0] != package or len(parts) == 1 or parts[1] == "__main__":
        return package
    return parts[1]


@register(
    "layering/import-dag",
    "internal imports must follow the layer DAG (reldb -> ... -> cli); "
    "cross-cutting packages only import their declared dependencies",
    Severity.ERROR,
)
def check_layering(project: Project, config: LintConfig) -> Iterator[Finding]:
    ranks = config.layer_ranks
    cross = config.cross_cutting
    for info in project.modules:
        src_pkg = info.package
        src_known = src_pkg in ranks or src_pkg in cross
        if not src_known:
            yield Finding(
                rule="layering/import-dag",
                severity=Severity.WARNING,
                path=info.rel_path,
                line=1,
                message=(
                    f"package {src_pkg!r} is not in the layering table; "
                    "its imports cannot be checked"
                ),
                hint="add the package to layer_ranks or cross_cutting in "
                     "repro.analysis.config",
            )
            continue
        for target, lineno in _imported_modules(info, config.package):
            dst_pkg = _package_of(target, config.package)
            if dst_pkg == src_pkg:
                continue
            if src_pkg in cross:
                if dst_pkg not in cross[src_pkg]:
                    yield Finding(
                        rule="layering/import-dag",
                        severity=Severity.ERROR,
                        path=info.rel_path,
                        line=lineno,
                        message=(
                            f"cross-cutting package {src_pkg!r} may only "
                            f"import {{{', '.join(cross[src_pkg]) or 'nothing internal'}}}, "
                            f"not {dst_pkg!r}"
                        ),
                        hint="cross-cutting infrastructure must stay "
                             "dependency-free of the pipeline it serves",
                    )
                continue
            if dst_pkg in cross:
                continue  # anyone may use cross-cutting infrastructure
            if dst_pkg not in ranks:
                yield Finding(
                    rule="layering/import-dag",
                    severity=Severity.WARNING,
                    path=info.rel_path,
                    line=lineno,
                    message=(
                        f"import of unranked package {dst_pkg!r} "
                        "cannot be layer-checked"
                    ),
                    hint="add the package to layer_ranks in "
                         "repro.analysis.config",
                )
                continue
            if ranks[src_pkg] <= ranks[dst_pkg]:
                yield Finding(
                    rule="layering/import-dag",
                    severity=Severity.ERROR,
                    path=info.rel_path,
                    line=lineno,
                    message=(
                        f"{src_pkg!r} (layer {ranks[src_pkg]}) may not import "
                        f"{dst_pkg!r} (layer {ranks[dst_pkg]}): imports must "
                        "go strictly down the DAG "
                        "reldb -> paths/strings -> similarity -> cluster/ml "
                        "-> core -> eval -> cli"
                    ),
                    hint="move the shared code down a layer, invert the "
                         "dependency, or relocate this module to the layer "
                         "it actually belongs to",
                )
