"""metrics/*: the obs metric-name registry, checked in both directions.

``repro.obs.names.REGISTERED_METRICS`` is the canonical catalogue of
every counter/gauge/histogram the pipeline emits (it is what
``docs/observability.md`` documents and what dashboards key on). These
rules cross-check the catalogue against every literal name passed to
``counter(...)`` / ``gauge(...)`` / ``histogram(...)`` in the source
tree:

- ``metrics/unregistered`` (error) — a name used at an instrumentation
  site but missing from the registry: usually a typo that would silently
  create a parallel, never-exported instrument.
- ``metrics/unused`` (error) — a registered name no code emits anymore:
  dead catalogue entries mask real coverage gaps.
- ``metrics/kind-mismatch`` (error) — a name registered as one instrument
  kind but instantiated as another.
- ``metrics/dynamic-name`` (warning) — a non-literal name at a direct
  ``counter(...)``-style call; dynamic names cannot be statically audited
  (registry merge loops going through ``registry.counter(var)`` are
  exempt).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import LintConfig
from repro.analysis.engine import register
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project

_KINDS = ("counter", "gauge", "histogram")


def _registry_entries(
    project: Project, config: LintConfig
) -> tuple[dict[str, tuple[str, int]] | None, str]:
    """{name: (kind, line)} parsed from the registry module's literal."""
    info = project.by_module(config.metrics_registry_module)
    if info is None:
        return None, (
            f"metric registry module {config.metrics_registry_module!r} "
            "not found in the project"
        )
    for node in ast.walk(info.tree):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == config.metrics_registry_name
            for t in targets
        ):
            continue
        if not isinstance(value, ast.Dict):
            return None, (
                f"{config.metrics_registry_name} must be a literal dict "
                "of name -> kind"
            )
        entries: dict[str, tuple[str, int]] = {}
        for key, val in zip(value.keys, value.values):
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(val, ast.Constant)
                and isinstance(val.value, str)
            ):
                entries[key.value] = (val.value, key.lineno)
        return entries, info.rel_path
    return None, (
        f"{config.metrics_registry_name} not found in "
        f"{config.metrics_registry_module}"
    )


def _usages(
    project: Project, config: LintConfig
) -> Iterator[tuple[str, str, str, int, bool]]:
    """Yield (name, kind, rel_path, line, literal) for instrument calls."""
    skip = set(config.metrics_defining_modules) | {config.metrics_registry_module}
    for info in project.modules:
        if info.module in skip:
            continue
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in _KINDS:
                kind, direct = func.id, True
            elif isinstance(func, ast.Attribute) and func.attr in _KINDS:
                kind, direct = func.attr, False
            else:
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                yield arg.value, kind, info.rel_path, node.lineno, True
            elif direct:
                # registry.counter(var) merge loops are exempt; a direct
                # counter(var) call defeats static auditing.
                yield "", kind, info.rel_path, node.lineno, False


@register(
    "metrics/unregistered",
    "every literal metric name must appear in repro.obs.names."
    "REGISTERED_METRICS",
    Severity.ERROR,
)
def check_unregistered(project: Project, config: LintConfig) -> Iterator[Finding]:
    registry, origin = _registry_entries(project, config)
    if registry is None:
        yield Finding(
            rule="metrics/unregistered",
            severity=Severity.ERROR,
            path=f"src/{config.package}",
            line=1,
            message=origin,
            hint="create the registry module with a literal "
                 "name -> kind dict",
        )
        return
    for name, kind, rel_path, line, literal in _usages(project, config):
        if not literal:
            continue
        if name not in registry:
            yield Finding(
                rule="metrics/unregistered",
                severity=Severity.ERROR,
                path=rel_path,
                line=line,
                message=f"metric {name!r} is used here but not registered "
                        f"in {config.metrics_registry_module}",
                hint="add it to REGISTERED_METRICS (and "
                     "docs/observability.md), or fix the typo",
            )
        elif registry[name][0] != kind:
            yield Finding(
                rule="metrics/kind-mismatch",
                severity=Severity.ERROR,
                path=rel_path,
                line=line,
                message=(
                    f"metric {name!r} is registered as a "
                    f"{registry[name][0]} but instantiated as a {kind}"
                ),
                hint="align the call site or the registry entry",
            )


@register(
    "metrics/kind-mismatch",
    "instrument kind at the call site must match the registry",
    Severity.ERROR,
)
def check_kind_mismatch(project: Project, config: LintConfig) -> Iterator[Finding]:
    # Emitted by check_unregistered (which already walks every call site);
    # registered here so the id is listable, overridable, allowlistable.
    return
    yield  # pragma: no cover


@register(
    "metrics/unused",
    "every registered metric name must still be emitted somewhere",
    Severity.ERROR,
)
def check_unused(project: Project, config: LintConfig) -> Iterator[Finding]:
    registry, origin = _registry_entries(project, config)
    if registry is None:
        return
    used = {
        name
        for name, _kind, _path, _line, literal in _usages(project, config)
        if literal
    }
    for name in registry:
        if name not in used:
            kind, line = registry[name]
            yield Finding(
                rule="metrics/unused",
                severity=Severity.ERROR,
                path=origin,
                line=line,
                message=f"registered {kind} {name!r} is never emitted by "
                        "any instrumentation site",
                hint="remove the stale registry entry or restore the "
                     "instrumentation",
            )


@register(
    "metrics/dynamic-name",
    "direct counter()/gauge()/histogram() calls should pass a literal name",
    Severity.WARNING,
)
def check_dynamic_name(project: Project, config: LintConfig) -> Iterator[Finding]:
    for name, kind, rel_path, line, literal in _usages(project, config):
        if literal:
            continue
        yield Finding(
            rule="metrics/dynamic-name",
            severity=Severity.WARNING,
            path=rel_path,
            line=line,
            message=f"{kind}() called with a non-literal name; the "
                    "registry audit cannot see it",
            hint="bind instruments at import time with literal names, or "
                 "go through get_metrics() for dynamic merge loops",
        )
