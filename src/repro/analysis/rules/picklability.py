"""picklability/unpicklable-task: task functions handed to the pool.

``repro.perf.ordered_process_map`` documents that ``fn`` must be a
module-level function taking ``(payload, item)`` — under the ``spawn``
start method (macOS/Windows default) lambdas, closures, and locally
defined functions fail to pickle at submit time, which a Linux
``fork``-based test run never notices. This rule catches the hazard
statically: a lambda (inline or bound to a local name) or a function
defined inside another function passed as the task argument.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import LintConfig
from repro.analysis.engine import register
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import ModuleInfo, Project


class _TaskArgVisitor(ast.NodeVisitor):
    """Tracks nested defs / local lambdas per enclosing function."""

    def __init__(self, info: ModuleInfo, config: LintConfig) -> None:
        self.info = info
        self.map_names = set(config.parallel_map_names)
        self.findings: list[Finding] = []
        self._depth = 0
        self._locals: list[set[str]] = []  # nested defs + lambda bindings

    # -- scope tracking ------------------------------------------------

    def _visit_function(self, node) -> None:
        if self._depth > 0:
            for scope in self._locals:
                scope.add(node.name)
        self._depth += 1
        self._locals.append(set())
        self.generic_visit(node)
        self._locals.pop()
        self._depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._locals and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._locals[-1].add(target.id)
        self.generic_visit(node)

    # -- the check -----------------------------------------------------

    def _is_map_call(self, node: ast.Call) -> bool:
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in self.map_names

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_map_call(node) and node.args:
            task = node.args[0]
            problem = None
            if isinstance(task, ast.Lambda):
                problem = "a lambda"
            elif isinstance(task, ast.Name) and any(
                task.id in scope for scope in self._locals
            ):
                problem = f"locally defined function {task.id!r}"
            if problem is not None:
                self.findings.append(
                    Finding(
                        rule="picklability/unpicklable-task",
                        severity=Severity.ERROR,
                        path=self.info.rel_path,
                        line=node.lineno,
                        message=(
                            f"{problem} passed to ordered_process_map; "
                            "task functions must pickle under the spawn "
                            "start method"
                        ),
                        hint="move the task body to a module-level "
                             "function taking (payload, item) and thread "
                             "state through the payload",
                    )
                )
        self.generic_visit(node)


@register(
    "picklability/unpicklable-task",
    "ordered_process_map task functions must be module-level "
    "(lambdas/closures break under the spawn start method)",
    Severity.ERROR,
)
def check_picklability(project: Project, config: LintConfig) -> Iterator[Finding]:
    for info in project.modules:
        visitor = _TaskArgVisitor(info, config)
        visitor.visit(info.tree)
        yield from visitor.findings
