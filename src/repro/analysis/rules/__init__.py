"""Built-in rules; importing this package registers all of them.

Each module holds one rule family (see ``docs/static_analysis.md`` for
the catalogue):

- :mod:`.layering`     — the package dependency DAG;
- :mod:`.determinism`  — iteration-order hazards in reproducibility-
  critical packages;
- :mod:`.exceptions`   — broad-``except`` discipline and interrupt
  re-raising;
- :mod:`.metrics`      — the obs metric-name registry, both directions;
- :mod:`.configsync`   — ``DistinctConfig`` fields vs docs and CLI flags;
- :mod:`.picklability` — task functions handed to the process pool.
"""

from repro.analysis.rules import (  # noqa: F401  (import-for-side-effect)
    configsync,
    determinism,
    exceptions,
    layering,
    metrics,
    picklability,
)
