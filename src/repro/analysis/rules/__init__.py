"""Built-in rules; importing this package registers all of them.

Each module holds one rule family (see ``docs/static_analysis.md`` for
the catalogue):

- :mod:`.layering`     — the package dependency DAG;
- :mod:`.determinism`  — iteration-order hazards in reproducibility-
  critical packages;
- :mod:`.exceptions`   — broad-``except`` discipline and interrupt
  re-raising;
- :mod:`.metrics`      — the obs metric-name registry, both directions;
- :mod:`.configsync`   — ``DistinctConfig`` fields vs docs and CLI flags;
- :mod:`.picklability` — task functions handed to the process pool;
- :mod:`.lifecycle`    — flow-aware acquire/release checking over CFGs
  (shm segments, payloads, pools, tracers, fsync-before-rename);
- :mod:`.taint`        — determinism taint from sources to persisted
  sinks, plus unseeded-RNG construction;
- :mod:`.forkstate`    — shared-state mutation reachable from pool
  worker entrypoints.
"""

from repro.analysis.rules import (  # noqa: F401  (import-for-side-effect)
    configsync,
    determinism,
    exceptions,
    forkstate,
    layering,
    lifecycle,
    metrics,
    picklability,
    taint,
)
