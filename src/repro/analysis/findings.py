"""Finding and severity primitives of the static-analysis pass.

A :class:`Finding` is one diagnosed contract violation: which rule fired,
where (repo-relative path, 1-based line), how severe it is, and a fix
hint. Findings are plain data so the engine can sort, filter, serialize,
and count them without knowing anything about the rules that produced
them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """How bad a finding is; ordered so severities can be compared.

    ``ERROR`` findings fail ``repro lint`` (nonzero exit); ``WARNING``
    and ``INFO`` are advisory.
    """

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def coerce(cls, value: "Severity | str") -> "Severity":
        """Accept a member or its lowercase name (config files use strings)."""
        if isinstance(value, Severity):
            return value
        try:
            return cls[str(value).upper()]
        except KeyError:
            choices = ", ".join(s.name.lower() for s in cls)
            raise ValueError(
                f"unknown severity {value!r}; expected one of: {choices}"
            ) from None

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One diagnosed violation of a project contract."""

    rule: str
    severity: Severity
    path: str  # repo-relative, forward slashes
    line: int
    message: str
    hint: str = ""
    col: int = 0

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict:
        payload = {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.hint:
            payload["hint"] = self.hint
        return payload

    def render(self) -> str:
        location = f"{self.path}:{self.line}"
        text = f"{location}: {self.severity}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    n_modules: int = 0
    n_suppressed: int = 0

    def count(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity is severity)

    @property
    def n_errors(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def ok(self) -> bool:
        """True when no error-severity finding survived filtering."""
        return self.n_errors == 0

    def to_dict(self) -> dict:
        return {
            "format_version": 1,
            "modules_scanned": self.n_modules,
            "suppressed": self.n_suppressed,
            "counts": {
                str(sev): self.count(sev)
                for sev in (Severity.ERROR, Severity.WARNING, Severity.INFO)
            },
            "findings": [f.to_dict() for f in self.findings],
        }
