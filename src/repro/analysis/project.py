"""Loading a project into analyzable form: paths, module names, ASTs.

The engine hands rules a :class:`Project` — every parsed module of the
package under ``<repo_root>/src/<package>/`` plus access to non-Python
repo files (docs, ``pyproject.toml``) that some rules cross-check
against. Modules are discovered in sorted path order so every lint run
visits them identically.

Inline suppressions
-------------------
A finding can be silenced at its site with a justification comment on
the offending line (or on a comment-only line directly above it)::

    from repro.eval.calibration import calibrate_min_sim  # lint: allow[layering/import-dag] compat shim

``allow[*]`` silences every rule on that line. The engine counts
suppressed findings so they stay visible in the summary.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*allow\[([^\]]+)\]")


@dataclass
class ParseFailure:
    """A file that could not be parsed (reported as its own finding)."""

    rel_path: str
    line: int
    message: str


@dataclass
class ModuleInfo:
    """One parsed source module."""

    path: Path
    rel_path: str  # repo-relative, forward slashes
    module: str  # dotted name, e.g. "repro.eval.runner"
    source: str
    tree: ast.Module
    #: line number -> rule ids allowed there ("*" allows all)
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """The top-level subpackage this module belongs to.

        ``repro.eval.runner`` -> ``eval``; bare top-level modules
        (``repro.cli``, ``repro.config``) map to their own name; the
        package root (``repro``, ``repro.__main__``) maps to the
        package name itself.
        """
        parts = self.module.split(".")
        if len(parts) == 1 or parts[1] == "__main__":
            return parts[0]
        return parts[1]

    def is_suppressed(self, rule: str, line: int) -> bool:
        allowed = self.suppressions.get(line)
        if allowed is None:
            return False
        return "*" in allowed or rule in allowed


def _collect_suppressions(source: str) -> dict[int, frozenset[str]]:
    suppressions: dict[int, set[str]] = {}
    lines = source.splitlines()
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        rules = {
            part.strip() for part in match.group(1).split(",") if part.strip()
        }
        if not rules:
            continue
        suppressions.setdefault(lineno, set()).update(rules)
        # A comment-only line covers the next line (the flagged statement).
        if text.lstrip().startswith("#"):
            suppressions.setdefault(lineno + 1, set()).update(rules)
    return {line: frozenset(rules) for line, rules in suppressions.items()}


@dataclass
class Project:
    """Everything the rules see: parsed modules plus repo-file access."""

    repo_root: Path
    package: str
    modules: list[ModuleInfo] = field(default_factory=list)
    parse_failures: list[ParseFailure] = field(default_factory=list)

    @property
    def src_root(self) -> Path:
        return self.repo_root / "src" / self.package

    def by_module(self, dotted: str) -> ModuleInfo | None:
        for info in self.modules:
            if info.module == dotted:
                return info
        return None

    def read_text(self, rel_path: str) -> str | None:
        """Contents of a repo file (``docs/api.md``), or None if absent."""
        path = self.repo_root / rel_path
        try:
            return path.read_text()
        except OSError:
            return None


def _module_name(package: str, rel_to_pkg: Path) -> str:
    parts = list(rel_to_pkg.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package, *parts]) if parts else package


def load_project(repo_root: str | Path, package: str = "repro") -> Project:
    """Parse every module of ``<repo_root>/src/<package>/``.

    Files that fail to parse are recorded in ``parse_failures`` instead
    of aborting the run, so one syntax error does not hide every other
    finding.
    """
    repo_root = Path(repo_root).resolve()
    project = Project(repo_root=repo_root, package=package)
    src_root = project.src_root
    if not src_root.is_dir():
        raise FileNotFoundError(f"no package directory at {src_root}")
    for path in sorted(src_root.rglob("*.py")):
        rel_path = path.relative_to(repo_root).as_posix()
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            project.parse_failures.append(
                ParseFailure(
                    rel_path=rel_path,
                    line=exc.lineno or 1,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        project.modules.append(
            ModuleInfo(
                path=path,
                rel_path=rel_path,
                module=_module_name(package, path.relative_to(src_root)),
                source=source,
                tree=tree,
                suppressions=_collect_suppressions(source),
            )
        )
    return project
