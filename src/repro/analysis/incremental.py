"""``repro lint --changed [REF]``: findings scoped to touched files.

The analysis itself always runs over the *whole* project — the flow
rules need the full call graph, and cross-file rules (layering, the
metrics registry, config/docs sync) are meaningless on a file subset;
at a few seconds for a hundred modules, whole-project analysis is not
the bottleneck. What incremental mode narrows is the *report*: only
findings in files changed relative to a git ref (default ``HEAD``),
plus untracked files, are kept. That makes ``repro lint --changed``
the fast pre-push loop while CI stays whole-repo strict.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

from repro.analysis.findings import Finding, LintResult

__all__ = ["ChangedFilesError", "changed_files", "filter_to_changed"]


class ChangedFilesError(RuntimeError):
    """git could not report the changed set (not a repo, bad ref, ...)."""


def _git_lines(repo_root: Path, *args: str) -> list[str]:
    try:
        proc = subprocess.run(
            ["git", *args],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise ChangedFilesError(f"git {' '.join(args)}: {exc}") from exc
    if proc.returncode != 0:
        raise ChangedFilesError(
            f"git {' '.join(args)} failed: {proc.stderr.strip()}"
        )
    return [line.strip() for line in proc.stdout.splitlines() if line.strip()]


def changed_files(repo_root: str | Path, ref: str = "HEAD") -> frozenset[str]:
    """Repo-relative paths changed vs ``ref``, plus untracked files."""
    root = Path(repo_root)
    changed = set(_git_lines(root, "diff", "--name-only", ref, "--"))
    changed.update(
        _git_lines(root, "ls-files", "--others", "--exclude-standard")
    )
    return frozenset(changed)


def filter_to_changed(result: LintResult, changed: frozenset[str]) -> LintResult:
    """``result`` restricted to findings in the changed set.

    Findings filtered out are *not* counted as suppressed — they are out
    of scope for this invocation, not exempted.
    """
    kept: list[Finding] = [
        finding for finding in result.findings if finding.path in changed
    ]
    return LintResult(
        findings=kept,
        n_modules=result.n_modules,
        n_suppressed=result.n_suppressed,
    )
