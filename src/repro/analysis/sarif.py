"""SARIF 2.1.0 output for ``repro lint --format sarif``.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests: uploading the file from CI renders each finding as an
inline annotation on the offending line of the PR diff. The emitted
document is deliberately minimal — one run, the rule catalogue as the
tool's rule metadata, one result per finding — but schema-valid, so any
SARIF consumer can read it.
"""

from __future__ import annotations

import json

from repro.analysis.engine import rule_catalogue
from repro.analysis.findings import Finding, LintResult, Severity

__all__ = ["format_sarif", "sarif_document"]

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"

#: SARIF reporting levels per severity.
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _rule_metadata() -> list[dict]:
    rules = []
    for entry in rule_catalogue():
        rules.append(
            {
                "id": entry["id"],
                "shortDescription": {"text": entry["description"]},
                "defaultConfiguration": {
                    "level": _LEVELS[Severity.coerce(entry["default_severity"])]
                },
            }
        )
    return rules


def _result(finding: Finding) -> dict:
    message = finding.message
    if finding.hint:
        message = f"{message} ({finding.hint})"
    return {
        "ruleId": finding.rule,
        "level": _LEVELS[finding.severity],
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.col, 1),
                    },
                }
            }
        ],
    }


def sarif_document(
    result: LintResult, min_severity: Severity = Severity.INFO
) -> dict:
    """The SARIF run for a lint result, as plain data."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/"
                            "static_analysis.md"
                        ),
                        "rules": _rule_metadata(),
                    }
                },
                "results": [
                    _result(finding)
                    for finding in result.findings
                    if finding.severity >= min_severity
                ],
            }
        ],
    }


def format_sarif(
    result: LintResult, min_severity: Severity = Severity.INFO
) -> str:
    """The SARIF document as a JSON string (stable key order)."""
    return json.dumps(
        sarif_document(result, min_severity), indent=2, sort_keys=False
    )
