"""The project-wide call graph, resolved over the one-pass parse.

Built once per lint run from :class:`~repro.analysis.project.Project`,
without importing any analyzed code. Resolution is static and
best-effort — exactly the level the flow rules need:

- ``f(...)`` where ``f`` is defined at module level in the same module,
  or imported via ``from pkg.mod import f`` (aliases followed);
- ``mod.f(...)`` where ``mod`` is an imported module
  (``import pkg.mod [as mod]`` / ``from pkg import mod``);
- ``self.m(...)`` / ``cls.m(...)`` to a method of the enclosing class;
- ``Class.m(...)`` / ``Class(...)`` (constructor → ``Class.__init__``)
  where ``Class`` is resolvable like a function.

Unresolvable calls (callbacks, dynamic dispatch on arbitrary receivers)
are simply absent — callers that need them (the fork-boundary rule's
``ordered_process_map`` task functions) add the extra roots themselves
from the call sites.

Functions are keyed by dotted *qualnames*:
``repro.perf.parallel._run_task``, ``repro.perf.shm.SharedPayload.wrap``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.project import ModuleInfo, Project

__all__ = ["CallGraph", "FunctionInfo", "build_call_graph"]


@dataclass
class FunctionInfo:
    """One function or method discovered in the project."""

    qualname: str  # repro.pkg.mod.func / repro.pkg.mod.Class.meth
    module: str  # repro.pkg.mod
    rel_path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None  # enclosing class, if a method


@dataclass
class CallGraph:
    """Functions, resolved call edges, and reachability queries."""

    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: caller qualname -> [(callee qualname, call line), ...]
    calls: dict[str, list[tuple[str, int]]] = field(default_factory=dict)
    #: module -> {local name -> dotted target} (imports and top-level
    #: defs), for resolving names referenced outside call position
    #: (e.g. task functions passed as arguments).
    scopes: dict[str, dict[str, str]] = field(default_factory=dict)

    def resolve(self, module: str, name: str) -> str | None:
        """The function qualname ``name`` refers to inside ``module``."""
        target = self.scopes.get(module, {}).get(name)
        if target is None:
            return None
        return _normalize(target, self.functions)

    def callees(self, qualname: str) -> list[str]:
        seen: dict[str, None] = {}
        for callee, _line in self.calls.get(qualname, ()):
            seen.setdefault(callee, None)
        return list(seen)

    def reachable_from(self, roots: list[str]) -> dict[str, list[str]]:
        """Qualnames reachable from ``roots`` -> the call chain that got
        there (root first). Roots map to a one-element chain."""
        chains: dict[str, list[str]] = {}
        queue: list[str] = []
        for root in roots:
            if root in self.functions and root not in chains:
                chains[root] = [root]
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for callee in self.callees(current):
                if callee in self.functions and callee not in chains:
                    chains[callee] = chains[current] + [callee]
                    queue.append(callee)
        return chains

    def by_suffix(self, suffix: str) -> list[str]:
        """Qualnames whose dotted name ends with ``suffix``."""
        dotted = f".{suffix}"
        return [
            q for q in self.functions if q == suffix or q.endswith(dotted)
        ]


@dataclass
class _ModuleScope:
    """Name-resolution context of one module."""

    module: str
    #: local name -> fully qualified target ("repro.perf.shm.SharedPayload"
    #: for from-imports of objects, "repro.perf.shm" for module imports)
    imports: dict[str, str] = field(default_factory=dict)
    #: names defined at module top level (functions, classes)
    toplevel: dict[str, str] = field(default_factory=dict)  # name -> qualname


def _collect_scope(info: ModuleInfo) -> _ModuleScope:
    scope = _ModuleScope(module=info.module)
    package_parts = info.module.split(".")
    for stmt in info.tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                scope.imports[local] = target
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.module is None or stmt.level:
                # Relative imports: resolve against this module's package.
                base_parts = package_parts[: len(package_parts) - (stmt.level or 0)]
                base = ".".join(base_parts + ([stmt.module] if stmt.module else []))
            else:
                base = stmt.module
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                scope.imports[local] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            scope.toplevel[stmt.name] = f"{info.module}.{stmt.name}"
    return scope


def _register_functions(
    info: ModuleInfo, graph: CallGraph
) -> list[tuple[FunctionInfo, ast.AST]]:
    """Add every function/method of ``info`` to the graph; return them
    with their enclosing AST for the call-collection pass."""
    found: list[tuple[FunctionInfo, ast.AST]] = []

    def visit(node: ast.AST, prefix: str, class_name: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                fn = FunctionInfo(
                    qualname=qualname,
                    module=info.module,
                    rel_path=info.rel_path,
                    node=child,
                    class_name=class_name,
                )
                graph.functions[qualname] = fn
                found.append((fn, child))
                visit(child, f"{qualname}.", class_name)
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.", child.name)
            else:
                visit(child, prefix, class_name)

    visit(info.tree, f"{info.module}.", None)
    return found


def _resolve_call(
    call: ast.Call,
    scope: _ModuleScope,
    fn: FunctionInfo,
    known: dict[str, FunctionInfo],
) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        target = scope.toplevel.get(func.id) or scope.imports.get(func.id)
        if target is None:
            return None
        return _normalize(target, known)
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        receiver, attr = func.value.id, func.attr
        if receiver in ("self", "cls") and fn.class_name is not None:
            # Method on the enclosing class: qualname prefix up to the class.
            prefix = fn.qualname.rsplit(".", 2)[0]
            return _normalize(f"{prefix}.{fn.class_name}.{attr}", known)
        target = scope.toplevel.get(receiver) or scope.imports.get(receiver)
        if target is None:
            return None
        return _normalize(f"{target}.{attr}", known)
    return None


def _normalize(target: str, known: dict[str, FunctionInfo]) -> str | None:
    """Map a resolved dotted target onto a known function qualname.

    A class target resolves to its ``__init__`` when one exists so
    constructor calls participate in reachability.
    """
    if target in known:
        return target
    init = f"{target}.__init__"
    if init in known:
        return init
    return None


def build_call_graph(project: Project) -> CallGraph:
    """Resolve every static call edge in the project."""
    graph = CallGraph()
    scopes: dict[str, _ModuleScope] = {}
    pending: list[tuple[FunctionInfo, ast.AST, _ModuleScope]] = []
    for info in project.modules:
        scope = _collect_scope(info)
        scopes[info.module] = scope
        graph.scopes[info.module] = {**scope.imports, **scope.toplevel}
        for fn, node in _register_functions(info, graph):
            pending.append((fn, node, scope))

    for fn, node, scope in pending:
        edges: list[tuple[str, int]] = []
        for call in _own_calls(node):
            callee = _resolve_call(call, scope, fn, graph.functions)
            if callee is not None:
                edges.append((callee, call.lineno))
        if edges:
            graph.calls[fn.qualname] = edges
    return graph


def _own_calls(func: ast.AST) -> list[ast.Call]:
    """Call expressions belonging to ``func`` itself — nested function
    bodies are excluded (they have their own graph entries), but calls
    *to* build nested closures stay attributable to the parent because
    the nested def is walked separately."""
    calls: list[ast.Call] = []

    def visit(node: ast.AST, top: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and not top:
                continue
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                # Direct child def: skip its body but keep walking siblings.
                continue
            if isinstance(child, ast.Call):
                calls.append(child)
            visit(child, False)

    visit(func, True)
    return calls
