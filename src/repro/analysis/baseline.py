"""Finding baselines: land strict rules without a flag-day.

A baseline (``lint-baseline.json``, committed) records fingerprints of
the findings that existed when a rule landed; ``repro lint --baseline``
suppresses exactly those and fails only on *new* findings. Fingerprints
hash ``rule | path | message`` — deliberately not the line number, so
unrelated edits that shift code don't resurrect baselined findings —
and carry a per-fingerprint count, so introducing a *second* identical
violation in the same file still fails.

The workflow: a new rule lands with its existing findings baselined,
each one then gets fixed (or inline-allowed with a reason) in follow-up
changes, and ``--write-baseline`` regenerates the shrinking file; an
empty baseline is the steady state.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.findings import Finding, LintResult

__all__ = [
    "BaselineError",
    "apply_baseline",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]

FORMAT_VERSION = 1


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


def fingerprint(finding: Finding) -> str:
    """Stable id of a finding, robust to line drift."""
    key = f"{finding.rule}|{finding.path}|{finding.message}"
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


def write_baseline(result: LintResult, path: str | Path) -> dict:
    """Record ``result``'s findings (all severities) as the baseline."""
    counts: dict[str, dict] = {}
    for finding in result.findings:
        fp = fingerprint(finding)
        entry = counts.setdefault(
            fp,
            {"rule": finding.rule, "path": finding.path, "count": 0},
        )
        entry["count"] += 1
    payload = {
        "format_version": FORMAT_VERSION,
        "fingerprints": {fp: counts[fp] for fp in sorted(counts)},
    }
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def load_baseline(path: str | Path) -> dict[str, int]:
    """fingerprint -> allowed occurrence count."""
    source = Path(path)
    try:
        payload = json.loads(source.read_text())
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {source}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(
            f"baseline {source} is not valid JSON: {exc}"
        ) from exc
    if payload.get("format_version") != FORMAT_VERSION:
        raise BaselineError(
            f"baseline {source} has format_version "
            f"{payload.get('format_version')!r}; this build reads "
            f"{FORMAT_VERSION}"
        )
    fingerprints = payload.get("fingerprints", {})
    return {
        str(fp): int(entry.get("count", 1))
        for fp, entry in fingerprints.items()
    }


def apply_baseline(
    result: LintResult, budgets: dict[str, int]
) -> LintResult:
    """``result`` minus baselined findings (counted against budgets).

    Returns a new :class:`LintResult`; suppressed findings are added to
    ``n_suppressed`` so the totals still account for them.
    """
    remaining = dict(budgets)
    kept: list[Finding] = []
    suppressed = 0
    for finding in result.findings:
        fp = fingerprint(finding)
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            suppressed += 1
        else:
            kept.append(finding)
    return LintResult(
        findings=kept,
        n_modules=result.n_modules,
        n_suppressed=result.n_suppressed + suppressed,
    )
