"""Lint configuration: the project's contract tables, knobs, allowlists.

:func:`default_config` encodes this repository's architecture — the
layering DAG, the determinism-sensitive packages, the sanctioned broad
``except`` sites, the metric-name registry location, and the
``DistinctConfig``-to-CLI surface map. :func:`load_config` merges
user overrides from ``pyproject.toml``::

    [tool.repro-lint]
    severity = { "determinism/unkeyed-sort" = "info" }

    [[tool.repro-lint.allow]]
    rule = "layering/import-dag"
    path = "src/repro/ml/calibration.py"
    reason = "compat shim kept for the public repro.ml.calibration import path"

Allowlist entries require a non-empty ``reason`` — an unjustified
exemption is itself a config error.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.analysis.findings import Severity

#: Layering ranks: an import must go strictly downward (importer rank >
#: imported rank). The DAG, bottom-up:
#: ``reldb -> strings/paths -> config -> data -> similarity -> cluster/ml
#: -> core -> graph -> eval -> ingest -> analysis -> cli -> repro``
#: (package root).
DEFAULT_LAYER_RANKS: dict[str, int] = {
    "reldb": 10,
    "strings": 20,
    "paths": 20,
    "config": 25,
    "data": 28,
    "similarity": 30,
    "cluster": 40,
    "ml": 40,
    "core": 50,
    "graph": 55,
    "eval": 60,
    "ingest": 62,
    "analysis": 65,
    "cli": 70,
    "repro": 80,  # package root: __init__ / __main__ re-exports
}

#: Cross-cutting packages may be imported from any layer, but may
#: themselves import only the packages listed here.
DEFAULT_CROSS_CUTTING: dict[str, tuple[str, ...]] = {
    "errors": (),
    "obs": ("errors",),
    "resilience": ("errors", "obs"),
    "perf": ("errors", "obs", "resilience"),
}

#: Packages whose iteration order feeds the byte-identical-parallelism
#: guarantee (see docs/performance.md) or checkpoint/replay stability.
DEFAULT_DETERMINISM_SCOPE: tuple[str, ...] = (
    "similarity",
    "paths",
    "cluster",
    "core",
    "perf",
    "resilience",
    "ingest",
)

#: Modules allowed to catch broad ``Exception``: the error-policy engine
#: and the process-pool boundary (worker errors travel back as data).
DEFAULT_EXCEPTION_SANCTIONED: tuple[str, ...] = (
    "repro.resilience.policy",
    "repro.perf.parallel",
)

#: DistinctConfig fields reachable from a CLI flag (field -> flag).
DEFAULT_CONFIG_FLAG_MAP: dict[str, str] = {
    "n_positive": "--positive",
    "n_negative": "--negative",
    "svm_C": "--svm-c",
    "min_sim": "--min-sim",
    "similarity_backend": "--backend",
    "propagation_backend": "--propagation",
    "pair_pruning": "--pair-pruning",
    "minhash_bands": "--minhash-bands",
    "minhash_rows": "--minhash-rows",
    "shared_memory": "--shared-memory",
    "shard_strategy": "--shard-strategy",
    "degradation": "--degradation",
}

#: Callables that *borrow* a tracked resource without taking ownership:
#: passing a handle to them is not an escape, the caller must still
#: release on every path (the exact contract of ``ordered_process_map``,
#: whose generator ``finally`` is skipped when a deadline expires before
#: the first ``next()`` — see repro.eval.runner).
DEFAULT_LIFECYCLE_BORROWERS: tuple[str, ...] = ("ordered_process_map",)

#: Determinism-taint sources: calls whose dotted tail matches one of
#: these produce nondeterministic values (plus iteration over set-typed
#: expressions, handled structurally).
DEFAULT_TAINT_SOURCES: tuple[str, ...] = (
    "time.time",
    "os.listdir",
    "os.urandom",
    "os.scandir",
    "uuid.uuid4",
    "random.random",
    "random.randint",
    "random.shuffle",
    "random.sample",
    "random.choice",
)

#: Sanitizer calls: wrapping a tainted value in one of these kills the
#: taint (``sorted(the_set)`` restores a stable order; aggregations are
#: order-independent).
DEFAULT_TAINT_SANITIZERS: tuple[str, ...] = (
    "sorted",
    "len",
    "sum",
    "min",
    "max",
    "frozenset",
)

#: Sinks that must never receive nondeterministic values: persisted
#: payloads, integrity checksums, and wire-format dicts. Matched by
#: dotted call tail.
DEFAULT_TAINT_SINKS: tuple[str, ...] = (
    "write_json_atomic",
    "attach_checksum",
    "span_to_wire",
)

#: Worker entrypoints for the fork-boundary family: functions that
#: execute inside pool worker processes. Anything statically reachable
#: from these must not mutate module-level state (workers never ship it
#: back; the parent would silently diverge from the serial run).
DEFAULT_FORK_ENTRYPOINTS: tuple[str, ...] = (
    "repro.perf.parallel._run_task",
    "repro.perf.parallel._run_chunk",
    "repro.perf.parallel._init_worker",
)

#: Module-level names bound to these factories are registered
#: instruments: workers may mutate them because the pool explicitly
#: snapshots and merges them back (repro.obs counter merging).
DEFAULT_FORK_INSTRUMENT_FACTORIES: tuple[str, ...] = (
    "counter",
    "gauge",
    "histogram",
    "get_logger",
)

#: Packages whose internals are exempt from the fork-boundary rule: the
#: obs registry is the sanctioned cross-process channel.
DEFAULT_FORK_EXEMPT_PACKAGES: tuple[str, ...] = ("obs",)


@dataclass(frozen=True)
class ResourceSpec:
    """One tracked resource kind for lifecycle/leak checking."""

    kind: str
    #: dotted call tails whose result is an owned live resource
    acquire: tuple[str, ...]
    #: method names on the handle that release it
    release_methods: tuple[str, ...] = ()
    #: module-level calls that release every live handle of this kind
    #: (singleton resources like the installed tracer)
    release_calls: tuple[str, ...] = ()
    #: keyword args (name -> literal value) the acquire call must carry
    require_kwargs: tuple[tuple[str, object], ...] = ()


#: Resource contracts for the flow-aware lifecycle family: how each
#: tracked resource is acquired and what counts as releasing it. Acquire
#: patterns match the dotted tail of the call (``SharedPayload.wrap``
#: matches ``shm.SharedPayload.wrap(...)``); ``require_kwargs`` gates the
#: match on literal keyword values (``SharedMemory(create=True)`` is an
#: acquire, attaching with ``create=False`` is not).
DEFAULT_LIFECYCLE_RESOURCES: tuple[ResourceSpec, ...] = (
    ResourceSpec(
        kind="shared-payload",
        acquire=("SharedPayload.wrap",),
        release_methods=("release",),
    ),
    ResourceSpec(
        kind="shm-segment",
        acquire=("SharedMemory", "shared_memory.SharedMemory"),
        release_methods=("unlink",),
        require_kwargs=(("create", True),),
    ),
    ResourceSpec(
        kind="process-pool",
        acquire=("ProcessPoolExecutor",),
        release_methods=("shutdown",),
    ),
    ResourceSpec(
        kind="tracer",
        acquire=("enable_tracing",),
        release_calls=("disable_tracing",),
    ),
)


#: DistinctConfig fields deliberately not exposed as CLI flags; each must
#: still be documented in docs/api.md.
DEFAULT_CONFIG_PROGRAMMATIC: tuple[str, ...] = (
    "reference_relation",
    "object_relation",
    "object_key",
    "name_attribute",
    "path_config",
    "max_token_count",
    "min_refs",
    "max_refs",
    "svm_C_grid",
    "svm_cv_folds",
    "svm_loss",
    "svm_class_weight",
    "svm_tol",
    "svm_max_epochs",
    "svm_retries",
    "clamp_negative_weights",
    "normalize_weights",
    "similarity_chunk_bytes",
    "similarity_pair_chunk",
    "walk_dense_limit",
    "propagation_memo_size",
    "seed",
)


@dataclass(frozen=True)
class AllowEntry:
    """One path-scoped exemption, with its justification."""

    rule: str
    path: str  # fnmatch glob against the repo-relative path
    reason: str


@dataclass(frozen=True)
class LintConfig:
    """Everything the rules parameterize on."""

    package: str = "repro"
    severity_overrides: dict[str, Severity] = field(default_factory=dict)
    allowlist: tuple[AllowEntry, ...] = ()

    # layering/import-dag
    layer_ranks: dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_LAYER_RANKS)
    )
    cross_cutting: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_CROSS_CUTTING)
    )

    # determinism/*
    determinism_scope: tuple[str, ...] = DEFAULT_DETERMINISM_SCOPE

    # exceptions/*
    exception_sanctioned: tuple[str, ...] = DEFAULT_EXCEPTION_SANCTIONED

    # metrics/*
    metrics_registry_module: str = "repro.obs.names"
    metrics_registry_name: str = "REGISTERED_METRICS"
    metrics_defining_modules: tuple[str, ...] = (
        "repro.obs.metrics",
        "repro.obs.names",
    )

    # config/*
    config_module: str = "repro.config"
    config_class: str = "DistinctConfig"
    config_docs_file: str = "docs/api.md"
    cli_module: str = "repro.cli"
    config_flag_map: dict[str, str] = field(
        default_factory=lambda: dict(DEFAULT_CONFIG_FLAG_MAP)
    )
    config_programmatic_only: tuple[str, ...] = DEFAULT_CONFIG_PROGRAMMATIC

    # picklability/*
    parallel_map_names: tuple[str, ...] = ("ordered_process_map",)

    # lifecycle/*
    lifecycle_resources: tuple[ResourceSpec, ...] = DEFAULT_LIFECYCLE_RESOURCES
    lifecycle_borrowers: tuple[str, ...] = DEFAULT_LIFECYCLE_BORROWERS

    # taint/*
    taint_sources: tuple[str, ...] = DEFAULT_TAINT_SOURCES
    taint_sanitizers: tuple[str, ...] = DEFAULT_TAINT_SANITIZERS
    taint_sinks: tuple[str, ...] = DEFAULT_TAINT_SINKS

    # forkstate/*
    fork_entrypoints: tuple[str, ...] = DEFAULT_FORK_ENTRYPOINTS
    fork_instrument_factories: tuple[str, ...] = (
        DEFAULT_FORK_INSTRUMENT_FACTORIES
    )
    fork_exempt_packages: tuple[str, ...] = DEFAULT_FORK_EXEMPT_PACKAGES

    def severity_for(self, rule: str, default: Severity) -> Severity:
        return self.severity_overrides.get(rule, default)


def default_config() -> LintConfig:
    """The contract tables of this repository."""
    return LintConfig()


def _parse_overrides(table: dict) -> dict:
    """Validated constructor kwargs from a ``[tool.repro-lint]`` table."""
    changes: dict = {}
    severity = table.get("severity", {})
    if severity:
        if not isinstance(severity, dict):
            raise ValueError("[tool.repro-lint] severity must be a table")
        changes["severity_overrides"] = {
            str(rule): Severity.coerce(value) for rule, value in severity.items()
        }
    allow = table.get("allow", [])
    if allow:
        entries = []
        for raw in allow:
            rule = str(raw.get("rule", "")).strip()
            path = str(raw.get("path", "")).strip()
            reason = str(raw.get("reason", "")).strip()
            if not rule or not path:
                raise ValueError(
                    "[[tool.repro-lint.allow]] entries need 'rule' and 'path'"
                )
            if not reason:
                raise ValueError(
                    f"allowlist entry for {rule} on {path} has no 'reason'; "
                    "every exemption must carry its justification"
                )
            entries.append(AllowEntry(rule=rule, path=path, reason=reason))
        changes["allowlist"] = tuple(entries)
    return changes


def load_config(repo_root: str | Path) -> LintConfig:
    """Default config merged with ``pyproject.toml`` overrides, if any."""
    config = default_config()
    pyproject = Path(repo_root) / "pyproject.toml"
    if not pyproject.is_file():
        return config
    try:
        import tomllib
    except ImportError:  # py3.10: stdlib tomllib is 3.11+; skip overrides
        return config
    with pyproject.open("rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("repro-lint", {})
    if not table:
        return config
    return replace(config, **_parse_overrides(table))
