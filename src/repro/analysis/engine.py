"""The rule registry and the lint engine that drives it.

A :class:`Rule` inspects the whole :class:`~repro.analysis.project.Project`
(cross-file rules like layering and the metrics registry need the global
view; single-file rules just loop over ``project.modules``) and yields
:class:`~repro.analysis.findings.Finding`s. Rules register themselves via
:func:`register`; importing :mod:`repro.analysis.rules` loads the built-in
set.

:func:`run_lint` applies per-rule severity overrides, inline
``# lint: allow[...]`` suppressions, and the config allowlist, then
returns findings in deterministic (path, line, rule) order.
"""

from __future__ import annotations

import fnmatch
from typing import Callable, Iterable, Iterator

from repro.analysis.config import LintConfig, default_config
from repro.analysis.findings import Finding, LintResult, Severity
from repro.analysis.project import Project, load_project

__all__ = [
    "Rule",
    "all_rules",
    "register",
    "rule_catalogue",
    "run_lint",
]

CheckFn = Callable[[Project, LintConfig], Iterator[Finding]]


class Rule:
    """One named check with a default severity and a one-line description.

    Subclasses (or :func:`register`-decorated generator functions) yield
    findings whose ``severity`` defaults to the rule's; the engine applies
    any configured override afterwards.
    """

    id: str = ""
    description: str = ""
    default_severity: Severity = Severity.ERROR

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, path: str, line: int, message: str, hint: str = "", col: int = 0
    ) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.default_severity,
            path=path,
            line=line,
            col=col,
            message=message,
            hint=hint,
        )


class _FunctionRule(Rule):
    def __init__(
        self, id: str, description: str, severity: Severity, fn: CheckFn
    ) -> None:
        self.id = id
        self.description = description
        self.default_severity = severity
        self._fn = fn

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        return self._fn(project, config)


_REGISTRY: dict[str, Rule] = {}


def register(
    id: str, description: str, severity: Severity = Severity.ERROR
) -> Callable[[CheckFn], CheckFn]:
    """Decorator registering a generator function as a rule.

    ::

        @register("family/check", "what it enforces", Severity.ERROR)
        def _check(project, config):
            yield ...
    """

    def decorate(fn: CheckFn) -> CheckFn:
        if id in _REGISTRY:
            raise ValueError(f"duplicate rule id: {id}")
        _REGISTRY[id] = _FunctionRule(id, description, severity, fn)
        return fn

    return decorate


def _load_builtin_rules() -> None:
    # Importing the package registers every built-in rule exactly once.
    import repro.analysis.rules  # noqa: F401  (import-for-side-effect)


def all_rules() -> list[Rule]:
    """Every registered rule, in registration order."""
    _load_builtin_rules()
    return list(_REGISTRY.values())


def rule_catalogue() -> list[dict]:
    """Plain-data rule listing for ``repro lint --list-rules``."""
    return [
        {
            "id": rule.id,
            "default_severity": str(rule.default_severity),
            "description": rule.description,
        }
        for rule in all_rules()
    ]


def _allowlisted(
    finding: Finding, config: LintConfig
) -> bool:
    return any(
        entry.rule == finding.rule and fnmatch.fnmatch(finding.path, entry.path)
        for entry in config.allowlist
    )


def _suppressed_inline(finding: Finding, project: Project) -> bool:
    for module in project.modules:
        if module.rel_path == finding.path:
            return module.is_suppressed(finding.rule, finding.line)
    return False


def run_lint(
    repo_root,
    config: LintConfig | None = None,
    rules: Iterable[str] | None = None,
    project: Project | None = None,
) -> LintResult:
    """Run ``rules`` (default: all) over the project at ``repo_root``."""
    config = config if config is not None else default_config()
    if project is None:
        project = load_project(repo_root, package=config.package)
    selected = all_rules()
    if rules is not None:
        wanted = set(rules)
        known = {rule.id for rule in selected}
        unknown = wanted - known
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}"
            )
        selected = [rule for rule in selected if rule.id in wanted]

    result = LintResult(n_modules=len(project.modules))
    for failure in project.parse_failures:
        result.findings.append(
            Finding(
                rule="parse/syntax-error",
                severity=Severity.ERROR,
                path=failure.rel_path,
                line=failure.line,
                message=failure.message,
            )
        )
    for rule in selected:
        for finding in rule.check(project, config):
            # Overrides key off the finding's own rule id: a rule function
            # may emit findings under a sibling id (metrics/kind-mismatch).
            severity = config.severity_for(finding.rule, finding.severity)
            if severity is not finding.severity:
                finding = Finding(
                    rule=finding.rule,
                    severity=severity,
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    message=finding.message,
                    hint=finding.hint,
                )
            if _suppressed_inline(finding, project) or _allowlisted(
                finding, config
            ):
                result.n_suppressed += 1
                continue
            result.findings.append(finding)
    result.findings.sort(key=Finding.sort_key)
    return result
