"""Incremental agglomerative re-clustering for delta ingest.

After a delta, most pair similarities of a name are unchanged — only the
pairs touching *dirty* references (walks crossed changed rows, or new
references) moved. The previous run's dendrogram is therefore still the
correct merge history up to the first merge the dirty pairs could have
influenced: :func:`recluster_incremental` replays that prefix against the
new measure (cheap dict folds, no heap) and resumes the real merge loop
from there.

Byte-identity with a cold re-clustering rests on three facts:

- *The merge sequence is memoryless.* At every step the engine merges the
  pair maximizing the heap-entry order ``(-sim, id_a, id_b)`` over live
  pairs with ``sim >= min_sim`` (stale heap entries never win, and every
  live pair above threshold has exactly one entry). The next merge is a
  function of (live clusters, measure) alone — not of how the heap got
  there — so replaying a valid prefix and resuming reproduces the cold
  run's remaining merges exactly.
- *Prefix validity is checkable.* A recorded merge ``(a, b, s)`` is still
  the argmax iff no dirty-involved pair beats its entry tuple: clean-pair
  similarities are unchanged (they lost to ``(a, b)`` before, they still
  lose), so only pairs involving a dirty cluster are re-scored — a
  ``O(|dirty| * live)`` check per replayed merge.
- *Cluster ids translate monotonically.* Old leaves keep their indices
  (new references sort after existing ones), and old merge ``k``'s id
  ``n_old + k`` becomes ``n_new + k`` — order-preserving on both
  segments and across them (merged ids exceed all leaf ids in both
  numberings), so equal-similarity ties break identically.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.cluster.agglomerative import (
    AgglomerativeClusterer,
    ClusteringResult,
    ClusterMeasure,
)
from repro.cluster.dendrogram import Dendrogram
from repro.obs import counter

__all__ = ["recluster_incremental"]

_MERGES_REPLAYED = counter("cluster.merges_replayed")


def _entry(sim: float, a: int, b: int, n_leaves: int) -> tuple[float, int, int]:
    """The heap-entry prefix a cold run would hold for live pair ``{a, b}``.

    Leaf-leaf pairs enter the initial fill as ``(min, max)``; pairs
    involving a merged cluster are pushed at its creation as
    ``(merged, other)`` with the merged id the largest alive — ``(max,
    min)``. (Version stamps are always 0 for live clusters and never
    discriminate.)
    """
    lo, hi = (a, b) if a < b else (b, a)
    if hi >= n_leaves:
        return (-sim, hi, lo)
    return (-sim, lo, hi)


def recluster_incremental(
    measure: ClusterMeasure,
    previous: ClusteringResult,
    dirty_items: Iterable[int],
    clusterer: AgglomerativeClusterer,
    n_leaves_old: int,
) -> tuple[ClusteringResult, int]:
    """Re-cluster after a delta, replaying the clean dendrogram prefix.

    Parameters
    ----------
    measure:
        A *fresh* measure over the post-delta items (pair matrices already
        patched). Item indices ``0..n_leaves_old-1`` must be the previous
        run's items in the same order; new items follow.
    previous:
        The pre-delta clustering of the same name.
    dirty_items:
        Post-delta item indices whose pair values may differ from the
        previous run (dirty references); indices ``>= n_leaves_old`` are
        implicitly dirty and need not be listed.
    clusterer:
        The engine to resume with; its ``min_sim`` must equal
        ``previous.min_sim`` for any prefix to be replayable.

    Returns ``(result, n_replayed)`` where ``result`` is byte-identical
    to ``clusterer.cluster(measure)`` and ``n_replayed`` counts the
    merges taken from the previous dendrogram without heap work.
    """
    n_new = measure.n_items()
    offset = n_new - n_leaves_old
    dirty = set(dirty_items) | set(range(n_leaves_old, n_new))

    def translate(cluster: int) -> int:
        return cluster if cluster < n_leaves_old else cluster + offset

    members: dict[int, set[int]] = {i: {i} for i in range(n_new)}
    dendrogram = Dendrogram(n_leaves=n_new)
    min_sim = clusterer.min_sim
    replayed = 0

    if min_sim == previous.min_sim:
        for merge in previous.dendrogram.merges:
            a, b = translate(merge.left), translate(merge.right)
            if a in dirty or b in dirty:
                break
            sim = measure.similarity(a, b)
            if sim <= 0.0 or sim < min_sim:
                break  # defensive: a clean merge's sim cannot have moved
            popped = (-sim, a, b)
            if not _prefix_merge_valid(measure, members, dirty, popped, min_sim, n_new):
                break
            merged = dendrogram.record(a, b, sim)
            measure.merge(a, b, merged)
            members[merged] = members.pop(a) | members.pop(b)
            replayed += 1

    _MERGES_REPLAYED.inc(replayed)
    result = clusterer.resume(measure, dendrogram, members)
    return result, replayed


def _prefix_merge_valid(
    measure: ClusterMeasure,
    members: dict[int, set[int]],
    dirty: set[int],
    popped: tuple[float, int, int],
    min_sim: float,
    n_leaves: int,
) -> bool:
    """Would the cold run pop ``popped`` here, given the dirty pairs?

    Clean pairs need no check (see module docstring); a dirty-involved
    live pair invalidates the prefix iff its entry would sort *before*
    the recorded one — then the cold heap pops it first and the merge
    sequences diverge.
    """
    dirty_live = [d for d in dirty if d in members]
    for d in dirty_live:
        for c in members:
            if c == d or (c in dirty and c <= d):
                continue
            sim = measure.similarity(d, c)
            if sim <= 0.0 or sim < min_sim:
                continue
            if _entry(sim, d, c, n_leaves) < popped:
                return False
    return True
