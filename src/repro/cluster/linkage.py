"""Classic linkage measures over one pairwise similarity matrix.

Used for the §4.1 discussion (Single-Link merges through one misleading
linkage; Complete-Link refuses weakly linked partitions; Average-Link is the
reasonable middle ground DISTINCT builds on) and for the linkage ablation
bench. All three maintain their aggregates incrementally:

- Single-Link:   S(C3, Ci) = max(S(C1, Ci), S(C2, Ci))
- Complete-Link: S(C3, Ci) = min(S(C1, Ci), S(C2, Ci))
- Average-Link:  sum(C3, Ci) = sum(C1, Ci) + sum(C2, Ci), divided by sizes
"""

from __future__ import annotations

import numpy as np


class _PairMatrixMeasure:
    """Shared plumbing: symmetric pair matrix, per-cluster stats dicts."""

    def __init__(self, pair_sims: np.ndarray) -> None:
        pair_sims = np.asarray(pair_sims, dtype=float)
        if pair_sims.ndim != 2 or pair_sims.shape[0] != pair_sims.shape[1]:
            raise ValueError("pair similarity matrix must be square")
        if not np.allclose(pair_sims, pair_sims.T, atol=1e-9):
            raise ValueError("pair similarity matrix must be symmetric")
        self._n = pair_sims.shape[0]
        # stats[a][b] == stats[b][a]: the linkage aggregate between clusters
        self._stats: dict[int, dict[int, float]] = {
            i: {
                j: float(pair_sims[i, j])
                for j in range(self._n)
                if j != i and pair_sims[i, j] > 0.0
            }
            for i in range(self._n)
        }
        self._size: dict[int, int] = {i: 1 for i in range(self._n)}

    def n_items(self) -> int:
        return self._n

    def size(self, cluster: int) -> int:
        return self._size[cluster]

    def _combine(self, x: float, y: float) -> float:
        raise NotImplementedError

    def _stat(self, a: int, b: int) -> float:
        return self._stats[a].get(b, 0.0)

    def merge(self, a: int, b: int, merged_id: int) -> None:
        stats_a = self._stats.pop(a)
        stats_b = self._stats.pop(b)
        merged: dict[int, float] = {}
        # sorted: merge bookkeeping must not depend on set hash order
        # (feeds the byte-identical parallel/serial guarantee).
        # lint: allow[determinism/unkeyed-sort] cluster ids are plain int
        for other in sorted((set(stats_a) | set(stats_b)) - {a, b}):
            if other in stats_a and other in stats_b:
                value = self._combine(stats_a[other], stats_b[other])
            else:
                value = self._one_sided(
                    stats_a[other] if other in stats_a else stats_b[other]
                )
            if value > 0.0:
                merged[other] = value
            # Keep the symmetric invariant: drop the other side's stale
            # entries for a/b (and add merged_id if the linkage survives).
            other_stats = self._stats[other]
            other_stats.pop(a, None)
            other_stats.pop(b, None)
            if value > 0.0:
                other_stats[merged_id] = value
        self._stats[merged_id] = merged
        self._size[merged_id] = self._size.pop(a) + self._size.pop(b)

    def _one_sided(self, value: float) -> float:
        """Aggregate when only one child had a linkage to the other cluster."""
        return value


class SingleLinkMeasure(_PairMatrixMeasure):
    """Similarity = max over cross pairs."""

    def _combine(self, x: float, y: float) -> float:
        return max(x, y)

    def similarity(self, a: int, b: int) -> float:
        return self._stat(a, b)


class CompleteLinkMeasure(_PairMatrixMeasure):
    """Similarity = min over cross pairs (absent pairs count as 0)."""

    def _combine(self, x: float, y: float) -> float:
        return min(x, y)

    def _one_sided(self, value: float) -> float:
        return 0.0  # some cross pair had similarity 0

    def similarity(self, a: int, b: int) -> float:
        # A missing stat means at least one zero cross pair -> min is 0.
        return self._stat(a, b)


class AverageLinkMeasure(_PairMatrixMeasure):
    """Similarity = mean over all cross pairs."""

    def _combine(self, x: float, y: float) -> float:
        return x + y

    def similarity(self, a: int, b: int) -> float:
        total = self._stat(a, b)
        if total == 0.0:
            return 0.0
        return total / (self._size[a] * self._size[b])
