"""k-medoids (PAM) over a precomputed similarity matrix.

§4.1 argues agglomerative clustering fits the reference-distinction problem
because references live in no Euclidean space and the number of clusters is
unknown. k-medoids is the natural strawman: it also works from pairwise
(dis)similarities but *needs k*. The linkage ablation bench runs it with an
oracle k (the true entity count) — and the agglomerative composite still
wins, which is the strongest form of the paper's argument.

Implementation: classic PAM — greedy BUILD initialization, then SWAP passes
until no single medoid swap improves the total within-cluster dissimilarity.
Deterministic given the matrix (ties broken by index).
"""

from __future__ import annotations

import numpy as np


def kmedoids(
    similarity: np.ndarray, k: int, max_swaps: int = 200
) -> list[set[int]]:
    """Cluster items 0..n-1 into k groups by PAM on 1 - similarity.

    ``similarity`` must be square and symmetric with values in [0, 1]-ish
    scale; the algorithm minimizes total dissimilarity to the medoid.
    Returns clusters sorted by (-size, min index), like the other engines.
    """
    similarity = np.asarray(similarity, dtype=float)
    if similarity.ndim != 2 or similarity.shape[0] != similarity.shape[1]:
        raise ValueError("similarity matrix must be square")
    n = similarity.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}]")

    dissim = 1.0 - similarity
    np.fill_diagonal(dissim, 0.0)

    # BUILD: first medoid minimizes total dissimilarity; each next medoid
    # maximizes the cost reduction.
    medoids: list[int] = [int(np.argmin(dissim.sum(axis=1)))]
    while len(medoids) < k:
        current = dissim[:, medoids].min(axis=1)
        best_gain = -1.0
        best_item = -1
        for candidate in range(n):
            if candidate in medoids:
                continue
            gain = float(np.maximum(current - dissim[:, candidate], 0.0).sum())
            if gain > best_gain:
                best_gain = gain
                best_item = candidate
        medoids.append(best_item)

    def total_cost(meds: list[int]) -> float:
        return float(dissim[:, meds].min(axis=1).sum())

    # SWAP: hill-climb over single medoid replacements.
    cost = total_cost(medoids)
    for _ in range(max_swaps):
        improved = False
        for mi, medoid in enumerate(list(medoids)):
            for candidate in range(n):
                if candidate in medoids:
                    continue
                trial = list(medoids)
                trial[mi] = candidate
                trial_cost = total_cost(trial)
                if trial_cost + 1e-12 < cost:
                    medoids = trial
                    cost = trial_cost
                    improved = True
        if not improved:
            break

    assignment = np.array(medoids)[np.argmin(dissim[:, medoids], axis=1)]
    # Under ties (duplicate items, zero dissimilarity) argmin may route a
    # medoid to another medoid's cluster; pin each medoid to itself so the
    # result always has exactly k clusters.
    for medoid in medoids:
        assignment[medoid] = medoid
    clusters: dict[int, set[int]] = {}
    for item in range(n):
        clusters.setdefault(int(assignment[item]), set()).add(item)
    return sorted(clusters.values(), key=lambda c: (-len(c), min(c)))
