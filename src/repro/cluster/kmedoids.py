"""k-medoids (PAM) over a precomputed similarity matrix.

§4.1 argues agglomerative clustering fits the reference-distinction problem
because references live in no Euclidean space and the number of clusters is
unknown. k-medoids is the natural strawman: it also works from pairwise
(dis)similarities but *needs k*. The linkage ablation bench runs it with an
oracle k (the true entity count) — and the agglomerative composite still
wins, which is the strongest form of the paper's argument.

Implementation: classic PAM — greedy BUILD initialization, then SWAP passes
until no single medoid swap improves the total within-cluster dissimilarity.
Deterministic given the matrix (ties broken by index).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError
from repro.resilience.retry import retry


def kmedoids(
    similarity: np.ndarray,
    k: int,
    max_swaps: int = 200,
    strict: bool = True,
    retries: int = 0,
) -> list[set[int]]:
    """Cluster items 0..n-1 into k groups by PAM on 1 - similarity.

    ``similarity`` must be square and symmetric with values in [0, 1]-ish
    scale; the algorithm minimizes total dissimilarity to the medoid.
    Returns clusters sorted by (-size, min index), like the other engines.

    The SWAP phase must reach a local optimum within ``max_swaps`` passes;
    exhausting the budget while still improving raises
    :class:`~repro.errors.ConvergenceError` under ``strict`` (otherwise the
    best-so-far medoids are kept). ``retries`` re-runs SWAP with a doubled
    budget per attempt (via :func:`repro.resilience.retry`), so the error
    is a bounded, reported condition rather than a hard stop.
    """
    similarity = np.asarray(similarity, dtype=float)
    if similarity.ndim != 2 or similarity.shape[0] != similarity.shape[1]:
        raise ValueError("similarity matrix must be square")
    n = similarity.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}]")
    if retries < 0:
        raise ValueError("retries must be non-negative")

    dissim = 1.0 - similarity
    np.fill_diagonal(dissim, 0.0)

    # BUILD: first medoid minimizes total dissimilarity; each next medoid
    # maximizes the cost reduction.
    build: list[int] = [int(np.argmin(dissim.sum(axis=1)))]
    while len(build) < k:
        current = dissim[:, build].min(axis=1)
        best_gain = -1.0
        best_item = -1
        for candidate in range(n):
            if candidate in build:
                continue
            gain = float(np.maximum(current - dissim[:, candidate], 0.0).sum())
            if gain > best_gain:
                best_gain = gain
                best_item = candidate
        build.append(best_item)

    def total_cost(meds: list[int]) -> float:
        return float(dissim[:, meds].min(axis=1).sum())

    def swap(attempt: int) -> list[int]:
        """SWAP: hill-climb over single medoid replacements."""
        budget = max_swaps * 2**attempt
        medoids = list(build)
        cost = total_cost(medoids)
        improved = True
        for _ in range(budget):
            improved = False
            for mi, medoid in enumerate(list(medoids)):
                for candidate in range(n):
                    if candidate in medoids:
                        continue
                    trial = list(medoids)
                    trial[mi] = candidate
                    trial_cost = total_cost(trial)
                    if trial_cost + 1e-12 < cost:
                        medoids = trial
                        cost = trial_cost
                        improved = True
            if not improved:
                return medoids
        if improved and strict:
            raise ConvergenceError(
                f"k-medoids SWAP did not reach a local optimum in "
                f"{budget} passes (k={k}, n={n})"
            )
        return medoids

    # seed=0: this engine is documented deterministic, so the retry
    # schedule (jitter stream) must not depend on global random state.
    medoids = retry(swap, budget=retries + 1, retry_on=ConvergenceError, seed=0)

    assignment = np.array(medoids)[np.argmin(dissim[:, medoids], axis=1)]
    # Under ties (duplicate items, zero dissimilarity) argmin may route a
    # medoid to another medoid's cluster; pin each medoid to itself so the
    # result always has exactly k clusters.
    for medoid in medoids:
        assignment[medoid] = medoid
    clusters: dict[int, set[int]] = {}
    for item in range(n):
        clusters.setdefault(int(assignment[item]), set()).add(item)
    return sorted(clusters.values(), key=lambda c: (-len(c), min(c)))
