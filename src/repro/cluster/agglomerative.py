"""The agglomerative clustering engine (§4.1).

Starts from singleton clusters, repeatedly merges the most similar pair
while that similarity is at least ``min_sim``. Similarities come from a
:class:`ClusterMeasure`, which also knows how to merge its own aggregates
incrementally (§4.2) — the engine never recomputes pairwise similarities
from scratch after a merge.

The best pair is tracked with a lazy-deletion max-heap: entries are
invalidated by a per-cluster version counter instead of being removed, which
keeps each merge O((#clusters + heap churn) log n). Lazy deletion alone
lets stale entries accumulate (every merge invalidates up to 2(k-1)
entries but removes none), so the heap is compacted — stale entries
filtered out and the remainder re-heapified — whenever its size exceeds
twice the upper bound on live pairs. Compaction only discards entries
that could never be popped as valid, so the merge sequence is unchanged;
``cluster.heap.size`` (gauge) and ``cluster.heap.compactions`` /
``cluster.heap.stale_dropped`` (counters) track the behaviour.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Protocol

from repro.cluster.dendrogram import Dendrogram
from repro.obs import counter, gauge, span

_MERGES = counter("cluster.merges")
_RUNS = counter("cluster.runs")
_HEAP_SIZE = gauge("cluster.heap.size")
_COMPACTIONS = counter("cluster.heap.compactions")
_STALE_DROPPED = counter("cluster.heap.stale_dropped")

#: Heaps smaller than this are never compacted (not worth the pass).
_COMPACT_MIN = 64


class ClusterMeasure(Protocol):
    """What the engine needs from a similarity measure.

    Cluster ids are opaque ints; initially ``0..n_items-1`` (singletons).
    ``merge`` must return the id of the merged cluster and update internal
    aggregates so subsequent ``similarity`` calls reflect the merge.
    """

    def n_items(self) -> int:
        """Number of initial singleton clusters."""
        ...

    def similarity(self, a: int, b: int) -> float:
        """Similarity between two active clusters (symmetric, >= 0)."""
        ...

    def merge(self, a: int, b: int, merged_id: int) -> None:
        """Fold clusters ``a`` and ``b`` into the new cluster ``merged_id``."""
        ...


@dataclass
class ClusteringResult:
    """Flat clusters (sets of item indices) plus the merge history."""

    clusters: list[set[int]]
    dendrogram: Dendrogram
    min_sim: float
    merge_similarities: list[float] = field(default_factory=list)

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def labels(self) -> list[int]:
        """Cluster index per item, aligned with item indices 0..n-1."""
        out = [0] * self.dendrogram.n_leaves
        for label, cluster in enumerate(self.clusters):
            for item in cluster:
                out[item] = label
        return out


class AgglomerativeClusterer:
    """Runs the merge loop for a given measure and ``min_sim`` threshold.

    ``min_sim`` is the paper's stopping threshold: merging continues while
    the best pair's similarity is >= ``min_sim`` (strictly positive
    similarities only; pairs at 0 are never merged).
    """

    def __init__(self, min_sim: float) -> None:
        if min_sim < 0:
            raise ValueError("min_sim must be >= 0")
        self.min_sim = min_sim

    def cluster(self, measure: ClusterMeasure) -> ClusteringResult:
        _RUNS.inc()
        n = measure.n_items()
        dendrogram = Dendrogram(n_leaves=n)
        if n == 0:
            return ClusteringResult([], dendrogram, self.min_sim)
        with span("cluster.agglomerative", n_items=n, min_sim=self.min_sim) as sp:
            result = self._merge_loop(measure, n, dendrogram)
            sp.annotate(
                n_clusters=result.n_clusters, n_merges=len(result.merge_similarities)
            )
        _MERGES.inc(len(result.merge_similarities))
        return result

    def resume(
        self,
        measure: ClusterMeasure,
        dendrogram: Dendrogram,
        members: dict[int, set[int]],
    ) -> ClusteringResult:
        """Continue the merge loop from a replayed prefix state.

        ``dendrogram`` holds the merges already performed (its ``record``
        keeps numbering merged clusters consistently) and ``members`` the
        live clusters, with ``measure`` already folded to match. Used by
        :func:`repro.cluster.incremental.recluster_incremental`; a resume
        from an empty prefix is exactly :meth:`cluster`.
        """
        _RUNS.inc()
        n = dendrogram.n_leaves
        if n == 0:
            return ClusteringResult([], dendrogram, self.min_sim)
        with span(
            "cluster.agglomerative",
            n_items=n,
            min_sim=self.min_sim,
            resumed_merges=len(dendrogram.merges),
        ) as sp:
            n_prefix = len(dendrogram.merges)
            result = self._merge_loop(measure, n, dendrogram, members=members)
            sp.annotate(
                n_clusters=result.n_clusters, n_merges=len(result.merge_similarities)
            )
        _MERGES.inc(len(result.merge_similarities) - n_prefix)
        return result

    def _merge_loop(
        self,
        measure: ClusterMeasure,
        n: int,
        dendrogram: Dendrogram,
        members: dict[int, set[int]] | None = None,
    ) -> ClusteringResult:

        if members is None:
            members = {i: {i} for i in range(n)}
        version: dict[int, int] = {i: 0 for i in members}
        heap: list[tuple[float, int, int, int, int]] = []

        def push(a: int, b: int) -> None:
            sim = measure.similarity(a, b)
            if sim > 0.0 and sim >= self.min_sim:
                heapq.heappush(heap, (-sim, a, b, version[a], version[b]))

        def compact() -> list[tuple[float, int, int, int, int]]:
            """Drop stale entries once they outnumber live pairs 2:1.

            Live entries are at most C(k, 2) for k active clusters; when
            the heap grows past twice that bound, filter entries whose
            version stamps are current and re-heapify. Pop order is the
            total order on the (unique) entry tuples, so removing
            entries that could never pop as valid preserves the merge
            sequence exactly.
            """
            k = len(members)
            live_bound = k * (k - 1) // 2
            if len(heap) <= max(_COMPACT_MIN, 2 * live_bound):
                return heap
            kept = [
                entry
                for entry in heap
                if version.get(entry[1]) == entry[3]
                and version.get(entry[2]) == entry[4]
            ]
            heapq.heapify(kept)
            _COMPACTIONS.inc()
            _STALE_DROPPED.inc(len(heap) - len(kept))
            return kept

        # Entry orientation must match what a from-scratch run's heap
        # would hold for the same live pair: leaf-leaf pairs enter the
        # initial fill as (min, max); any pair involving a merged cluster
        # was pushed at that cluster's creation as (merged, other), and
        # merged ids always exceed every id live at the time — so (max,
        # min). Resume-time fills reproduce that orientation so equal-
        # similarity ties break identically.
        active = sorted(members)  # lint: allow[determinism/unkeyed-sort] cluster ids are ints
        for i, a in enumerate(active):
            for b in active[i + 1 :]:
                if b >= n:
                    push(b, a)
                else:
                    push(a, b)
        _HEAP_SIZE.set(len(heap))

        merge_similarities: list[float] = [m.similarity for m in dendrogram.merges]
        while heap:
            neg_sim, a, b, va, vb = heapq.heappop(heap)
            if version.get(a) != va or version.get(b) != vb:
                continue  # stale entry
            sim = -neg_sim
            merged = dendrogram.record(a, b, sim)
            merge_similarities.append(sim)
            measure.merge(a, b, merged)
            members[merged] = members.pop(a) | members.pop(b)
            del version[a]
            del version[b]
            version[merged] = 0
            for other in members:
                if other != merged:
                    push(merged, other)
            heap = compact()
            _HEAP_SIZE.set(len(heap))

        clusters = sorted(members.values(), key=lambda s: (-len(s), min(s)))
        return ClusteringResult(
            clusters=clusters,
            dendrogram=dendrogram,
            min_sim=self.min_sim,
            merge_similarities=merge_similarities,
        )
