"""DISTINCT's composite cluster similarity (§4.1–§4.2).

``Sim(C1, C2) = sqrt( Resem(C1, C2) * WalkProb(C1, C2) )`` where

- ``Resem`` is the Average-Link set resemblance: the mean of the combined
  (Eq 1) pair resemblances over all cross pairs, and
- ``WalkProb`` is the collective random-walk probability: the probability of
  walking from one cluster (entered uniformly) to the other, symmetrized::

      WalkProb(C1, C2) = (W / |C1| + W / |C2|) / 2,
      W = sum of pair walk probabilities over cross pairs

Both aggregates are plain sums over cross pairs, so a merge just adds the
children's sums (§4.2's incremental computation) — no pair similarity is
ever recomputed.
"""

from __future__ import annotations

import numpy as np

from repro.similarity.combine import geometric_mean


class CompositeMeasure:
    """Incrementally maintained composite similarity over two pair matrices.

    Parameters
    ----------
    pair_resem:
        Symmetric matrix of combined pair set-resemblance values (Eq 1).
    pair_walk:
        Symmetric matrix of combined pair walk probabilities (Eq 1).
    """

    def __init__(self, pair_resem: np.ndarray, pair_walk: np.ndarray) -> None:
        pair_resem = np.asarray(pair_resem, dtype=float)
        pair_walk = np.asarray(pair_walk, dtype=float)
        if pair_resem.shape != pair_walk.shape:
            raise ValueError("resemblance and walk matrices must align")
        if pair_resem.ndim != 2 or pair_resem.shape[0] != pair_resem.shape[1]:
            raise ValueError("pair matrices must be square")
        for name, matrix in (("resemblance", pair_resem), ("walk", pair_walk)):
            if not np.allclose(matrix, matrix.T, atol=1e-9):
                raise ValueError(f"pair {name} matrix must be symmetric")

        self._n = pair_resem.shape[0]
        self._resem_sum: dict[int, dict[int, float]] = {}
        self._walk_sum: dict[int, dict[int, float]] = {}
        for i in range(self._n):
            self._resem_sum[i] = {}
            self._walk_sum[i] = {}
            for j in range(self._n):
                if j == i:
                    continue
                if pair_resem[i, j] > 0.0:
                    self._resem_sum[i][j] = float(pair_resem[i, j])
                if pair_walk[i, j] > 0.0:
                    self._walk_sum[i][j] = float(pair_walk[i, j])
        self._size: dict[int, int] = {i: 1 for i in range(self._n)}

    # -- ClusterMeasure protocol -------------------------------------------

    def n_items(self) -> int:
        return self._n

    def similarity(self, a: int, b: int) -> float:
        resem = self.average_resemblance(a, b)
        walk = self.collective_walk_probability(a, b)
        return geometric_mean(resem, walk)

    def merge(self, a: int, b: int, merged_id: int) -> None:
        for sums in (self._resem_sum, self._walk_sum):
            sums_a = sums.pop(a)
            sums_b = sums.pop(b)
            merged: dict[int, float] = {}
            # sorted: merge bookkeeping must not depend on set hash order
            # (feeds the byte-identical parallel/serial guarantee).
            # lint: allow[determinism/unkeyed-sort] cluster ids are plain int
            for other in sorted((set(sums_a) | set(sums_b)) - {a, b}):
                value = sums_a.get(other, 0.0) + sums_b.get(other, 0.0)
                merged[other] = value
                other_sums = sums[other]
                other_sums.pop(a, None)
                other_sums.pop(b, None)
                other_sums[merged_id] = value
            sums[merged_id] = merged
        self._size[merged_id] = self._size.pop(a) + self._size.pop(b)

    # -- components (exposed for tests and diagnostics) ----------------------

    def size(self, cluster: int) -> int:
        return self._size[cluster]

    def average_resemblance(self, a: int, b: int) -> float:
        total = self._resem_sum[a].get(b, 0.0)
        if total == 0.0:
            return 0.0
        return total / (self._size[a] * self._size[b])

    def collective_walk_probability(self, a: int, b: int) -> float:
        total = self._walk_sum[a].get(b, 0.0)
        if total == 0.0:
            return 0.0
        return 0.5 * (total / self._size[a] + total / self._size[b])


class CollectiveWalkMeasure(CompositeMeasure):
    """Collective random-walk probability alone (the Fig-4 walk-only variant).

    Reuses the composite bookkeeping with the resemblance term ignored.
    """

    def __init__(self, pair_walk: np.ndarray) -> None:
        pair_walk = np.asarray(pair_walk, dtype=float)
        super().__init__(np.zeros_like(pair_walk), pair_walk)

    def similarity(self, a: int, b: int) -> float:
        return self.collective_walk_probability(a, b)
