"""Merge-tree bookkeeping for agglomerative clustering."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Merge:
    """One merge event: clusters ``left`` and ``right`` became ``merged``."""

    left: int
    right: int
    merged: int
    similarity: float


@dataclass
class Dendrogram:
    """The full merge history over ``n_leaves`` initial singleton clusters.

    Leaves are clusters ``0..n_leaves-1``; merge ``k`` creates cluster
    ``n_leaves + k``. :meth:`cut` replays the history to produce the flat
    clustering at a similarity threshold.
    """

    n_leaves: int
    merges: list[Merge] = field(default_factory=list)

    def record(self, left: int, right: int, similarity: float) -> int:
        merged = self.n_leaves + len(self.merges)
        self.merges.append(Merge(left, right, merged, similarity))
        return merged

    def cut(self, min_similarity: float) -> list[set[int]]:
        """Flat clusters (sets of leaf indices) using only merges with
        similarity >= ``min_similarity``.

        Because agglomerative merges are recorded best-first, replaying the
        prefix above the threshold reproduces the clustering the engine
        would have produced with that ``min_sim``.
        """
        members: dict[int, set[int]] = {i: {i} for i in range(self.n_leaves)}
        for merge in self.merges:
            if merge.similarity < min_similarity:
                continue
            if merge.left not in members or merge.right not in members:
                continue  # a child was consumed by an earlier (better) merge
            merged = members.pop(merge.left) | members.pop(merge.right)
            members[merge.merged] = merged
        return sorted(members.values(), key=lambda s: (-len(s), min(s)))

    def cut_k(self, k: int) -> list[set[int]]:
        """Flat clustering with exactly ``k`` clusters (if reachable)."""
        if k < 1:
            raise ValueError("k must be >= 1")
        members: dict[int, set[int]] = {i: {i} for i in range(self.n_leaves)}
        for merge in self.merges:
            if len(members) <= k:
                break
            if merge.left not in members or merge.right not in members:
                continue
            merged = members.pop(merge.left) | members.pop(merge.right)
            members[merge.merged] = merged
        return sorted(members.values(), key=lambda s: (-len(s), min(s)))

    @property
    def n_merges(self) -> int:
        return len(self.merges)
