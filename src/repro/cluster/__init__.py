"""Agglomerative clustering of references (§4 of the paper).

The engine (:mod:`repro.cluster.agglomerative`) is generic: it repeatedly
merges the most similar pair of clusters until the best similarity drops
below ``min_sim``, driven by any :class:`ClusterMeasure`. DISTINCT's measure
(:mod:`repro.cluster.composite`) is the geometric mean of average-link set
resemblance and collective random-walk probability, maintained incrementally
(§4.2); classic Single/Complete/Average-link measures
(:mod:`repro.cluster.linkage`) are provided for the §4.1 comparison.
"""

from repro.cluster.agglomerative import (
    AgglomerativeClusterer,
    ClusteringResult,
    ClusterMeasure,
)
from repro.cluster.linkage import (
    AverageLinkMeasure,
    CompleteLinkMeasure,
    SingleLinkMeasure,
)
from repro.cluster.composite import CompositeMeasure
from repro.cluster.dendrogram import Dendrogram, Merge
from repro.cluster.incremental import recluster_incremental

__all__ = [
    "AgglomerativeClusterer",
    "ClusteringResult",
    "ClusterMeasure",
    "SingleLinkMeasure",
    "CompleteLinkMeasure",
    "AverageLinkMeasure",
    "CompositeMeasure",
    "Dendrogram",
    "Merge",
    "recluster_incremental",
]
