"""Error policies: what a long loop does when one item fails.

A multi-stage run (ingest thousands of records, score dozens of names)
should not lose hours of work to one malformed row. The :class:`Policy`
enum names the three behaviours every resilient loop supports:

- ``RAISE``   — propagate immediately (the default; identical to a loop
  with no error handling);
- ``SKIP``    — drop the failing item, log a warning, keep going;
- ``COLLECT`` — like skip, but also record a (stage, item, exception)
  triple in an :class:`ErrorCollector` so the run can report exactly what
  was lost and why.

The :func:`guard` context manager applies a policy around one item of
work; skipped and collected failures flow into the ``obs`` metrics
registry (``resilience.items_skipped``, ``resilience.errors_collected``)
so degradation is visible in traces.

:class:`~repro.errors.DeadlineExceeded` is a control-flow signal, not an
item failure — no policy ever swallows it.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import DeadlineExceeded
from repro.obs import counter, get_logger

__all__ = ["ErrorCollector", "ErrorRecord", "Policy", "guard"]

log = get_logger("resilience.policy")

_SKIPPED = counter("resilience.items_skipped")
_COLLECTED = counter("resilience.errors_collected")


class Policy(enum.Enum):
    """What to do when one item of a batch fails."""

    RAISE = "raise"
    SKIP = "skip"
    COLLECT = "collect"

    @classmethod
    def coerce(cls, value: "Policy | str") -> "Policy":
        """Accept a member or its string value (CLI flags arrive as strings)."""
        if isinstance(value, Policy):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            choices = ", ".join(p.value for p in cls)
            raise ValueError(
                f"unknown error policy {value!r}; expected one of: {choices}"
            ) from None


@dataclass(frozen=True)
class ErrorRecord:
    """One collected failure: where, on what, and why."""

    stage: str
    item: str
    error: BaseException

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "item": self.item,
            "error_type": type(self.error).__name__,
            "message": str(self.error),
        }


class ErrorCollector:
    """Accumulates :class:`ErrorRecord` triples across a run.

    One collector can span several stages (ingestion, profiling, scoring);
    :meth:`items` filters by stage and :meth:`summary` renders the report
    the CLI prints at the end of a degraded run.
    """

    def __init__(self) -> None:
        self.records: list[ErrorRecord] = []

    def record(self, stage: str, item: str, error: BaseException) -> ErrorRecord:
        rec = ErrorRecord(stage=stage, item=str(item), error=error)
        self.records.append(rec)
        return rec

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def __iter__(self):
        return iter(self.records)

    def items(self, stage: str | None = None) -> list[str]:
        """The failed items (optionally only those of one stage)."""
        return [r.item for r in self.records if stage is None or r.stage == stage]

    def to_dicts(self) -> list[dict]:
        return [r.to_dict() for r in self.records]

    def summary(self) -> str:
        """Human-readable error report, one line per failure."""
        if not self.records:
            return "no errors collected"
        lines = [f"{len(self.records)} error(s) collected:"]
        for r in self.records:
            lines.append(
                f"  [{r.stage}] {r.item}: {type(r.error).__name__}: {r.error}"
            )
        return "\n".join(lines)


@contextmanager
def guard(
    stage: str,
    item: str,
    policy: Policy | str = Policy.RAISE,
    collector: ErrorCollector | None = None,
):
    """Apply an error policy around one item of work.

    Under ``SKIP``/``COLLECT`` any :class:`Exception` from the body is
    logged and suppressed (``COLLECT`` additionally records it in
    ``collector``); the caller continues with the next item.
    ``DeadlineExceeded`` and non-``Exception`` interrupts always propagate.
    """
    policy = Policy.coerce(policy)
    try:
        yield
    except DeadlineExceeded:
        raise
    except Exception as exc:
        if policy is Policy.RAISE:
            raise
        _SKIPPED.inc()
        if policy is Policy.COLLECT:
            _COLLECTED.inc()
            if collector is not None:
                collector.record(stage, item, exc)
        log.warning(
            "[%s] %s failed (%s: %s) — %s",
            stage, item, type(exc).__name__, exc,
            "collected" if policy is Policy.COLLECT else "skipped",
        )
