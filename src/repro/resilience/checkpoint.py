"""Versioned, atomically written JSON checkpoints of per-item progress.

A checkpoint records which items of a long run (the per-name loop of
``experiment``, the per-synthetic-name loop of ``calibrate``) are already
done, plus any collected errors. Writes go through tmp-file + fsync +
``os.replace`` + directory fsync, so a crash — even a power failure —
leaves either the previous complete checkpoint or the new one, never a
torn file. Each file carries a ``format_version``, a ``kind``, the
*signature* of the run that produced it (names, grid, thresholds …), and
a sha256 checksum over its own canonical content.

On resume, :meth:`CheckpointStore.load` distinguishes two failure
classes. *Corruption* — unreadable JSON, a non-object payload, a missing
or mismatched checksum (truncation, bit rot, a partial write from a
pre-atomic tool) — quarantines the file to ``<name>.corrupt`` and
returns ``None``: the run restarts from nothing rather than crash or
trust garbage. *Semantic mismatch* — an intact file from a different
format version, kind, or run signature — still raises
:class:`~repro.errors.CheckpointError`: the file is fine, resuming from
it would silently mix results, and overwriting it may destroy a valid
checkpoint of some other run.

File layout::

    {
      "format_version": 2,
      "kind": "experiment",
      "signature": {...},          # run parameters, compared on resume
      "completed": [...],          # per-item payloads, insertion order
      "errors": [...],             # ErrorCollector.to_dicts()
      "complete": false,           # true once the run finished all items
      "checksum": "sha256:..."     # over the canonical JSON minus this key
    }
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.errors import CheckpointError
from repro.obs import counter, get_logger

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointStore",
    "attach_checksum",
    "verify_checksum",
    "write_json_atomic",
]

log = get_logger("resilience.checkpoint")

CHECKPOINT_VERSION = 2

_WRITES = counter("checkpoint.writes")
_RESUMED = counter("checkpoint.items_resumed")
_QUARANTINED = counter("checkpoint.corrupt_quarantined")

_CHECKSUM_KEY = "checksum"


def _payload_digest(payload: dict) -> str:
    """sha256 over the canonical JSON form, ``checksum`` key excluded."""
    body = {k: v for k, v in payload.items() if k != _CHECKSUM_KEY}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def attach_checksum(payload: dict) -> dict:
    """A copy of ``payload`` with its ``checksum`` field (re)computed."""
    out = dict(payload)
    out[_CHECKSUM_KEY] = _payload_digest(payload)
    return out


def verify_checksum(payload: dict) -> bool:
    """True when ``payload`` carries a checksum matching its own content."""
    return payload.get(_CHECKSUM_KEY) == _payload_digest(payload)


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry; best-effort on filesystems that refuse."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # e.g. directories not opened for reading on some OSes
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_json_atomic(path: str | Path, payload: object) -> Path:
    """Serialize ``payload`` to ``path`` durably and atomically.

    The tmp file is fsynced before ``os.replace`` (its bytes reach disk
    before the rename can), and the parent directory is fsynced after
    (the rename itself reaches disk), so a crash or power failure at any
    point leaves either the old file or the complete new one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)
    return path


class CheckpointStore:
    """One checkpoint file bound to one run's kind and signature.

    ``save`` is called after every completed item (cheap: the payloads are
    per-item score dicts, not features); ``load`` returns the completed
    payloads of a compatible previous run, ``None`` after quarantining a
    corrupt file, or raises :class:`CheckpointError` when an intact file
    belongs to a different run.
    """

    def __init__(self, path: str | Path, kind: str, signature: dict) -> None:
        self.path = Path(path)
        self.kind = kind
        self.signature = signature

    def exists(self) -> bool:
        return self.path.exists()

    @property
    def quarantine_path(self) -> Path:
        return self.path.with_name(self.path.name + ".corrupt")

    def _quarantine(self, reason: str) -> None:
        """Move the untrusted file aside so the run restarts from nothing.

        The bad bytes are preserved (for forensics) at
        :attr:`quarantine_path`, replacing any previous quarantined file.
        """
        _QUARANTINED.inc()
        target = self.quarantine_path
        try:
            os.replace(self.path, target)
        except OSError as exc:
            raise CheckpointError(
                f"corrupt checkpoint ({reason}) could not be quarantined: {exc}",
                self.path,
            ) from exc
        log.warning(
            "corrupt checkpoint quarantined to %s (%s); restarting from nothing",
            target, reason,
        )

    def load(self) -> dict | None:
        """Validated payload of an existing checkpoint file.

        Returns ``None`` after quarantining a corrupt/truncated file
        (resume from nothing). Raises :class:`CheckpointError` when the
        file cannot be read at all, or is intact but belongs to a
        different run (unknown ``format_version``, other ``kind``, or a
        signature that does not match this run's parameters).
        """
        try:
            raw = self.path.read_text()
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint: {exc}", self.path) from exc
        except UnicodeDecodeError as exc:
            # Bit rot can land inside a multi-byte sequence, breaking the
            # file before JSON parsing even starts.
            self._quarantine(f"undecodable bytes: {exc}")
            return None
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            self._quarantine(f"invalid JSON: {exc}")
            return None
        if not isinstance(payload, dict):
            self._quarantine("payload is not a JSON object")
            return None
        if not verify_checksum(payload):
            self._quarantine(
                "checksum mismatch (truncated, bit-flipped, or checksum-less)"
            )
            return None

        version = payload.get("format_version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unknown checkpoint format_version {version!r} "
                f"(this build reads version {CHECKPOINT_VERSION})",
                self.path,
            )
        kind = payload.get("kind")
        if kind != self.kind:
            raise CheckpointError(
                f"checkpoint kind {kind!r} does not match this run ({self.kind!r})",
                self.path,
            )
        saved = payload.get("signature")
        if saved != self.signature:
            saved_sig = saved if isinstance(saved, dict) else {}
            # Deterministic key order: the mismatch report must read the
            # same on every run (set iteration order varies per process).
            # lint: allow[determinism/unkeyed-sort] signature keys are str
            all_keys = sorted({*saved_sig, *self.signature})
            mismatched = [
                k
                for k in all_keys
                if saved_sig.get(k) != self.signature.get(k)
            ]
            raise CheckpointError(
                "checkpoint was written by a run with different parameters "
                f"(mismatched: {', '.join(mismatched) or 'all'})",
                self.path,
            )
        completed = payload.get("completed")
        if not isinstance(completed, list):
            self._quarantine("no 'completed' list despite a valid checksum")
            return None
        _RESUMED.inc(len(completed))
        log.info(
            "resuming from %s: %d item(s) already completed",
            self.path, len(completed),
        )
        return payload

    def save(
        self,
        completed: list[dict],
        errors: list[dict] | None = None,
        complete: bool = False,
    ) -> None:
        """Atomically persist the current progress."""
        write_json_atomic(
            self.path,
            attach_checksum(
                {
                    "format_version": CHECKPOINT_VERSION,
                    "kind": self.kind,
                    "signature": self.signature,
                    "completed": completed,
                    "errors": errors or [],
                    "complete": complete,
                }
            ),
        )
        _WRITES.inc()
