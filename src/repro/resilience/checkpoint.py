"""Versioned, atomically written JSON checkpoints of per-item progress.

A checkpoint records which items of a long run (the per-name loop of
``experiment``, the per-synthetic-name loop of ``calibrate``) are already
done, plus any collected errors. Writes go through tmp-file + ``os.replace``
so a crash mid-write leaves either the previous complete checkpoint or the
new one — never a torn file. Each file carries a ``format_version``, a
``kind``, and the *signature* of the run that produced it (names, grid,
thresholds …); resuming validates all three so a checkpoint from a
different run, or a corrupt file, fails fast with
:class:`~repro.errors.CheckpointError` instead of silently mixing results.

File layout::

    {
      "format_version": 1,
      "kind": "experiment",
      "signature": {...},          # run parameters, compared on resume
      "completed": [...],          # per-item payloads, insertion order
      "errors": [...],             # ErrorCollector.to_dicts()
      "complete": false            # true once the run finished all items
    }
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import CheckpointError
from repro.obs import counter, get_logger

__all__ = ["CHECKPOINT_VERSION", "CheckpointStore", "write_json_atomic"]

log = get_logger("resilience.checkpoint")

CHECKPOINT_VERSION = 1

_WRITES = counter("checkpoint.writes")
_RESUMED = counter("checkpoint.items_resumed")


def write_json_atomic(path: str | Path, payload: object) -> Path:
    """Serialize ``payload`` to ``path`` via tmp file + atomic rename."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2))
    os.replace(tmp, path)
    return path


class CheckpointStore:
    """One checkpoint file bound to one run's kind and signature.

    ``save`` is called after every completed item (cheap: the payloads are
    per-item score dicts, not features); ``load`` returns the completed
    payloads of a compatible previous run, or raises
    :class:`CheckpointError` when the file cannot be trusted.
    """

    def __init__(self, path: str | Path, kind: str, signature: dict) -> None:
        self.path = Path(path)
        self.kind = kind
        self.signature = signature

    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> dict:
        """Validated payload of an existing checkpoint file.

        Raises :class:`CheckpointError` on unreadable/corrupt JSON, an
        unknown ``format_version``, a different ``kind``, or a signature
        that does not match this run's parameters.
        """
        try:
            raw = self.path.read_text()
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint: {exc}", self.path) from exc
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"corrupt checkpoint JSON: {exc}", self.path) from exc
        if not isinstance(payload, dict):
            raise CheckpointError("checkpoint is not a JSON object", self.path)

        version = payload.get("format_version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unknown checkpoint format_version {version!r} "
                f"(this build reads version {CHECKPOINT_VERSION})",
                self.path,
            )
        kind = payload.get("kind")
        if kind != self.kind:
            raise CheckpointError(
                f"checkpoint kind {kind!r} does not match this run ({self.kind!r})",
                self.path,
            )
        saved = payload.get("signature")
        if saved != self.signature:
            saved_sig = saved if isinstance(saved, dict) else {}
            # Deterministic key order: the mismatch report must read the
            # same on every run (set iteration order varies per process).
            # lint: allow[determinism/unkeyed-sort] signature keys are str
            all_keys = sorted({*saved_sig, *self.signature})
            mismatched = [
                k
                for k in all_keys
                if saved_sig.get(k) != self.signature.get(k)
            ]
            raise CheckpointError(
                "checkpoint was written by a run with different parameters "
                f"(mismatched: {', '.join(mismatched) or 'all'})",
                self.path,
            )
        completed = payload.get("completed")
        if not isinstance(completed, list):
            raise CheckpointError("checkpoint has no 'completed' list", self.path)
        _RESUMED.inc(len(completed))
        log.info(
            "resuming from %s: %d item(s) already completed",
            self.path, len(completed),
        )
        return payload

    def save(
        self,
        completed: list[dict],
        errors: list[dict] | None = None,
        complete: bool = False,
    ) -> None:
        """Atomically persist the current progress."""
        write_json_atomic(
            self.path,
            {
                "format_version": CHECKPOINT_VERSION,
                "kind": self.kind,
                "signature": self.signature,
                "completed": completed,
                "errors": errors or [],
                "complete": complete,
            },
        )
        _WRITES.inc()
