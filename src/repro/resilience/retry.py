"""Bounded retries with jittered exponential backoff, and wall-clock deadlines.

:func:`retry` turns a transiently failing callable into a bounded, reported
condition: the iterative solvers use it to widen their budget on each
attempt (``fn`` receives the attempt index), and every re-attempt is
counted in the ``obs`` registry (``resilience.retry_attempts``) so retries
show up in traces. When the budget is exhausted the *last* exception
propagates unchanged — a :class:`~repro.errors.ConvergenceError` stays a
``ConvergenceError``, it is just raised after a known, bounded effort.

:class:`Deadline` is a monotonic wall-clock budget shared across stages:
long loops poll :meth:`Deadline.expired` (to stop gracefully, e.g. after
writing a checkpoint) or call :meth:`Deadline.check` (to raise
:class:`~repro.errors.DeadlineExceeded`).
"""

from __future__ import annotations

import random
import time
from typing import Callable, TypeVar

from repro.errors import DeadlineExceeded
from repro.obs import counter, get_logger

__all__ = ["Deadline", "retry"]

log = get_logger("resilience.retry")

_RETRIES = counter("resilience.retry_attempts")

T = TypeVar("T")


class Deadline:
    """A wall-clock budget measured on the monotonic clock.

    ``Deadline(None)`` never expires, so call sites can thread an optional
    deadline without branching.
    """

    def __init__(self, seconds: float | None, clock: Callable[[], float] = time.monotonic) -> None:
        if seconds is not None and seconds <= 0:
            raise ValueError("deadline seconds must be positive")
        self._clock = clock
        self.seconds = seconds
        self._expires_at = None if seconds is None else clock() + seconds

    @classmethod
    def after(cls, seconds: float | None, **kwargs) -> "Deadline":
        return cls(seconds, **kwargs)

    def remaining(self) -> float | None:
        """Seconds left, or ``None`` for an unbounded deadline."""
        if self._expires_at is None:
            return None
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(
                f"{what} exceeded its {self.seconds}s deadline"
            )

    def __repr__(self) -> str:
        return f"Deadline(seconds={self.seconds})"


def retry(
    fn: Callable[[int], T],
    budget: int = 3,
    backoff: float = 0.0,
    deadline: Deadline | None = None,
    retry_on: type[BaseException] | tuple[type[BaseException], ...] = Exception,
    max_backoff: float = 30.0,
    jitter: float = 0.5,
    seed: int | None = None,
    rng: random.Random | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn(attempt)`` up to ``budget`` times with jittered backoff.

    ``fn`` receives the zero-based attempt index so callers can scale their
    effort per attempt (the SVM doubles its epoch budget, k-medoids its
    swap budget). Only exceptions matching ``retry_on`` are retried;
    anything else — and the last failure once the budget is exhausted —
    propagates unchanged.

    The delay before attempt ``k`` (k >= 1) is
    ``min(backoff * 2**(k-1), max_backoff)`` scaled by a random factor in
    ``[1, 1+jitter]``. Jitter randomness never touches the module-global
    generator: pass an explicit ``rng`` to share a caller's seeded stream
    (so retry schedules are reproducible under ``--seed``), or ``seed``
    to pin a private one; with neither, a private ``Random(0)`` is used —
    every run draws the same jitter schedule, so a replay that retries is
    byte-identical to the original run rather than sleeping differently.
    ``backoff=0`` disables sleeping entirely. A ``deadline`` bounds
    the whole retry loop: once expired, :class:`DeadlineExceeded` is
    raised (chained to the last failure, if any).
    """
    if budget < 1:
        raise ValueError("retry budget must be at least 1")
    if rng is not None and seed is not None:
        raise ValueError("pass either rng or seed, not both")
    if rng is None:
        # Random(None) would seed from the OS: two identical runs that
        # both hit a retry would sleep differently and (under deadlines)
        # could diverge. Pin the default so jitter is reproducible.
        rng = random.Random(0 if seed is None else seed)
    last_exc: BaseException | None = None
    for attempt in range(budget):
        if deadline is not None and deadline.expired():
            raise DeadlineExceeded(
                f"retry loop exceeded its {deadline.seconds}s deadline "
                f"after {attempt} attempt(s)"
            ) from last_exc
        if attempt:
            _RETRIES.inc()
            if backoff > 0:
                delay = min(backoff * 2 ** (attempt - 1), max_backoff)
                delay *= 1.0 + jitter * rng.random()
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining is not None:
                        delay = min(delay, max(remaining, 0.0))
                sleep(delay)
        try:
            return fn(attempt)
        except retry_on as exc:
            last_exc = exc
            log.warning(
                "attempt %d/%d failed: %s: %s",
                attempt + 1, budget, type(exc).__name__, exc,
            )
    assert last_exc is not None
    raise last_exc
