"""Resilience for long pipeline runs: policies, retries, checkpoints, faults.

The DISTINCT evaluation is a multi-stage run over messy inputs; this
package keeps one bad record or one mid-run crash from discarding all
work:

- :mod:`repro.resilience.policy` — the ``raise`` / ``skip`` / ``collect``
  error policies and the :class:`ErrorCollector` report;
- :mod:`repro.resilience.retry` — :func:`retry` with jittered exponential
  backoff and the :class:`Deadline` wall-clock budget;
- :mod:`repro.resilience.checkpoint` — versioned JSON checkpoints written
  atomically (tmp + rename) and validated on resume;
- :mod:`repro.resilience.faults` — test-only injection points that the
  ``tests/resilience`` suite uses to prove skip/collect/resume semantics.

Degradation is observable: skipped items, collected errors, retry
attempts, and checkpoint writes all flow into the :mod:`repro.obs`
metrics registry (see ``docs/robustness.md``).
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    attach_checksum,
    verify_checksum,
    write_json_atomic,
)
from repro.resilience.faults import (
    FaultInjected,
    FaultPlan,
    clear_fault_plan,
    fault_check,
    fault_plan,
    flip_byte,
    install_fault_plan,
    truncate_file,
)
from repro.resilience.policy import ErrorCollector, ErrorRecord, Policy, guard
from repro.resilience.retry import Deadline, retry

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointStore",
    "Deadline",
    "ErrorCollector",
    "ErrorRecord",
    "FaultInjected",
    "FaultPlan",
    "Policy",
    "attach_checksum",
    "clear_fault_plan",
    "fault_check",
    "fault_plan",
    "flip_byte",
    "guard",
    "install_fault_plan",
    "retry",
    "truncate_file",
    "verify_checksum",
    "write_json_atomic",
]
