"""Test-only fault injection for the pipeline's failure paths.

Error policies and checkpoint/resume are only trustworthy if they are
exercised against real failures. The pipeline exposes named *injection
points* at its ingestion, profiling, similarity, and clustering stages —
each is a single call to :func:`fault_check`, a no-op (one global read)
unless a :class:`FaultPlan` is installed. Tests install a plan
describing *where* and *when* to fail::

    plan = FaultPlan()
    plan.fail_at("profile", item="Wei Wang")               # poison one name
    plan.fail_at("ingest.record", after=100, times=3)      # 3 bad records
    with fault_plan(plan):
        run_experiment(...)

The default injected exception is :class:`FaultInjected` (an ordinary
``Exception``, so policies can skip/collect it); pass ``exc=KeyboardInterrupt()``
to simulate a hard mid-run crash that no policy swallows, or
``exc=MemoryError()`` to exercise the degradation ladder.

Process-level faults (the chaos matrix) go further than exceptions:

- ``plan.kill_at(site, ...)`` (or ``fail_at(..., signal=signal.SIGKILL)``)
  sends the configured signal to the *current process* when the fault
  fires — inside a pool worker this is a real worker death, exactly what
  ``ordered_process_map``'s recovery path must survive. Worker processes
  inherit the installed plan through ``fork``, so a plan installed in
  the driver fires in workers too.
- ``fail_at(..., once_path=...)`` latches the fault across *processes*
  through an ``O_CREAT | O_EXCL`` marker file: with a fork-inherited
  plan every worker carries its own ``times`` counter, so "kill exactly
  one worker, run-wide" needs a filesystem latch, not a counter.
- :func:`truncate_file` / :func:`flip_byte` corrupt files on disk
  (checkpoints, exports) the way a crashed writer or bit rot would.

Injection sites currently wired:

========================  ====================================================
site                      where
========================  ====================================================
``ingest.record``         per record in :func:`repro.data.dblp_xml.iter_dblp_records`
``csv.load``              per relation in :func:`repro.reldb.csvio.load_database`
``profile``               per name in :meth:`repro.core.distinct.Distinct.prepare`
``features.backend``      per batch in :func:`repro.core.features.compute_pair_features`
                          (fast routes only — the degradation ladder's trigger)
``cluster``               per name in :meth:`repro.core.distinct.Distinct.cluster_prepared`
========================  ====================================================
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "clear_fault_plan",
    "fault_check",
    "fault_plan",
    "flip_byte",
    "install_fault_plan",
    "truncate_file",
]


class FaultInjected(Exception):
    """The default exception raised at a triggered injection point."""


def truncate_file(path: str | Path, keep_bytes: int) -> Path:
    """Truncate ``path`` to its first ``keep_bytes`` bytes (torn write)."""
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[:keep_bytes])
    return path


def flip_byte(path: str | Path, offset: int) -> Path:
    """XOR one byte of ``path`` with 0xFF (bit rot / disk corruption)."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not -len(data) <= offset < len(data):
        raise ValueError(f"offset {offset} outside file of {len(data)} bytes")
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))
    return path


@dataclass
class _Fault:
    site: str
    item: str | None = None  # None matches any item
    exc: BaseException | None = None
    times: int = 1  # how many triggers remain (<0 = unlimited)
    after: int = 0  # skip this many matching calls first
    signal: int | None = None  # send to current process instead of raising
    once_path: str | None = None  # cross-process once-only latch file
    seen: int = 0

    def matches(self, site: str, item: str | None) -> bool:
        if self.site != site or self.times == 0:
            return False
        return self.item is None or (item is not None and self.item == str(item))

    def claim_latch(self) -> bool:
        """Atomically claim the cross-process latch; True if we won.

        ``times``/``seen`` live in per-process memory, so a fork-inherited
        plan would fire once *per worker*. The ``O_CREAT | O_EXCL`` file
        makes the first claiming process — whichever it is — the only one.
        """
        if self.once_path is None:
            return True
        try:
            os.close(os.open(self.once_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return False
        return True


@dataclass
class _Trigger:
    """One fired fault, recorded for assertions."""

    site: str
    item: str | None


class FaultPlan:
    """A declarative schedule of failures keyed by injection site."""

    def __init__(self) -> None:
        self._faults: list[_Fault] = []
        self.triggered: list[_Trigger] = []
        self._lock = threading.Lock()

    def fail_at(
        self,
        site: str,
        item: str | None = None,
        exc: BaseException | None = None,
        times: int = 1,
        after: int = 0,
        signal: int | None = None,
        once_path: str | Path | None = None,
    ) -> "FaultPlan":
        """Arrange for ``site`` to fail.

        ``item`` restricts the fault to one item (name, record key,
        relation); ``after`` skips that many matching calls first (crash
        "after K names"); ``times`` bounds how often it fires (-1 =
        every matching call). ``signal`` sends that signal to the
        current process instead of raising (SIGKILL = unhandleable
        worker death). ``once_path`` names a latch file that bounds the
        fault to one firing *across processes* (see module docstring).
        Returns ``self`` for chaining.
        """
        self._faults.append(
            _Fault(
                site=site,
                item=item,
                exc=exc,
                times=times,
                after=after,
                signal=signal,
                once_path=None if once_path is None else str(once_path),
            )
        )
        return self

    def kill_at(
        self,
        site: str,
        item: str | None = None,
        after: int = 0,
        once_path: str | Path | None = None,
        sig: int | None = None,
    ) -> "FaultPlan":
        """Arrange for ``site`` to SIGKILL the process it runs in.

        Convenience for the chaos matrix's worker-death fault: inside a
        pool worker the kill is a real, unhandleable process death.
        ``once_path`` (recommended with forked pools) bounds it to one
        death run-wide; ``sig`` overrides the signal (default SIGKILL).
        """
        import signal as _signal

        return self.fail_at(
            site,
            item=item,
            times=-1 if once_path is not None else 1,
            after=after,
            signal=_signal.SIGKILL if sig is None else sig,
            once_path=once_path,
        )

    def check(self, site: str, item: str | None = None) -> None:
        with self._lock:
            for fault in self._faults:
                if not fault.matches(site, item):
                    continue
                fault.seen += 1
                if fault.seen <= fault.after:
                    continue
                if not fault.claim_latch():
                    fault.times = 0  # latch lost: retire locally, stay silent
                    continue
                if fault.times > 0:
                    fault.times -= 1
                self.triggered.append(_Trigger(site=site, item=item))
                if fault.signal is not None:
                    os.kill(os.getpid(), fault.signal)
                    continue  # survivable signals resume the sweep
                error = fault.exc if fault.exc is not None else FaultInjected(
                    f"injected fault at {site!r}"
                    + (f" (item {item!r})" if item is not None else "")
                )
                raise error


_ACTIVE: FaultPlan | None = None


def install_fault_plan(plan: FaultPlan) -> None:
    global _ACTIVE
    _ACTIVE = plan


def clear_fault_plan() -> None:
    global _ACTIVE
    _ACTIVE = None


def active_fault_plan() -> FaultPlan | None:
    return _ACTIVE


def fault_check(site: str, item: str | None = None) -> None:
    """The injection point: no-op unless a plan is installed."""
    if _ACTIVE is not None:
        _ACTIVE.check(site, item)


@contextmanager
def fault_plan(plan: FaultPlan):
    """Install ``plan`` for the duration of a ``with`` block."""
    install_fault_plan(plan)
    try:
        yield plan
    finally:
        clear_fault_plan()
