"""Test-only fault injection for the pipeline's failure paths.

Error policies and checkpoint/resume are only trustworthy if they are
exercised against real failures. The pipeline exposes named *injection
points* at its ingestion, profiling, and clustering stages — each is a
single call to :func:`fault_check`, a no-op (one global read) unless a
:class:`FaultPlan` is installed. Tests install a plan describing *where*
and *when* to fail::

    plan = FaultPlan()
    plan.fail_at("profile", item="Wei Wang")               # poison one name
    plan.fail_at("ingest.record", after=100, times=3)      # 3 bad records
    with fault_plan(plan):
        run_experiment(...)

The default injected exception is :class:`FaultInjected` (an ordinary
``Exception``, so policies can skip/collect it); pass ``exc=KeyboardInterrupt()``
to simulate a hard mid-run crash that no policy swallows.

Injection sites currently wired:

========================  ====================================================
site                      where
========================  ====================================================
``ingest.record``         per record in :func:`repro.data.dblp_xml.iter_dblp_records`
``csv.load``              per relation in :func:`repro.reldb.csvio.load_database`
``profile``               per name in :meth:`repro.core.distinct.Distinct.prepare`
``cluster``               per name in :meth:`repro.core.distinct.Distinct.cluster_prepared`
========================  ====================================================
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "clear_fault_plan",
    "fault_check",
    "fault_plan",
    "install_fault_plan",
]


class FaultInjected(Exception):
    """The default exception raised at a triggered injection point."""


@dataclass
class _Fault:
    site: str
    item: str | None = None  # None matches any item
    exc: BaseException | None = None
    times: int = 1  # how many triggers remain (<0 = unlimited)
    after: int = 0  # skip this many matching calls first
    seen: int = 0

    def matches(self, site: str, item: str | None) -> bool:
        if self.site != site or self.times == 0:
            return False
        return self.item is None or (item is not None and self.item == str(item))


@dataclass
class _Trigger:
    """One fired fault, recorded for assertions."""

    site: str
    item: str | None


class FaultPlan:
    """A declarative schedule of failures keyed by injection site."""

    def __init__(self) -> None:
        self._faults: list[_Fault] = []
        self.triggered: list[_Trigger] = []
        self._lock = threading.Lock()

    def fail_at(
        self,
        site: str,
        item: str | None = None,
        exc: BaseException | None = None,
        times: int = 1,
        after: int = 0,
    ) -> "FaultPlan":
        """Arrange for ``site`` to fail.

        ``item`` restricts the fault to one item (name, record key,
        relation); ``after`` skips that many matching calls first (crash
        "after K names"); ``times`` bounds how often it fires (-1 =
        every matching call). Returns ``self`` for chaining.
        """
        self._faults.append(
            _Fault(site=site, item=item, exc=exc, times=times, after=after)
        )
        return self

    def check(self, site: str, item: str | None = None) -> None:
        with self._lock:
            for fault in self._faults:
                if not fault.matches(site, item):
                    continue
                fault.seen += 1
                if fault.seen <= fault.after:
                    continue
                if fault.times > 0:
                    fault.times -= 1
                self.triggered.append(_Trigger(site=site, item=item))
                error = fault.exc if fault.exc is not None else FaultInjected(
                    f"injected fault at {site!r}"
                    + (f" (item {item!r})" if item is not None else "")
                )
                raise error


_ACTIVE: FaultPlan | None = None


def install_fault_plan(plan: FaultPlan) -> None:
    global _ACTIVE
    _ACTIVE = plan


def clear_fault_plan() -> None:
    global _ACTIVE
    _ACTIVE = None


def active_fault_plan() -> FaultPlan | None:
    return _ACTIVE


def fault_check(site: str, item: str | None = None) -> None:
    """The injection point: no-op unless a plan is installed."""
    if _ACTIVE is not None:
        _ACTIVE.check(site, item)


@contextmanager
def fault_plan(plan: FaultPlan):
    """Install ``plan`` for the duration of a ``with`` block."""
    install_fault_plan(plan)
    try:
        yield plan
    finally:
        clear_fault_plan()
