"""Automatic training-set construction (§3 of the paper).

No manual labels: in most applications the majority of entities have
distinct names, and a name with a rare first *and* rare last token is very
likely unique. Pairs of references to one such name are positive (equivalent)
examples; pairs of references to two different rare names are negative
(distinct) examples. The paper draws 1000 of each from DBLP.

The construction is schema-generic: it needs the relation holding the
references, the relation holding the named objects, and the name attribute —
defaults match the DBLP schema.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.data.names import NameFrequencyModel
from repro.errors import TrainingError
from repro.obs import counter, get_logger, span
from repro.reldb.database import Database

log = get_logger("ml.trainingset")
_PAIRS_BUILT = counter("trainingset.pairs_built")


@dataclass(frozen=True)
class TrainingPair:
    """A labeled pair of reference rows; +1 = equivalent, -1 = distinct."""

    row_a: int
    row_b: int
    name_a: str
    name_b: str
    label: int

    def __post_init__(self) -> None:
        if self.label not in (-1, 1):
            raise ValueError("label must be -1 or +1")


@dataclass
class TrainingSet:
    """The automatically constructed pairs, plus provenance."""

    pairs: list[TrainingPair]
    rare_names: list[str]
    params: dict = field(default_factory=dict)

    def labels(self) -> list[int]:
        return [pair.label for pair in self.pairs]

    @property
    def n_positive(self) -> int:
        return sum(1 for p in self.pairs if p.label == 1)

    @property
    def n_negative(self) -> int:
        return sum(1 for p in self.pairs if p.label == -1)

    def names_used(self) -> set[str]:
        return {p.name_a for p in self.pairs} | {p.name_b for p in self.pairs}


def build_training_set(
    db: Database,
    n_positive: int = 1000,
    n_negative: int = 1000,
    max_token_count: int = 2,
    min_refs: int = 2,
    max_refs: int = 30,
    seed: int = 0,
    reference_relation: str = "Publish",
    object_relation: str = "Authors",
    object_key: str = "author_key",
    name_attribute: str = "name",
) -> TrainingSet:
    """Build the §3 training set from the database itself.

    Raises
    ------
    TrainingError
        If the database has no usable rare names (fewer than two rare names
        with at least ``min_refs`` references each).
    """
    with span(
        "trainingset.build", n_positive=n_positive, n_negative=n_negative
    ) as sp:
        return _build(
            db, sp, n_positive, n_negative, max_token_count, min_refs, max_refs,
            seed, reference_relation, object_relation, object_key, name_attribute,
        )


def _build(
    db: Database,
    sp,
    n_positive: int,
    n_negative: int,
    max_token_count: int,
    min_refs: int,
    max_refs: int,
    seed: int,
    reference_relation: str,
    object_relation: str,
    object_key: str,
    name_attribute: str,
) -> TrainingSet:
    rng = random.Random(seed)
    objects = db.table(object_relation)
    names = objects.column(name_attribute)
    freq = NameFrequencyModel(names, max_token_count=max_token_count)

    ref_index = db.index(reference_relation, object_key)
    key_pos = objects.schema.position(object_key)

    refs_of_rare_name: dict[str, list[int]] = {}
    for row_id, row in enumerate(objects.rows):
        name = row[objects.schema.position(name_attribute)]
        if not freq.is_rare(name):
            continue
        refs = ref_index.lookup(row[key_pos])
        if min_refs <= len(refs) <= max_refs:
            refs_of_rare_name[name] = list(refs)

    rare_names = sorted(refs_of_rare_name)
    if len(rare_names) < 2:
        raise TrainingError(
            f"found only {len(rare_names)} rare names with >= {min_refs} "
            f"references; cannot build positive and negative examples"
        )

    positive_pool: list[TrainingPair] = []
    for name in rare_names:
        refs = refs_of_rare_name[name]
        for i in range(len(refs)):
            for j in range(i + 1, len(refs)):
                positive_pool.append(
                    TrainingPair(refs[i], refs[j], name, name, label=1)
                )
    if not positive_pool:
        raise TrainingError("no positive pairs available from rare names")
    if len(positive_pool) > n_positive:
        positives = rng.sample(positive_pool, n_positive)
    else:
        positives = list(positive_pool)

    negatives: list[TrainingPair] = []
    seen: set[tuple[int, int]] = set()
    attempts = 0
    max_attempts = 50 * n_negative
    while len(negatives) < n_negative and attempts < max_attempts:
        attempts += 1
        name_a, name_b = rng.sample(rare_names, 2)
        row_a = rng.choice(refs_of_rare_name[name_a])
        row_b = rng.choice(refs_of_rare_name[name_b])
        key = (min(row_a, row_b), max(row_a, row_b))
        if key in seen:
            continue
        seen.add(key)
        negatives.append(TrainingPair(row_a, row_b, name_a, name_b, label=-1))
    if not negatives:
        raise TrainingError("could not sample any negative pairs")

    pairs = positives + negatives
    rng.shuffle(pairs)
    _PAIRS_BUILT.inc(len(pairs))
    sp.annotate(
        n_rare_names=len(rare_names),
        n_positive_built=len(positives),
        n_negative_built=len(negatives),
    )
    log.debug(
        "training set: %d rare names, %d positive + %d negative pairs",
        len(rare_names), len(positives), len(negatives),
    )
    return TrainingSet(
        pairs=pairs,
        rare_names=rare_names,
        params={
            "n_positive": len(positives),
            "n_negative": len(negatives),
            "max_token_count": max_token_count,
            "min_refs": min_refs,
            "max_refs": max_refs,
            "seed": seed,
        },
    )
