"""PathWeightModel: the learned per-join-path weighting of Eq 1.

One model is trained per similarity measure (set resemblance, random walk).
It stores the raw-space linear weights keyed by join-path signature, so it
can be serialized, inspected ("which linkage types matter?"), and re-applied
to any path list that carries the same signatures.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.paths.joinpath import JoinPath
from repro.similarity.combine import PathWeights


@dataclass
class PathWeightModel:
    """Signed raw-space weights per path signature, plus a bias.

    ``measure`` labels which similarity the model scores ("resemblance" or
    "walk"). :meth:`combiner` yields the non-negative :class:`PathWeights`
    used as the Eq-1 similarity combiner; :meth:`decision_value` applies the
    full signed model (weights and bias) as a classifier score.
    """

    measure: str
    signatures: list[str]
    weights: list[float]
    bias: float = 0.0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.signatures) != len(self.weights):
            raise ValueError("one weight per path signature required")

    # -- use ------------------------------------------------------------------

    def combiner(self, clamp_negative: bool = True) -> PathWeights:
        return PathWeights(self.weights, clamp_negative=clamp_negative)

    def decision_value(self, features) -> float:
        features = np.asarray(features, dtype=float)
        return float(features @ np.asarray(self.weights) + self.bias)

    def align_to(self, paths: list[JoinPath]) -> "PathWeightModel":
        """Reorder/subset the model to match ``paths`` (by signature).

        Paths unknown to the model get weight 0 — they simply do not
        contribute to the combined similarity.
        """
        known = dict(zip(self.signatures, self.weights))
        signatures = [p.signature() for p in paths]
        weights = [known.get(sig, 0.0) for sig in signatures]
        return PathWeightModel(
            measure=self.measure,
            signatures=signatures,
            weights=weights,
            bias=self.bias,
            metadata=dict(self.metadata),
        )

    def top_paths(self, k: int = 5) -> list[tuple[str, float]]:
        """The k most positively weighted path signatures (inspection)."""
        order = sorted(
            zip(self.signatures, self.weights), key=lambda sw: sw[1], reverse=True
        )
        return order[:k]

    # -- persistence ------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "measure": self.measure,
            "signatures": list(self.signatures),
            "weights": [float(w) for w in self.weights],
            "bias": float(self.bias),
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PathWeightModel":
        return cls(
            measure=payload["measure"],
            signatures=list(payload["signatures"]),
            weights=[float(w) for w in payload["weights"]],
            bias=float(payload.get("bias", 0.0)),
            metadata=dict(payload.get("metadata", {})),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "PathWeightModel":
        return cls.from_dict(json.loads(Path(path).read_text()))
