"""Feature standardization, with back-mapping of linear weights to raw scale.

Per-path similarity features live on wildly different scales (a coauthor
resemblance can be 0.5 while a 7-hop walk probability is 1e-4), so the SVM
trains on standardized features. Because the model is linear, the learned
weights translate exactly back to the raw feature space::

    w . (x - mu) / sigma + b  ==  (w / sigma) . x + (b - sum(w * mu / sigma))

which is what :meth:`StandardScaler.raw_linear_model` returns — the clustering
stage then works with raw similarities directly (Eq 1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError


class MaxAbsScaler:
    """Column-wise x / max|x| scaler (no centering).

    This is the scaler the DISTINCT pipeline trains through: because there
    is no mean shift, a linear model on scaled features maps back to raw
    space as a pure reweighting (``w_raw = w / max``) with *unchanged* bias —
    so the Eq-1 similarity combination ``sum_P w(P) * Sim_P`` keeps its
    semantics. With z-score standardization the compensating mean-shift ends
    up in the bias, which Eq 1 drops, and near-constant high-valued paths
    (e.g. shared publication years) would swamp the combined similarity.
    """

    def __init__(self) -> None:
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "MaxAbsScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        scale = np.abs(X).max(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X) -> np.ndarray:
        if self.scale_ is None:
            raise NotFittedError("fit the scaler before transform")
        return np.asarray(X, dtype=float) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def raw_linear_model(
        self, weights: np.ndarray, bias: float
    ) -> tuple[np.ndarray, float]:
        """Map a linear model on scaled features back to raw feature space."""
        if self.scale_ is None:
            raise NotFittedError("fit the scaler first")
        return np.asarray(weights, dtype=float) / self.scale_, float(bias)


class StandardScaler:
    """Column-wise (x - mean) / std scaler; zero-variance columns pass through."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0  # constant columns: pass through unscaled
        self.scale_ = std
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("fit the scaler before transform")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def raw_linear_model(
        self, weights: np.ndarray, bias: float
    ) -> tuple[np.ndarray, float]:
        """Map a linear model on scaled features back to raw feature space."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("fit the scaler first")
        raw_weights = np.asarray(weights, dtype=float) / self.scale_
        raw_bias = float(bias - np.sum(raw_weights * self.mean_))
        return raw_weights, raw_bias
