"""A linear-kernel SVM trained by dual coordinate descent.

Solves the L2-regularized hinge-loss problem

    min_w  0.5 ||w||^2 + C * sum_i loss(y_i, w . x_i)

with ``loss`` either the L1 hinge ``max(0, 1 - y f)`` or the squared (L2)
hinge, via the dual coordinate descent method of Hsieh et al., *A Dual
Coordinate Descent Method for Large-scale Linear SVM* (ICML 2008) — the
algorithm behind LIBLINEAR. The bias term is handled by augmenting every
example with a constant feature (regularized bias; standard for this
solver and harmless at these scales).

The paper (§3) trains an SVM with linear kernel on 1000 positive + 1000
negative automatically labeled pairs; this solver converges on such problems
in milliseconds. The learned weight vector *is* the per-join-path weighting
``w(P)`` of Eq 1.
"""

from __future__ import annotations

import random

import numpy as np

from repro.errors import ConvergenceError, NotFittedError
from repro.obs import counter, span
from repro.resilience.retry import retry

_FITS = counter("svm.fits")
_ITERATIONS = counter("svm.iterations")
_RETRIES = counter("svm.convergence_retries")


class LinearSVM:
    """Binary linear SVM; labels must be -1 / +1.

    Parameters
    ----------
    C:
        Soft-margin cost. Larger C fits the training set more tightly.
    loss:
        ``"hinge"`` (L1) or ``"squared_hinge"`` (L2).
    tol:
        Stop when the maximal projected gradient over an epoch falls below
        this.
    max_epochs:
        Epoch budget; exceeding it raises :class:`ConvergenceError` unless
        ``strict=False`` (then the best-so-far model is kept).
    retries:
        Extra fit attempts after a non-converged strict fit. Each retry
        doubles the epoch budget and shifts the shuffle seed (via
        :func:`repro.resilience.retry`), so ``ConvergenceError`` becomes a
        bounded, reported condition: it is raised only once
        ``1 + retries`` attempts have failed. ``0`` (the default)
        preserves the single-attempt behaviour exactly.
    fit_bias:
        Learn an intercept via feature augmentation.
    seed:
        Seed for the per-epoch coordinate shuffle (deterministic training).
    """

    def __init__(
        self,
        C: float = 1.0,
        loss: str = "hinge",
        tol: float = 1e-6,
        max_epochs: int = 2000,
        fit_bias: bool = True,
        seed: int = 0,
        strict: bool = True,
        class_weight: str | dict | None = None,
        retries: int = 0,
    ) -> None:
        if C <= 0:
            raise ValueError("C must be positive")
        if loss not in ("hinge", "squared_hinge"):
            raise ValueError(f"unknown loss {loss!r}")
        if class_weight not in (None, "balanced") and not isinstance(
            class_weight, dict
        ):
            raise ValueError('class_weight must be None, "balanced", or a dict')
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.C = C
        self.loss = loss
        self.tol = tol
        self.max_epochs = max_epochs
        self.fit_bias = fit_bias
        self.seed = seed
        self.strict = strict
        self.class_weight = class_weight
        self.retries = retries
        self.n_fit_attempts_: int = 0
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0
        self.n_epochs_: int | None = None
        self.dual_coef_: np.ndarray | None = None

    def _per_example_cost(self, y: np.ndarray) -> np.ndarray:
        """Per-example cost C_i (class weighting scales the box constraint).

        ``"balanced"`` mirrors the usual convention: each class's cost is
        inversely proportional to its frequency, so an asymmetric training
        set (e.g. 1000 positives vs 200 negatives) does not bias the margin.
        """
        costs = np.full(len(y), self.C)
        if self.class_weight is None:
            return costs
        if self.class_weight == "balanced":
            n = len(y)
            for label in (-1.0, 1.0):
                mask = y == label
                count = int(mask.sum())
                if count:
                    costs[mask] = self.C * n / (2.0 * count)
            return costs
        for label, factor in self.class_weight.items():
            costs[y == float(label)] = self.C * factor
        return costs

    # -- training ------------------------------------------------------------

    def fit(self, X, y) -> "LinearSVM":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-dimensional and match X")
        if not set(np.unique(y)) <= {-1.0, 1.0}:
            raise ValueError("labels must be -1 or +1")
        if len(set(np.unique(y))) < 2:
            raise ValueError("training set needs both classes")

        with span("svm.fit", n=int(X.shape[0]), d=int(X.shape[1]), C=self.C) as sp:

            def attempt(k: int) -> None:
                # Widen the epoch budget and reshuffle on every retry so a
                # repeat attempt is not a verbatim replay of the failed one.
                if k:
                    _RETRIES.inc()
                self.n_fit_attempts_ = k + 1
                self._fit_dual(
                    X, y,
                    max_epochs=self.max_epochs * 2**k,
                    seed=self.seed + k,
                )

            retry(
                attempt,
                budget=self.retries + 1,
                retry_on=ConvergenceError,
                seed=self.seed,
            )
            sp.annotate(epochs=self.n_epochs_, attempts=self.n_fit_attempts_)
        _FITS.inc()
        _ITERATIONS.inc(self.n_epochs_ or 0)
        return self

    def _fit_dual(
        self,
        X: np.ndarray,
        y: np.ndarray,
        max_epochs: int | None = None,
        seed: int | None = None,
    ) -> None:
        max_epochs = self.max_epochs if max_epochs is None else max_epochs
        seed = self.seed if seed is None else seed
        n, d = X.shape
        if self.fit_bias:
            X = np.hstack([X, np.ones((n, 1))])

        costs = self._per_example_cost(y)
        if self.loss == "hinge":
            upper = costs
            diag = np.zeros(n)
        else:  # squared hinge: U = inf, extra per-example diagonal term
            upper = np.full(n, np.inf)
            diag = 1.0 / (2.0 * costs)

        q_diag = np.einsum("ij,ij->i", X, X) + diag
        alpha = np.zeros(n)
        w = np.zeros(X.shape[1])
        rng = random.Random(seed)
        order = list(range(n))

        epoch = 0
        converged = False
        for epoch in range(1, max_epochs + 1):
            rng.shuffle(order)
            max_violation = 0.0
            for i in order:
                if q_diag[i] <= 0.0:
                    continue
                grad = y[i] * (X[i] @ w) - 1.0 + diag[i] * alpha[i]
                # Projected gradient for the box constraint 0 <= alpha_i <= U_i.
                if alpha[i] <= 0.0:
                    pg = min(grad, 0.0)
                elif alpha[i] >= upper[i]:
                    pg = max(grad, 0.0)
                else:
                    pg = grad
                if pg == 0.0:
                    continue
                max_violation = max(max_violation, abs(pg))
                new_alpha = min(max(alpha[i] - grad / q_diag[i], 0.0), upper[i])
                delta = new_alpha - alpha[i]
                if delta != 0.0:
                    w += delta * y[i] * X[i]
                    alpha[i] = new_alpha
            if max_violation < self.tol:
                converged = True
                break

        if not converged and self.strict:
            raise ConvergenceError(
                f"dual coordinate descent did not converge in "
                f"{max_epochs} epochs (last violation above {self.tol})"
            )

        if self.fit_bias:
            self.weights_ = w[:-1].copy()
            self.bias_ = float(w[-1])
        else:
            self.weights_ = w.copy()
            self.bias_ = 0.0
        self.n_epochs_ = epoch
        self.dual_coef_ = alpha

    # -- inference ----------------------------------------------------------

    def decision_function(self, X) -> np.ndarray:
        if self.weights_ is None:
            raise NotFittedError("fit the SVM before calling decision_function")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return X @ self.weights_ + self.bias_

    def predict(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        return np.where(scores >= 0.0, 1.0, -1.0)

    def accuracy(self, X, y) -> float:
        y = np.asarray(y, dtype=float)
        return float(np.mean(self.predict(X) == y))

    # -- diagnostics ----------------------------------------------------------

    def primal_objective(self, X, y) -> float:
        """0.5||w||^2 + C * sum(loss) — handy for optimality tests."""
        if self.weights_ is None:
            raise NotFittedError("fit the SVM first")
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        margins = 1.0 - y * self.decision_function(X)
        hinge = np.maximum(margins, 0.0)
        costs = self._per_example_cost(y)
        if self.loss == "squared_hinge":
            loss_sum = float(np.sum(costs * hinge**2))
        else:
            loss_sum = float(np.sum(costs * hinge))
        reg = 0.5 * float(self.weights_ @ self.weights_ + self.bias_**2)
        return reg + loss_sum
