"""Model validation: k-fold cross-validation and classification metrics."""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np


@dataclass
class ClassificationReport:
    """Binary classification quality for labels in {-1, +1}."""

    accuracy: float
    precision: float
    recall: float
    f1: float
    n: int

    def __str__(self) -> str:
        return (
            f"acc={self.accuracy:.3f} p={self.precision:.3f} "
            f"r={self.recall:.3f} f1={self.f1:.3f} (n={self.n})"
        )


def classification_report(y_true, y_pred) -> ClassificationReport:
    """Accuracy / precision / recall / F1 treating +1 as the positive class."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    tp = float(np.sum((y_pred == 1) & (y_true == 1)))
    fp = float(np.sum((y_pred == 1) & (y_true == -1)))
    fn = float(np.sum((y_pred == -1) & (y_true == 1)))
    accuracy = float(np.mean(y_pred == y_true)) if len(y_true) else 0.0
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall) if precision + recall else 0.0
    )
    return ClassificationReport(accuracy, precision, recall, f1, n=len(y_true))


def kfold_indices(n: int, k: int, seed: int = 0) -> list[tuple[list[int], list[int]]]:
    """(train_indices, test_indices) per fold, shuffled deterministically."""
    if k < 2:
        raise ValueError("k must be >= 2")
    if n < k:
        raise ValueError("need at least k examples")
    order = list(range(n))
    random.Random(seed).shuffle(order)
    folds = [order[i::k] for i in range(k)]
    out: list[tuple[list[int], list[int]]] = []
    for i in range(k):
        test = folds[i]
        train = [idx for j, fold in enumerate(folds) if j != i for idx in fold]
        out.append((train, test))
    return out


def cross_validate(
    model_factory: Callable[[], object],
    X,
    y,
    k: int = 5,
    seed: int = 0,
) -> dict[str, float]:
    """Mean/std test accuracy (and mean F1) over k folds.

    ``model_factory`` returns a fresh estimator with ``fit`` and ``predict``.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    accuracies: list[float] = []
    f1s: list[float] = []
    for train, test in kfold_indices(len(y), k, seed):
        model = model_factory()
        model.fit(X[train], y[train])
        report = classification_report(y[test], model.predict(X[test]))
        accuracies.append(report.accuracy)
        f1s.append(report.f1)
    return {
        "accuracy_mean": float(np.mean(accuracies)),
        "accuracy_std": float(np.std(accuracies)),
        "f1_mean": float(np.mean(f1s)),
        "folds": float(k),
    }
