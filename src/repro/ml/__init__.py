"""Supervised learning with an automatically constructed training set (§3).

No external ML library is used: :mod:`repro.ml.svm` implements a
linear-kernel SVM from scratch (dual coordinate descent), which is the model
class the paper trains over per-path similarity features. The training set
comes for free from the data itself (:mod:`repro.ml.trainingset`): names
whose first and last tokens are both rare are assumed unique, pairs of their
references are positives, and cross-name pairs are negatives.
"""

from repro.ml.svm import LinearSVM
from repro.ml.scaling import MaxAbsScaler, StandardScaler
from repro.ml.model import PathWeightModel
from repro.ml.trainingset import TrainingPair, TrainingSet, build_training_set
from repro.ml.validation import cross_validate, classification_report

__all__ = [
    "LinearSVM",
    "MaxAbsScaler",
    "StandardScaler",
    "PathWeightModel",
    "TrainingPair",
    "TrainingSet",
    "build_training_set",
    "cross_validate",
    "classification_report",
]
