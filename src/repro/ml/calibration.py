"""Compatibility shim: the calibration loop now lives in ``repro.eval``.

Calibration prepares, clusters, and *scores* synthetic names, which makes
it an evaluation-layer concern; keeping it under ``repro.ml`` forced an
upward ``ml -> core/eval`` import. The implementation moved to
:mod:`repro.eval.calibration`; this module re-exports the public surface so
existing ``repro.ml.calibration`` imports keep working. New code should
import from ``repro.eval.calibration`` directly.
"""

from __future__ import annotations

# lint: allow[layering/import-dag] compat re-export of the moved module
from repro.eval.calibration import (
    DEFAULT_GRID,
    CalibrationResult,
    SyntheticName,
    calibrate_min_sim,
    calibration_checkpoint,
    make_synthetic_names,
    prepare_synthetic,
)

__all__ = [
    "DEFAULT_GRID",
    "CalibrationResult",
    "SyntheticName",
    "calibrate_min_sim",
    "calibration_checkpoint",
    "make_synthetic_names",
    "prepare_synthetic",
]
