"""Ambiguous-name specifications, including the paper's Table 1.

An :class:`AmbiguousNameSpec` pins one shared name to a list of per-entity
reference counts; the generator creates one author entity per count and makes
it publish exactly that many papers. ``TABLE1_SPEC`` reproduces the ten names
of Table 1 with the paper's (#authors, #references) exactly; the per-entity
splits are our choice (the paper reports only totals), skewed the way real
ambiguous names are — one or two prolific authors plus a tail.

Entities flagged in ``multi_era`` collaborate with disjoint groups in
different periods (the paper's stated recall failure: 18 references to one
Michael Wagner in Australia were split in two). Entities in ``bridged``
additionally share one collaborator across their eras, which gives the
composite similarity measure a linkage to merge the eras through.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AmbiguousNameSpec:
    """One shared name and how its references distribute over real entities.

    Parameters
    ----------
    name:
        The shared full name.
    ref_counts:
        One entry per real entity: how many references (authorship rows)
        that entity contributes.
    multi_era:
        Indices into ``ref_counts`` of entities whose career has two eras
        with distinct collaborator circles.
    bridged:
        Subset of ``multi_era``: entities whose eras share one bridging
        collaborator (mergeable); multi-era entities *not* in ``bridged``
        have fully disjoint eras (expected to split, like Michael Wagner).
    """

    name: str
    ref_counts: tuple[int, ...]
    multi_era: tuple[int, ...] = field(default=())
    bridged: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.ref_counts:
            raise ValueError(f"{self.name}: need at least one entity")
        if any(count < 1 for count in self.ref_counts):
            raise ValueError(f"{self.name}: reference counts must be positive")
        if not set(self.multi_era) <= set(range(len(self.ref_counts))):
            raise ValueError(f"{self.name}: multi_era indices out of range")
        if not set(self.bridged) <= set(self.multi_era):
            raise ValueError(f"{self.name}: bridged must be a subset of multi_era")

    @property
    def entity_count(self) -> int:
        return len(self.ref_counts)

    @property
    def total_refs(self) -> int:
        return sum(self.ref_counts)


#: Table 1 of the paper: ten real DBLP names, (#authors, #references).
TABLE1_SPEC: list[AmbiguousNameSpec] = [
    AmbiguousNameSpec("Hui Fang", (4, 3, 2)),
    AmbiguousNameSpec("Ajay Gupta", (6, 4, 3, 3)),
    AmbiguousNameSpec("Joseph Hellerstein", (130, 21), multi_era=(0,), bridged=(0,)),
    AmbiguousNameSpec("Rakesh Kumar", (20, 16)),
    AmbiguousNameSpec("Michael Wagner", (18, 5, 3, 2, 1), multi_era=(0,)),
    AmbiguousNameSpec("Bing Liu", (40, 20, 12, 8, 5, 4), multi_era=(0,), bridged=(0,)),
    AmbiguousNameSpec("Jim Smith", (9, 6, 4)),
    AmbiguousNameSpec(
        "Lei Wang", (10, 8, 6, 5, 4, 4, 4, 3, 3, 2, 2, 2, 2), multi_era=(0,), bridged=(0,)
    ),
    AmbiguousNameSpec(
        "Wei Wang",
        (57, 31, 19, 5, 3, 3, 3, 3, 3, 3, 3, 3, 3, 2),
        multi_era=(0, 1),
        bridged=(0, 1),
    ),
    AmbiguousNameSpec("Bin Yu", (20, 10, 6, 5, 3), multi_era=(0,), bridged=(0,)),
]

#: Expected (name -> (#authors, #refs)) for Table 1 checks.
TABLE1_EXPECTED: dict[str, tuple[int, int]] = {
    "Hui Fang": (3, 9),
    "Ajay Gupta": (4, 16),
    "Joseph Hellerstein": (2, 151),
    "Rakesh Kumar": (2, 36),
    "Michael Wagner": (5, 29),
    "Bing Liu": (6, 89),
    "Jim Smith": (3, 19),
    "Lei Wang": (13, 55),
    "Wei Wang": (14, 141),
    "Bin Yu": (5, 44),
}


def spec_by_name(specs: list[AmbiguousNameSpec]) -> dict[str, AmbiguousNameSpec]:
    return {spec.name: spec for spec in specs}
