"""Synthetic bibliographic world generator.

Builds a DBLP-like world whose *linkage structure* carries the signals
DISTINCT exploits on the real DBLP (see DESIGN.md §3):

- research **communities**, each with its own conferences and members;
- per-entity **collaborator circles** with heavy repeat collaboration, so
  references to one entity overlap strongly on the coauthor join path;
- community **hub** authors shared by many circles, so references to
  *different* entities of one name are weakly linked too (the noise that
  causes DISTINCT's occasional mistakes in Fig 5);
- **multi-era** entities that switch collaborator circles mid-career — the
  paper's stated recall failure mode (Michael Wagner) when the eras share no
  bridge, and the motivation for the collective random-walk term when they
  do;
- a long tail of **rare names** that powers the automatic training-set
  construction of §3;
- **ambiguous names** injected exactly per an :class:`AmbiguousNameSpec`
  list (Table 1 by default), with per-entity reference counts hit exactly.

Everything is driven by one ``random.Random(seed)`` — same seed, same world.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.data.ambiguity import AmbiguousNameSpec, TABLE1_SPEC
from repro.data.names import NameSampler
from repro.data.world import AuthorEntity, Conference, Paper, World

_PUBLISHERS = ["ACM", "IEEE", "Springer", "Elsevier", "Morgan Kaufmann"]

_TOPICS = [
    "Databases", "Data Mining", "Machine Learning", "Networks", "Theory",
    "Graphics", "Security", "Systems", "Bioinformatics", "Vision",
    "Robotics", "Compilers", "Architecture", "HCI", "Information Retrieval",
    "Distributed Computing", "Algorithms", "Software Engineering",
]

_INSTITUTIONS = [
    "Univ. of Northfield", "Southgate Tech", "Easton State Univ.",
    "Westmere Institute", "Lakeshore Univ.", "Highland Polytechnic",
    "Riverbend Univ.", "Stonebridge College", "Harborview Univ.",
    "Pinecrest Institute", "Oakdale Univ.", "Summit State",
    "Clearwater Univ.", "Ironwood Tech", "Maplewood Univ.",
    "Granite Peak Univ.", "Silver Lake Institute", "Fairhaven Univ.",
]

_TITLE_WORDS = [
    "efficient", "scalable", "adaptive", "incremental", "parallel",
    "approximate", "robust", "online", "distributed", "probabilistic",
    "mining", "learning", "indexing", "clustering", "ranking", "matching",
    "estimation", "optimization", "analysis", "discovery", "queries",
    "streams", "graphs", "patterns", "models", "networks", "systems",
    "frameworks", "methods", "structures",
]


@dataclass(frozen=True)
class GeneratorConfig:
    """World-size and behaviour knobs. Defaults give a ~10K-authorship world.

    ``scale`` multiplies the three volume knobs (communities stay fixed) —
    the scalability bench grows worlds by sweeping it.
    """

    seed: int = 7
    n_communities: int = 16
    regular_entities_per_community: int = 45
    rare_entities: int = 120
    rare_entity_papers: tuple[int, int] = (4, 8)
    years: tuple[int, int] = (1991, 2006)
    background_papers_per_community_year: int = 10
    conferences_per_community: int = 3
    shared_conferences: int = 4
    circle_size: tuple[int, int] = (4, 9)
    hubs_per_community: int = 3
    p_repeat_collaborator: float = 0.78
    p_anchor_collaborator: float = 0.65
    p_shared_venue: float = 0.06
    p_foreign_venue: float = 0.03
    with_citations: bool = False
    citations_per_paper: tuple[int, int] = (0, 6)
    scale: float = 1.0

    def scaled(self, value: int) -> int:
        return max(1, round(value * self.scale))


def generate_world(
    config: GeneratorConfig | None = None,
    specs: list[AmbiguousNameSpec] | None = None,
) -> World:
    """Generate a world containing the given ambiguous names (Table 1 default)."""
    config = config or GeneratorConfig()
    specs = TABLE1_SPEC if specs is None else specs
    return _WorldBuilder(config, specs).build()


class _WorldBuilder:
    def __init__(self, config: GeneratorConfig, specs: list[AmbiguousNameSpec]) -> None:
        self.config = config
        self.specs = specs
        self.rng = random.Random(config.seed)
        self.names = NameSampler(self.rng)
        self.world = World(ambiguous_names=[spec.name for spec in specs])
        self._taken_names: set[str] = {spec.name for spec in specs}
        # community id -> member entity ids / hub entity ids / conference ids
        self._members: dict[int, list[int]] = {}
        self._hubs: dict[int, list[int]] = {}
        self._confs: dict[int, list[int]] = {}
        self._shared_confs: list[int] = []
        self._productivity: dict[int, float] = {}
        self._circles: dict[int, list[int]] = {}  # regular/rare entity -> circle

    # -- top level ----------------------------------------------------------

    def build(self) -> World:
        self._make_conferences()
        self._make_regular_entities()
        self._make_rare_entities()
        ambiguous = self._make_ambiguous_entities()
        self._make_background_papers()
        self._make_rare_papers()
        self._make_ambiguous_papers(ambiguous)
        if self.config.with_citations:
            self._make_citations()
        return self.world

    # -- structure ----------------------------------------------------------

    def _make_conferences(self) -> None:
        cfg = self.config
        for community in range(cfg.n_communities):
            topic = _TOPICS[community % len(_TOPICS)]
            self._confs[community] = []
            for k in range(cfg.conferences_per_community):
                conf_id = len(self.world.conferences)
                self.world.conferences.append(
                    Conference(
                        conf_id=conf_id,
                        name=f"Intl Conf on {topic} {k + 1}",
                        community=community,
                        publisher=self.rng.choice(_PUBLISHERS),
                    )
                )
                self._confs[community].append(conf_id)
        for k in range(cfg.shared_conferences):
            conf_id = len(self.world.conferences)
            self.world.conferences.append(
                Conference(
                    conf_id=conf_id,
                    name=f"General CS Conference {k + 1}",
                    community=-1,
                    publisher=self.rng.choice(_PUBLISHERS),
                )
            )
            self._shared_confs.append(conf_id)

    def _new_entity(self, name: str, kind: str, communities: tuple[int, ...]) -> int:
        entity_id = len(self.world.entities)
        # One affiliation per era: institutions cluster by community (people
        # in one research community concentrate at a few places), with a
        # deterministic per-entity spread (no RNG draw: the stream, and with
        # it every generated world, must not depend on this cosmetic field).
        institutions = tuple(
            _INSTITUTIONS[(2 * c + entity_id % 2) % len(_INSTITUTIONS)]
            for c in communities
        )
        self.world.entities.append(
            AuthorEntity(
                entity_id=entity_id,
                name=name,
                kind=kind,
                communities=communities,
                institutions=institutions,
            )
        )
        return entity_id

    def _make_regular_entities(self) -> None:
        cfg = self.config
        per_comm = cfg.scaled(cfg.regular_entities_per_community)
        for community in range(cfg.n_communities):
            members: list[int] = []
            for rank in range(per_comm):
                name = self.names.sample_common()
                # Avoid accidentally re-creating an ambiguous or rare name.
                while name.full in self._taken_names:
                    name = self.names.sample_common()
                entity_id = self._new_entity(name.full, "regular", (community,))
                members.append(entity_id)
                self._productivity[entity_id] = 1.0 / (1 + rank) ** 0.4
            self._members[community] = members
            self._hubs[community] = members[: cfg.hubs_per_community]
            for entity_id in members:
                self._circles[entity_id] = self._sample_circle(
                    community, exclude={entity_id}
                )

    def _make_rare_entities(self) -> None:
        cfg = self.config
        for _ in range(cfg.scaled(cfg.rare_entities)):
            name = self.names.sample_rare_unique(self._taken_names)
            community = self.rng.randrange(cfg.n_communities)
            entity_id = self._new_entity(name.full, "rare", (community,))
            self._members[community].append(entity_id)
            self._productivity[entity_id] = 0.3
            self._circles[entity_id] = self._sample_circle(community, exclude={entity_id})

    def _make_ambiguous_entities(self) -> list[tuple[AmbiguousNameSpec, int, list[int]]]:
        """Create ambiguous entities; return (spec, index-in-spec, entity ids)."""
        cfg = self.config
        out: list[tuple[AmbiguousNameSpec, int, list[int]]] = []
        for spec in self.specs:
            entity_ids: list[int] = []
            offset = self.rng.randrange(cfg.n_communities)
            for idx in range(spec.entity_count):
                community = (offset + idx) % cfg.n_communities
                if idx in spec.multi_era:
                    second = (community + cfg.n_communities // 2 + idx) % cfg.n_communities
                    communities: tuple[int, ...] = (community, second)
                else:
                    communities = (community,)
                entity_id = self._new_entity(spec.name, "ambiguous", communities)
                entity_ids.append(entity_id)
            out.append((spec, 0, entity_ids))
        return out

    def _sample_circle(
        self, community: int, exclude: set[int], include_hub: bool = True
    ) -> list[int]:
        cfg = self.config
        members = [
            m
            for m in self._members[community]
            if m not in exclude and self.world.entity(m).kind == "regular"
        ]
        size = min(self.rng.randint(*cfg.circle_size), len(members))
        weights = [self._productivity[m] for m in members]
        circle: list[int] = []
        while len(circle) < size and members:
            pick = self.rng.choices(members, weights=weights)[0]
            position = members.index(pick)
            members.pop(position)
            weights.pop(position)
            circle.append(pick)
        if include_hub:
            hubs = [h for h in self._hubs[community] if h not in exclude]
            if hubs and not set(hubs) & set(circle):
                circle.append(self.rng.choice(hubs))
        return circle

    # -- papers ---------------------------------------------------------------

    def _add_paper(self, year: int, conf_id: int, authors: list[int]) -> int:
        paper_id = len(self.world.papers)
        words = self.rng.sample(_TITLE_WORDS, k=4)
        title = f"{' '.join(words)} #{paper_id}"
        # De-duplicate authors while keeping order (a hub may be drawn twice).
        unique: list[int] = []
        for author in authors:
            if author not in unique:
                unique.append(author)
        self.world.papers.append(
            Paper(
                paper_id=paper_id,
                title=title,
                year=year,
                conf_id=conf_id,
                author_entity_ids=tuple(unique),
            )
        )
        return paper_id

    def _venue_for(self, community: int) -> int:
        cfg = self.config
        roll = self.rng.random()
        if self._shared_confs and roll < cfg.p_shared_venue:
            return self.rng.choice(self._shared_confs)
        if roll < cfg.p_shared_venue + cfg.p_foreign_venue:
            other = self.rng.randrange(cfg.n_communities)
            return self.rng.choice(self._confs[other])
        return self.rng.choice(self._confs[community])

    def _make_background_papers(self) -> None:
        cfg = self.config
        per_year = cfg.scaled(cfg.background_papers_per_community_year)
        year_lo, year_hi = cfg.years
        for community in range(cfg.n_communities):
            regulars = [
                m
                for m in self._members[community]
                if self.world.entity(m).kind == "regular"
            ]
            weights = [self._productivity[m] for m in regulars]
            for year in range(year_lo, year_hi + 1):
                for _ in range(per_year):
                    lead = self.rng.choices(regulars, weights=weights)[0]
                    authors = [lead] + self._pick_coauthors(
                        lead, self._circles[lead], community
                    )
                    self._add_paper(year, self._venue_for(community), authors)

    def _pick_coauthors(
        self, lead: int, circle: list[int], community: int
    ) -> list[int]:
        cfg = self.config
        count = self.rng.choices([1, 2, 3, 4], weights=[30, 40, 20, 10])[0]
        # Core circle members (the front of the list) collaborate far more
        # often — real coauthor distributions are heavily skewed, and this
        # skew is exactly the signal the coauthor join path picks up.
        circle_weights = [1.0 / (1 + rank) ** 0.8 for rank in range(len(circle))]
        picks: list[int] = []
        # The anchor collaborator (advisor / main co-PI) joins most papers;
        # without it, authors with 2-5 papers would often share no coauthor
        # across their own papers and be unresolvable in principle.
        if circle and self.rng.random() < cfg.p_anchor_collaborator:
            picks.append(circle[0])
        for _ in range(count):
            if circle and self.rng.random() < cfg.p_repeat_collaborator:
                picks.append(self.rng.choices(circle, weights=circle_weights)[0])
            else:
                pool = self._members[community]
                picks.append(self.rng.choice(pool))
        return [p for p in picks if p != lead]

    def _make_rare_papers(self) -> None:
        cfg = self.config
        year_lo, year_hi = cfg.years
        for entity in self.world.entities:
            if entity.kind != "rare":
                continue
            community = entity.communities[0]
            n_papers = self.rng.randint(*cfg.rare_entity_papers)
            start = self.rng.randint(year_lo, max(year_lo, year_hi - 6))
            for _ in range(n_papers):
                year = min(year_hi, start + self.rng.randint(0, 6))
                authors = [entity.entity_id] + self._pick_coauthors(
                    entity.entity_id, self._circles[entity.entity_id], community
                )
                self._add_paper(year, self._venue_for(community), authors)

    def _make_ambiguous_papers(
        self, ambiguous: list[tuple[AmbiguousNameSpec, int, list[int]]]
    ) -> None:
        cfg = self.config
        year_lo, year_hi = cfg.years
        for spec, _, entity_ids in ambiguous:
            for idx, entity_id in enumerate(entity_ids):
                entity = self.world.entity(entity_id)
                ref_count = spec.ref_counts[idx]
                eras = self._career_eras(entity, idx in spec.multi_era)
                circles = self._era_circles(entity, idx in spec.bridged)
                for k in range(ref_count):
                    era = 0 if len(eras) == 1 or k < ref_count // 2 else 1
                    community = entity.communities[min(era, len(entity.communities) - 1)]
                    year = self.rng.randint(*eras[era])
                    authors = [entity_id] + self._pick_coauthors(
                        entity_id, circles[era], community
                    )
                    if len(authors) == 1:  # never emit an unresolvable solo paper
                        authors.append(self.rng.choice(circles[era]))
                    self._add_paper(year, self._venue_for(community), authors)

    def _career_eras(
        self, entity: AuthorEntity, multi_era: bool
    ) -> list[tuple[int, int]]:
        year_lo, year_hi = self.config.years
        if not multi_era:
            span = self.rng.randint(4, 8)
            start = self.rng.randint(year_lo, max(year_lo, year_hi - span))
            return [(start, min(year_hi, start + span))]
        mid = (year_lo + year_hi) // 2
        return [(year_lo, mid), (mid + 1, year_hi)]

    def _era_circles(self, entity: AuthorEntity, bridged: bool) -> list[list[int]]:
        first = self._sample_circle(entity.communities[0], exclude={entity.entity_id})
        if len(entity.communities) == 1:
            return [first]
        second = self._sample_circle(
            entity.communities[1], exclude={entity.entity_id} | set(first)
        )
        if bridged and first:
            # The bridge is a *core* collaborator of both eras (front of the
            # circle = heavily weighted in coauthor picks): it is the linkage
            # the collective random-walk term needs to merge the two eras.
            second.insert(0, first[0])
        return [first, second]

    # -- citations (optional) --------------------------------------------------

    def _make_citations(self) -> None:
        cfg = self.config
        by_community: dict[int, list[Paper]] = {}
        for paper in self.world.papers:
            conf = self.world.conferences[paper.conf_id]
            by_community.setdefault(conf.community, []).append(paper)
        for paper in self.world.papers:
            conf = self.world.conferences[paper.conf_id]
            pool = [
                p
                for p in by_community.get(conf.community, [])
                if p.year < paper.year
            ]
            if not pool:
                continue
            count = self.rng.randint(*cfg.citations_per_paper)
            cited = {self.rng.choice(pool).paper_id for _ in range(count)}
            paper.citations = tuple(sorted(cited))
