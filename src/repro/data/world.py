"""The synthetic world model and its conversion to a relational database.

A :class:`World` is the generator's output: author *entities* (real people),
conferences, and papers with entity-level author lists. Converting it to a
:class:`~repro.reldb.Database` collapses entities to *names* exactly the way
DBLP does — the ``Authors`` table has one row per distinct name, and every
authorship row of an ambiguous name points at the same ``Authors`` row. The
conversion also emits the :class:`GroundTruth` (publish row -> entity id)
that evaluation scores against; on real DBLP this is the hand-labeled data
of §5, here it is exact by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.dblp_schema import (
    AUTHORS,
    CITES,
    CONFERENCES,
    PROCEEDINGS,
    PUBLICATIONS,
    PUBLISH,
    new_dblp_database,
    prepare_dblp_database,
)
from repro.reldb.database import Database


@dataclass
class AuthorEntity:
    """One real person. ``kind`` is 'regular', 'rare', or 'ambiguous'.

    ``institutions`` holds one affiliation per career era (the paper's
    Fig 5 labels each author box with the current affiliation).
    """

    entity_id: int
    name: str
    kind: str
    communities: tuple[int, ...] = ()
    institutions: tuple[str, ...] = ()


@dataclass
class Conference:
    conf_id: int
    name: str
    community: int
    publisher: str


@dataclass
class Paper:
    paper_id: int
    title: str
    year: int
    conf_id: int
    author_entity_ids: tuple[int, ...]
    citations: tuple[int, ...] = ()  # cited paper ids (optional)


@dataclass
class World:
    """Everything the generator produced, before relational flattening."""

    entities: list[AuthorEntity] = field(default_factory=list)
    conferences: list[Conference] = field(default_factory=list)
    papers: list[Paper] = field(default_factory=list)
    ambiguous_names: list[str] = field(default_factory=list)

    def entity(self, entity_id: int) -> AuthorEntity:
        return self.entities[entity_id]

    def entities_named(self, name: str) -> list[AuthorEntity]:
        return [e for e in self.entities if e.name == name]

    def papers_of(self, entity_id: int) -> list[Paper]:
        return [p for p in self.papers if entity_id in p.author_entity_ids]

    def stats(self) -> dict[str, int]:
        return {
            "entities": len(self.entities),
            "distinct_names": len({e.name for e in self.entities}),
            "conferences": len(self.conferences),
            "papers": len(self.papers),
            "authorships": sum(len(p.author_entity_ids) for p in self.papers),
        }


@dataclass
class GroundTruth:
    """Entity labels for every authorship row, plus handy name indexes."""

    #: publish row id -> author entity id
    entity_of_row: dict[int, int]
    #: full name -> Authors row id
    author_row_of_name: dict[str, int]
    #: full name -> publish row ids carrying that name
    rows_of_name: dict[str, list[int]]
    #: entity id -> display label (affiliation), best effort
    entity_labels: dict[int, str] = field(default_factory=dict)

    def clusters_for(self, name: str) -> dict[int, set[int]]:
        """Gold clustering of one name: entity id -> set of publish rows."""
        clusters: dict[int, set[int]] = {}
        for row in self.rows_of_name.get(name, []):
            clusters.setdefault(self.entity_of_row[row], set()).add(row)
        return clusters

    def label_list(self, rows: list[int]) -> list[int]:
        """Entity label per row, aligned with ``rows``."""
        return [self.entity_of_row[row] for row in rows]


def world_to_database(
    world: World, with_citations: bool = False, prepared: bool = True
) -> tuple[Database, GroundTruth]:
    """Flatten a :class:`World` into the DBLP schema.

    Entities collapse to names; proceedings are created per (conference,
    year) pair actually used. Returns the database (virtualized when
    ``prepared``) and the ground truth.
    """
    db = new_dblp_database(with_citations=with_citations)

    author_row_of_name: dict[str, int] = {}
    next_author_key = 0
    for entity in world.entities:
        if entity.name in author_row_of_name:
            continue
        db.insert(AUTHORS, (next_author_key, entity.name))
        author_row_of_name[entity.name] = next_author_key
        next_author_key += 1

    for conf in world.conferences:
        db.insert(CONFERENCES, (conf.conf_id, conf.name, conf.publisher))

    proc_key_of: dict[tuple[int, int], int] = {}
    locations = _LOCATIONS
    for paper in world.papers:
        pair = (paper.conf_id, paper.year)
        if pair not in proc_key_of:
            proc_key = len(proc_key_of)
            location = locations[(paper.conf_id * 7 + paper.year) % len(locations)]
            db.insert(PROCEEDINGS, (proc_key, paper.conf_id, paper.year, location))
            proc_key_of[pair] = proc_key

    entity_of_row: dict[int, int] = {}
    rows_of_name: dict[str, list[int]] = {}
    for paper in world.papers:
        db.insert(
            PUBLICATIONS,
            (paper.paper_id, paper.title, proc_key_of[(paper.conf_id, paper.year)]),
        )
        for entity_id in paper.author_entity_ids:
            entity = world.entity(entity_id)
            author_key = author_row_of_name[entity.name]
            row = db.insert(PUBLISH, (paper.paper_id, author_key))
            entity_of_row[row] = entity_id
            rows_of_name.setdefault(entity.name, []).append(row)

    if with_citations:
        for paper in world.papers:
            for cited in paper.citations:
                db.insert(CITES, (paper.paper_id, cited))

    db.check_integrity()
    if prepared:
        prepare_dblp_database(db)
    truth = GroundTruth(
        entity_of_row=entity_of_row,
        author_row_of_name=author_row_of_name,
        rows_of_name=rows_of_name,
        entity_labels={
            e.entity_id: " / ".join(e.institutions)
            for e in world.entities
            if e.institutions
        },
    )
    return db, truth


def save_ground_truth(truth: GroundTruth, path) -> None:
    """Serialize a :class:`GroundTruth` to JSON (keys stored as strings)."""
    import json
    from pathlib import Path

    payload = {
        "entity_of_row": {str(k): v for k, v in truth.entity_of_row.items()},
        "author_row_of_name": truth.author_row_of_name,
        "rows_of_name": truth.rows_of_name,
        "entity_labels": {str(k): v for k, v in truth.entity_labels.items()},
    }
    Path(path).write_text(json.dumps(payload))


def load_ground_truth(path) -> GroundTruth:
    """Inverse of :func:`save_ground_truth`."""
    import json
    from pathlib import Path

    payload = json.loads(Path(path).read_text())
    return GroundTruth(
        entity_of_row={int(k): v for k, v in payload["entity_of_row"].items()},
        author_row_of_name=dict(payload["author_row_of_name"]),
        rows_of_name={k: list(v) for k, v in payload["rows_of_name"].items()},
        entity_labels={
            int(k): v for k, v in payload.get("entity_labels", {}).items()
        },
    )


_LOCATIONS = [
    "San Jose", "Athens", "Hong Kong", "Seattle", "Paris", "Tokyo", "Sydney",
    "Berlin", "Toronto", "Madrid", "Rome", "Cairo", "Mumbai", "Santiago",
    "Vienna", "Singapore", "Boston", "Edinburgh", "Beijing", "Vancouver",
]
