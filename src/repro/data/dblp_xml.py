"""Parser for DBLP-format XML into the Fig-2 schema.

The paper evaluates on the real DBLP dump. This environment has no network
access, so the benchmarks run on the synthetic world — but the pipeline is
unchanged on real data: point :func:`load_dblp_xml` at a ``dblp.xml`` (or
any file/stream in its format) and it produces the same
:class:`~repro.reldb.Database` the rest of the library consumes.

Recognized record elements: ``inproceedings`` (used by the paper) and,
optionally, ``article`` (journal treated as a conference-like venue).
Relevant child elements: ``author`` (repeated), ``title``, ``booktitle`` /
``journal`` (venue), ``year``, ``publisher``. Proceedings are synthesized
per (venue, year). Entity resolution ground truth obviously does not exist
in the dump; the loader also supports the paper's preprocessing step of
dropping authors with fewer than ``min_papers`` papers.

Real dumps are messy (see the author-disambiguation survey literature):
records with a non-integer ``year``, no venue, or only empty author names
are *skipped and counted* (``dblp.records_skipped`` in the ``obs``
registry) rather than killing the stream; whitespace-only author names are
dropped from otherwise valid records (``dblp.authors_dropped``).
Unexpected per-record failures go through the ``on_error`` policy
(:class:`~repro.resilience.Policy`), so one poisoned record can be
skipped or collected instead of aborting hours of ingestion.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from collections import Counter
from dataclasses import dataclass
from io import StringIO
from pathlib import Path

from repro.data.dblp_schema import (
    AUTHORS,
    CONFERENCES,
    PROCEEDINGS,
    PUBLICATIONS,
    PUBLISH,
    new_dblp_database,
    prepare_dblp_database,
)
from repro.obs import counter, get_logger
from repro.reldb.database import Database
from repro.resilience import ErrorCollector, Policy, fault_check, guard

log = get_logger("data.dblp_xml")

_RECORDS_PARSED = counter("dblp.records_parsed")
_RECORDS_SKIPPED = counter("dblp.records_skipped")
_AUTHORS_DROPPED = counter("dblp.authors_dropped")


@dataclass
class DblpRecord:
    """One parsed publication record."""

    key: str
    title: str
    venue: str
    year: int
    authors: list[str]
    publisher: str | None = None


def iter_dblp_records(
    source: str | Path,
    record_tags: tuple[str, ...] = ("inproceedings",),
    on_error: Policy | str = Policy.SKIP,
    collector: ErrorCollector | None = None,
):
    """Stream :class:`DblpRecord` objects from a DBLP XML file or string.

    Uses ``iterparse`` with element eviction, so arbitrarily large dumps
    stream in constant memory. Structurally unusable records — no valid
    (non-empty) author names, no venue, or a non-integer year — cannot
    participate in any join path we use; they are skipped and counted
    under ``dblp.records_skipped``. Unexpected per-record exceptions
    (including injected faults at the ``ingest.record`` site) are handled
    per ``on_error``; note that XML *syntax* errors are fatal to the
    stream regardless, because the underlying parser cannot recover.
    """
    if isinstance(source, Path) or (
        isinstance(source, str) and not source.lstrip().startswith("<")
    ):
        stream = open(source, "rb")
        close = True
    else:
        stream = StringIO(source)
        close = False
    try:
        context = ET.iterparse(stream, events=("end",))
        for _, elem in context:
            if elem.tag not in record_tags:
                continue
            key = elem.get("key", "")
            record = None
            with guard("ingest.record", key, on_error, collector):
                fault_check("ingest.record", key or None)
                record = _build_record(elem, key)
            if record is not None:
                _RECORDS_PARSED.inc()
                yield record
            elem.clear()
    finally:
        if close:
            stream.close()


def _build_record(elem, key: str) -> DblpRecord | None:
    """One element -> record, or ``None`` (counted) if unusable."""
    raw_authors = [(a.text or "") for a in elem.findall("author")]
    authors = [a.strip() for a in raw_authors if a.strip()]
    if len(authors) < len(raw_authors):
        _AUTHORS_DROPPED.inc(len(raw_authors) - len(authors))
    title = _first_text(elem, "title")
    venue = _first_text(elem, "booktitle") or _first_text(elem, "journal")
    year_text = _first_text(elem, "year")
    publisher = _first_text(elem, "publisher") or None
    try:
        year = int(year_text)
    except ValueError:
        year = None
    if not authors or not venue or year is None:
        _RECORDS_SKIPPED.inc()
        log.debug(
            "skipping record %r: authors=%d venue=%r year=%r",
            key, len(authors), venue, year_text,
        )
        return None
    return DblpRecord(
        key=key,
        title=title or "",
        venue=venue,
        year=year,
        authors=authors,
        publisher=publisher,
    )


def _first_text(elem, tag: str) -> str:
    child = elem.find(tag)
    if child is None:
        return ""
    return "".join(child.itertext()).strip()


def load_dblp_xml(
    source: str | Path,
    min_papers: int = 1,
    record_tags: tuple[str, ...] = ("inproceedings",),
    prepared: bool = True,
    on_error: Policy | str = Policy.SKIP,
    collector: ErrorCollector | None = None,
) -> Database:
    """Load DBLP XML into the Fig-2 schema.

    ``min_papers`` reproduces the paper's preprocessing ("authors with no
    more than 2 papers are removed" corresponds to ``min_papers=3``):
    authorship rows of authors below the cutoff are dropped (papers stay).
    ``on_error``/``collector`` control what happens to records that fail
    unexpectedly mid-parse (see :func:`iter_dblp_records`).
    """
    records = list(iter_dblp_records(source, record_tags, on_error, collector))
    paper_counts: Counter[str] = Counter()
    for record in records:
        for author in record.authors:
            paper_counts[author] += 1

    db = new_dblp_database()
    author_keys: dict[str, int] = {}
    conf_keys: dict[str, int] = {}
    proc_keys: dict[tuple[str, int], int] = {}

    for paper_key, record in enumerate(records):
        if record.venue not in conf_keys:
            conf_keys[record.venue] = len(conf_keys)
            db.insert(
                CONFERENCES, (conf_keys[record.venue], record.venue, record.publisher)
            )
        proc_pair = (record.venue, record.year)
        if proc_pair not in proc_keys:
            proc_keys[proc_pair] = len(proc_keys)
            db.insert(
                PROCEEDINGS,
                (proc_keys[proc_pair], conf_keys[record.venue], record.year, None),
            )
        db.insert(PUBLICATIONS, (paper_key, record.title, proc_keys[proc_pair]))
        for author in record.authors:
            if paper_counts[author] < min_papers:
                continue
            if author not in author_keys:
                author_keys[author] = len(author_keys)
                db.insert(AUTHORS, (author_keys[author], author))
            db.insert(PUBLISH, (paper_key, author_keys[author]))

    db.check_integrity()
    if prepared:
        prepare_dblp_database(db)
    return db
