"""Parser for DBLP-format XML into the Fig-2 schema.

The paper evaluates on the real DBLP dump. This environment has no network
access, so the benchmarks run on the synthetic world — but the pipeline is
unchanged on real data: point :func:`load_dblp_xml` at a ``dblp.xml`` (or
any file/stream in its format) and it produces the same
:class:`~repro.reldb.Database` the rest of the library consumes.

Recognized record elements: ``inproceedings`` (used by the paper) and,
optionally, ``article`` (journal treated as a conference-like venue).
Relevant child elements: ``author`` (repeated), ``title``, ``booktitle`` /
``journal`` (venue), ``year``, ``publisher``. Proceedings are synthesized
per (venue, year). Entity resolution ground truth obviously does not exist
in the dump; the loader also supports the paper's preprocessing step of
dropping authors with fewer than ``min_papers`` papers.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from collections import Counter
from dataclasses import dataclass
from io import StringIO
from pathlib import Path

from repro.data.dblp_schema import (
    AUTHORS,
    CONFERENCES,
    PROCEEDINGS,
    PUBLICATIONS,
    PUBLISH,
    new_dblp_database,
    prepare_dblp_database,
)
from repro.reldb.database import Database


@dataclass
class DblpRecord:
    """One parsed publication record."""

    key: str
    title: str
    venue: str
    year: int
    authors: list[str]
    publisher: str | None = None


def iter_dblp_records(
    source: str | Path, record_tags: tuple[str, ...] = ("inproceedings",)
):
    """Stream :class:`DblpRecord` objects from a DBLP XML file or string.

    Uses ``iterparse`` with element eviction, so arbitrarily large dumps
    stream in constant memory. Records without authors, venue, or year are
    skipped (they cannot participate in any join path we use).
    """
    if isinstance(source, Path) or (
        isinstance(source, str) and not source.lstrip().startswith("<")
    ):
        stream = open(source, "rb")
        close = True
    else:
        stream = StringIO(source)
        close = False
    try:
        context = ET.iterparse(stream, events=("end",))
        for _, elem in context:
            if elem.tag not in record_tags:
                continue
            authors = [a.text.strip() for a in elem.findall("author") if a.text]
            title = _first_text(elem, "title")
            venue = _first_text(elem, "booktitle") or _first_text(elem, "journal")
            year_text = _first_text(elem, "year")
            publisher = _first_text(elem, "publisher") or None
            if authors and venue and year_text and year_text.isdigit():
                yield DblpRecord(
                    key=elem.get("key", ""),
                    title=title or "",
                    venue=venue,
                    year=int(year_text),
                    authors=authors,
                    publisher=publisher,
                )
            elem.clear()
    finally:
        if close:
            stream.close()


def _first_text(elem, tag: str) -> str:
    child = elem.find(tag)
    if child is None:
        return ""
    return "".join(child.itertext()).strip()


def load_dblp_xml(
    source: str | Path,
    min_papers: int = 1,
    record_tags: tuple[str, ...] = ("inproceedings",),
    prepared: bool = True,
) -> Database:
    """Load DBLP XML into the Fig-2 schema.

    ``min_papers`` reproduces the paper's preprocessing ("authors with no
    more than 2 papers are removed" corresponds to ``min_papers=3``):
    authorship rows of authors below the cutoff are dropped (papers stay).
    """
    records = list(iter_dblp_records(source, record_tags))
    paper_counts: Counter[str] = Counter()
    for record in records:
        for author in record.authors:
            paper_counts[author] += 1

    db = new_dblp_database()
    author_keys: dict[str, int] = {}
    conf_keys: dict[str, int] = {}
    proc_keys: dict[tuple[str, int], int] = {}

    for paper_key, record in enumerate(records):
        if record.venue not in conf_keys:
            conf_keys[record.venue] = len(conf_keys)
            db.insert(
                CONFERENCES, (conf_keys[record.venue], record.venue, record.publisher)
            )
        proc_pair = (record.venue, record.year)
        if proc_pair not in proc_keys:
            proc_keys[proc_pair] = len(proc_keys)
            db.insert(
                PROCEEDINGS,
                (proc_keys[proc_pair], conf_keys[record.venue], record.year, None),
            )
        db.insert(PUBLICATIONS, (paper_key, record.title, proc_keys[proc_pair]))
        for author in record.authors:
            if paper_counts[author] < min_papers:
                continue
            if author not in author_keys:
                author_keys[author] = len(author_keys)
                db.insert(AUTHORS, (author_keys[author], author))
            db.insert(PUBLISH, (paper_key, author_keys[author]))

    db.check_integrity()
    if prepared:
        prepare_dblp_database(db)
    return db
