"""Datasets: schemas, synthetic world generation, and parsers.

The paper evaluates on DBLP; with no network access this reproduction ships
a synthetic bibliographic world generator whose linkage structure is
calibrated to DBLP (see DESIGN.md §3), a real-DBLP XML parser for use when a
dump is available offline, and a second music-store domain demonstrating
that DISTINCT is schema-generic.
"""

from repro.data.dblp_schema import (
    AUTHORS,
    CONFERENCES,
    PROCEEDINGS,
    PUBLICATIONS,
    PUBLISH,
    dblp_schema,
    new_dblp_database,
    prepare_dblp_database,
)
from repro.data.ambiguity import AmbiguousNameSpec, TABLE1_SPEC
from repro.data.generator import GeneratorConfig, generate_world
from repro.data.world import World

__all__ = [
    "AUTHORS",
    "CONFERENCES",
    "PROCEEDINGS",
    "PUBLICATIONS",
    "PUBLISH",
    "dblp_schema",
    "new_dblp_database",
    "prepare_dblp_database",
    "AmbiguousNameSpec",
    "TABLE1_SPEC",
    "GeneratorConfig",
    "generate_world",
    "World",
]
