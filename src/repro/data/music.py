"""A second domain: a music store with identically named artists.

The paper's introduction motivates object distinction with allmusic.com
(72 songs and 3 albums named "Forgotten"). This module builds a music-store
database so the examples and tests can demonstrate that DISTINCT is
schema-generic — nothing in the pipeline is DBLP-specific; only the
:class:`~repro.config.DistinctConfig` binding changes.

Schema::

    Artists(artist_key K, name T)
    Credits(track_key FK, artist_key FK)        # the reference relation
    Tracks(track_key K, title T, album_key FK)
    Albums(album_key K, title T, label V, year V, genre V)

Different real artists sharing a stage name are distinguished through their
linkage structure: which albums their tracks appear on, which labels release
them, which genres they work in, and who they are co-credited with
(featuring / duet credits).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.config import DistinctConfig
from repro.data.names import RARE_GIVEN, RARE_SURNAMES
from repro.data.world import GroundTruth
from repro.reldb.database import Database
from repro.reldb.schema import Attribute, ForeignKey, RelationSchema, Schema
from repro.reldb.virtual import virtualize_all

ARTISTS = "Artists"
CREDITS = "Credits"
TRACKS = "Tracks"
ALBUMS = "Albums"

_GENRES = ["rock", "jazz", "electronic", "hip hop", "folk", "classical"]
_LABELS = [
    "Sub Pola", "Blue Notation", "Warped Records", "Fourth Dial", "Motown East",
    "Daft Trax", "Harvest Lane", "Night Owl", "Silver Spiral", "Red Letter",
]
_TRACK_WORDS = [
    "forgotten", "midnight", "echoes", "river", "static", "neon", "orbit",
    "glass", "ember", "drift", "hollow", "signal", "velvet", "thunder",
    "mirror", "shadow", "harbor", "wires", "bloom", "fracture",
]


def music_schema() -> Schema:
    schema = Schema()
    schema.add_relation(
        RelationSchema(
            ARTISTS,
            [Attribute("artist_key", kind="key"), Attribute("name", kind="text")],
        )
    )
    schema.add_relation(
        RelationSchema(
            CREDITS,
            [Attribute("track_key", kind="fk"), Attribute("artist_key", kind="fk")],
        )
    )
    schema.add_relation(
        RelationSchema(
            TRACKS,
            [
                Attribute("track_key", kind="key"),
                Attribute("title", kind="text"),
                Attribute("album_key", kind="fk"),
            ],
        )
    )
    schema.add_relation(
        RelationSchema(
            ALBUMS,
            [
                Attribute("album_key", kind="key"),
                Attribute("title", kind="text"),
                Attribute("label", kind="value"),
                Attribute("year", kind="value"),
                Attribute("genre", kind="value"),
            ],
        )
    )
    schema.add_foreign_key(ForeignKey(CREDITS, "artist_key", ARTISTS, "artist_key"))
    schema.add_foreign_key(ForeignKey(CREDITS, "track_key", TRACKS, "track_key"))
    schema.add_foreign_key(ForeignKey(TRACKS, "album_key", ALBUMS, "album_key"))
    return schema


def music_distinct_config(**overrides) -> DistinctConfig:
    """A :class:`DistinctConfig` bound to the music schema.

    Artist stage names are single tokens as often as not, so the rare-name
    heuristic keys on full-name token counts exactly as in DBLP.
    """
    defaults = dict(
        reference_relation=CREDITS,
        object_relation=ARTISTS,
        object_key="artist_key",
        name_attribute="name",
        n_positive=200,
        n_negative=200,
        svm_C=10.0,
        min_sim=0.006,
    )
    defaults.update(overrides)
    return DistinctConfig(**defaults)


@dataclass(frozen=True)
class MusicConfig:
    """Size knobs for the synthetic music store."""

    seed: int = 21
    n_scenes: int = 6  # genre scenes play the role of research communities
    artists_per_scene: int = 30
    rare_artists: int = 50
    albums_per_artist: tuple[int, int] = (1, 3)
    tracks_per_album: tuple[int, int] = (6, 10)
    years: tuple[int, int] = (1985, 2006)
    p_featuring: float = 0.35
    ambiguous_artists: int = 3  # entities sharing the name below
    ambiguous_name: str = "The Forgotten"
    ambiguous_albums_each: int = 2


def generate_music_database(
    config: MusicConfig | None = None,
) -> tuple[Database, GroundTruth]:
    """Build the music store and its ground truth.

    Returns a prepared (virtualized) database plus a
    :class:`~repro.data.world.GroundTruth` whose rows refer to ``Credits``.
    """
    config = config or MusicConfig()
    rng = random.Random(config.seed)
    db = Database(music_schema())

    # -- artists ------------------------------------------------------------
    entity_names: list[str] = []  # entity id -> name
    entity_scene: list[int] = []
    name_rows: dict[str, int] = {}

    def add_entity(name: str, scene: int) -> int:
        entity_names.append(name)
        entity_scene.append(scene)
        if name not in name_rows:
            key = len(name_rows)
            db.insert(ARTISTS, (key, name))
            name_rows[name] = key
        return len(entity_names) - 1

    scene_members: dict[int, list[int]] = {s: [] for s in range(config.n_scenes)}
    for scene in range(config.n_scenes):
        for i in range(config.artists_per_scene):
            name = f"{rng.choice(RARE_GIVEN)} {rng.choice(RARE_SURNAMES)}"
            scene_members[scene].append(add_entity(name, scene))
    for _ in range(config.rare_artists):
        scene = rng.randrange(config.n_scenes)
        name = f"{rng.choice(RARE_GIVEN)} {rng.choice(RARE_SURNAMES)} {rng.randrange(10)}"
        scene_members[scene].append(add_entity(name, scene))

    ambiguous_entities = []
    for idx in range(config.ambiguous_artists):
        scene = idx % config.n_scenes
        entity = add_entity(config.ambiguous_name, scene)
        scene_members[scene].append(entity)
        ambiguous_entities.append(entity)

    # -- albums, tracks, credits ------------------------------------------------
    entity_of_row: dict[int, int] = {}
    rows_of_name: dict[str, list[int]] = {}
    next_album = 0
    next_track = 0

    def add_album(lead: int, scene: int) -> None:
        nonlocal next_album, next_track
        label = _LABELS[(scene * 2 + rng.randrange(2)) % len(_LABELS)]
        genre = _GENRES[scene % len(_GENRES)]
        year = rng.randint(*config.years)
        title = f"{rng.choice(_TRACK_WORDS)} {rng.choice(_TRACK_WORDS)} LP{next_album}"
        db.insert(ALBUMS, (next_album, title.title(), label, year, genre))
        for _ in range(rng.randint(*config.tracks_per_album)):
            title = f"{rng.choice(_TRACK_WORDS)} {next_track}"
            db.insert(TRACKS, (next_track, title.title(), next_album))
            credited = [lead]
            if rng.random() < config.p_featuring:
                featured = rng.choice(scene_members[scene])
                if featured != lead:
                    credited.append(featured)
            for entity in credited:
                row = db.insert(
                    CREDITS, (next_track, name_rows[entity_names[entity]])
                )
                entity_of_row[row] = entity
                rows_of_name.setdefault(entity_names[entity], []).append(row)
            next_track += 1
        next_album += 1

    for scene, members in scene_members.items():
        for entity in members:
            if entity in ambiguous_entities:
                continue
            for _ in range(rng.randint(*config.albums_per_artist)):
                add_album(entity, scene)
    for entity in ambiguous_entities:
        for _ in range(config.ambiguous_albums_each):
            add_album(entity, entity_scene[entity])

    db.check_integrity()
    virtualize_all(db)
    truth = GroundTruth(
        entity_of_row=entity_of_row,
        author_row_of_name=dict(name_rows),
        rows_of_name=rows_of_name,
    )
    return db, truth
