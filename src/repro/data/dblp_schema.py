"""The DBLP schema of Fig 2, as a :class:`repro.reldb.Schema`.

Relations (attribute kinds in parentheses)::

    Authors(author_key K, name T)
    Publish(paper_key FK, author_key FK)            # the reference relation
    Publications(paper_key K, title T, proc_key FK)
    Proceedings(proc_key K, conf_key FK, year V, location V)
    Conferences(conf_key K, name T, publisher V)

``Authors.name`` is deliberately ``text`` (never virtualized): the ambiguous
name itself must not become a linkage, or every pair of same-name references
would trivially overlap. Titles are free text with no linkage semantics.

An optional ``Cites(citing FK, cited FK)`` relation models the citation
linkage the paper mentions in §1 (Fig 2's schema omits it); it is off by
default and studied as an ablation.
"""

from __future__ import annotations

from repro.reldb.database import Database
from repro.reldb.schema import Attribute, ForeignKey, RelationSchema, Schema
from repro.reldb.virtual import virtualize_all

AUTHORS = "Authors"
PUBLISH = "Publish"
PUBLICATIONS = "Publications"
PROCEEDINGS = "Proceedings"
CONFERENCES = "Conferences"
CITES = "Cites"

#: (relation, attribute) pairs never virtualized on the DBLP schema.
DEFAULT_VIRTUALIZE_SKIP: set[tuple[str, str]] = set()


def dblp_schema(with_citations: bool = False) -> Schema:
    """Build the Fig-2 DBLP schema (optionally with a ``Cites`` relation)."""
    schema = Schema()
    schema.add_relation(
        RelationSchema(
            AUTHORS,
            [Attribute("author_key", kind="key"), Attribute("name", kind="text")],
        )
    )
    schema.add_relation(
        RelationSchema(
            PUBLISH,
            [Attribute("paper_key", kind="fk"), Attribute("author_key", kind="fk")],
        )
    )
    schema.add_relation(
        RelationSchema(
            PUBLICATIONS,
            [
                Attribute("paper_key", kind="key"),
                Attribute("title", kind="text"),
                Attribute("proc_key", kind="fk"),
            ],
        )
    )
    schema.add_relation(
        RelationSchema(
            PROCEEDINGS,
            [
                Attribute("proc_key", kind="key"),
                Attribute("conf_key", kind="fk"),
                Attribute("year", kind="value"),
                Attribute("location", kind="value"),
            ],
        )
    )
    schema.add_relation(
        RelationSchema(
            CONFERENCES,
            [
                Attribute("conf_key", kind="key"),
                Attribute("name", kind="text"),
                Attribute("publisher", kind="value"),
            ],
        )
    )
    schema.add_foreign_key(ForeignKey(PUBLISH, "author_key", AUTHORS, "author_key"))
    schema.add_foreign_key(ForeignKey(PUBLISH, "paper_key", PUBLICATIONS, "paper_key"))
    schema.add_foreign_key(
        ForeignKey(PUBLICATIONS, "proc_key", PROCEEDINGS, "proc_key")
    )
    schema.add_foreign_key(ForeignKey(PROCEEDINGS, "conf_key", CONFERENCES, "conf_key"))
    if with_citations:
        schema.add_relation(
            RelationSchema(
                CITES,
                [Attribute("citing", kind="fk"), Attribute("cited", kind="fk")],
            )
        )
        schema.add_foreign_key(ForeignKey(CITES, "citing", PUBLICATIONS, "paper_key"))
        schema.add_foreign_key(ForeignKey(CITES, "cited", PUBLICATIONS, "paper_key"))
    return schema


def new_dblp_database(with_citations: bool = False) -> Database:
    """An empty database over the DBLP schema."""
    return Database(dblp_schema(with_citations=with_citations))


def prepare_dblp_database(db: Database) -> Database:
    """Virtualize the value attributes (year, location, publisher) of a loaded DB.

    Call once after all rows are inserted and before path enumeration; returns
    the same database for chaining.
    """
    virtualize_all(db, skip=DEFAULT_VIRTUALIZE_SKIP)
    return db
