"""Base/delta splits of a synthetic world, for delta-ingest testing.

:func:`split_world` carves the last ``n_delta_papers`` papers of a
:class:`~repro.data.world.World` into a :class:`~repro.reldb.Delta` and
builds the database for the remaining prefix, such that

    ``apply_delta(base_db, delta)`` == ``world_to_database(world)``

byte-for-byte: same row ids per relation, same virtual-relation rows in
the same first-seen order. This is the substrate both the delta-ingest
property tests and ``benchmarks/bench_ingest.py`` stand on — the cold
refit and the incremental path literally see the same database.

The guarantee holds because :func:`~repro.data.world.world_to_database`
inserts Authors and Conferences from the entity/conference lists (not the
papers), and everything paper-driven (Proceedings first-use, Publications,
Publish, Cites) in paper order — so the suffix papers' rows are exactly
the suffix of each table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data.dblp_schema import CITES, PROCEEDINGS, PUBLICATIONS, PUBLISH
from repro.data.world import (
    GroundTruth,
    Paper,
    World,
    _LOCATIONS,
    world_to_database,
)
from repro.reldb.database import Database
from repro.reldb.delta import Delta

__all__ = ["WorldSplit", "grow_world", "split_world"]


def grow_world(
    world: World,
    n_papers: int,
    seed: int = 0,
    author_pool: list[int] | None = None,
) -> World:
    """A copy of ``world`` with ``n_papers`` extra papers appended.

    The new papers reuse (conference, year) pairs the first author has
    already published in, so ``split_world(grown, n_papers)`` yields a
    delta with **no new Proceedings rows** — and therefore no
    perturbation of the proceedings/year/location hub fanouts that
    couple otherwise-distant references. Its blast radius stays local to
    the chosen authors' neighborhoods, which is what both the localized
    property-test cases and the benchmark's "crawl increment" scenario
    need (a suffix split of a raw generated world instead tends to mint
    new proceedings and dirty nearly every reference).

    ``author_pool`` restricts who writes the new papers (entity ids;
    default: every entity that already has a paper). Papers get 1–3
    authors drawn from the pool, deterministic in ``seed``.
    """
    if n_papers < 0:
        raise ValueError(f"n_papers must be >= 0, got {n_papers}")
    rng = random.Random(seed)
    papers_of: dict[int, list[Paper]] = {}
    for paper in world.papers:
        for entity_id in paper.author_entity_ids:
            papers_of.setdefault(entity_id, []).append(paper)
    pool = sorted(papers_of) if author_pool is None else list(author_pool)
    pool = [e for e in pool if e in papers_of]
    if n_papers and not pool:
        raise ValueError("author_pool has no entity with an existing paper")

    next_id = max((p.paper_id for p in world.papers), default=-1) + 1
    grown = list(world.papers)
    for i in range(n_papers):
        first = rng.choice(pool)
        n_authors = min(rng.randint(1, 3), len(pool))
        coauthors = [e for e in pool if e != first]
        rng.shuffle(coauthors)
        authors = (first, *coauthors[: n_authors - 1])
        template = rng.choice(papers_of[first])
        grown.append(
            Paper(
                paper_id=next_id + i,
                title=f"Delta Study {next_id + i}",
                year=template.year,
                conf_id=template.conf_id,
                author_entity_ids=authors,
            )
        )
    return World(
        entities=world.entities,
        conferences=world.conferences,
        papers=grown,
        ambiguous_names=world.ambiguous_names,
    )


@dataclass
class WorldSplit:
    """A world carved into a base database plus one delta batch."""

    base: Database
    delta: Delta
    truth: GroundTruth
    n_base_papers: int
    n_delta_papers: int


def split_world(
    world: World,
    n_delta_papers: int,
    with_citations: bool = False,
    prepared: bool = True,
) -> WorldSplit:
    """Split ``world`` into (base database, delta of the last papers).

    ``truth`` covers the *combined* database (publish row ids match the
    post-delta / cold-build numbering). Raises ``ValueError`` when a base
    paper cites a delta paper — such a world cannot be split at this
    point without breaking referential integrity of the base.
    """
    if not 0 <= n_delta_papers <= len(world.papers):
        raise ValueError(
            f"n_delta_papers must be in [0, {len(world.papers)}], "
            f"got {n_delta_papers}"
        )
    n_base = len(world.papers) - n_delta_papers
    base_papers = world.papers[:n_base]
    delta_papers = world.papers[n_base:]
    if with_citations:
        base_ids = {p.paper_id for p in base_papers}
        for paper in base_papers:
            missing = [c for c in paper.citations if c not in base_ids]
            if missing:
                raise ValueError(
                    f"base paper {paper.paper_id} cites delta papers "
                    f"{missing}; move the split point later"
                )

    base_world = World(
        entities=world.entities,
        conferences=world.conferences,
        papers=base_papers,
        ambiguous_names=world.ambiguous_names,
    )
    base_db, _ = world_to_database(
        base_world, with_citations=with_citations, prepared=prepared
    )

    # Reconstruct the cold build's bookkeeping over the prefix, then emit
    # the suffix rows in exactly the order world_to_database would.
    author_row_of_name: dict[str, int] = {}
    for entity in world.entities:
        if entity.name not in author_row_of_name:
            author_row_of_name[entity.name] = len(author_row_of_name)
    proc_key_of: dict[tuple[int, int], int] = {}
    for paper in base_papers:
        pair = (paper.conf_id, paper.year)
        if pair not in proc_key_of:
            proc_key_of[pair] = len(proc_key_of)

    delta = Delta()
    for paper in delta_papers:
        pair = (paper.conf_id, paper.year)
        if pair not in proc_key_of:
            proc_key = len(proc_key_of)
            location = _LOCATIONS[(paper.conf_id * 7 + paper.year) % len(_LOCATIONS)]
            delta.add(PROCEEDINGS, (proc_key, paper.conf_id, paper.year, location))
            proc_key_of[pair] = proc_key
    for paper in delta_papers:
        delta.add(PUBLICATIONS, (paper.paper_id, paper.title, proc_key_of[(paper.conf_id, paper.year)]))
        for entity_id in paper.author_entity_ids:
            entity = world.entity(entity_id)
            delta.add(PUBLISH, (paper.paper_id, author_row_of_name[entity.name]))
    if with_citations:
        for paper in delta_papers:
            for cited in paper.citations:
                delta.add(CITES, (paper.paper_id, cited))

    # Ground truth against combined row numbering (= cold build's).
    entity_of_row: dict[int, int] = {}
    rows_of_name: dict[str, list[int]] = {}
    publish_row = 0
    for paper in world.papers:
        for entity_id in paper.author_entity_ids:
            entity = world.entity(entity_id)
            entity_of_row[publish_row] = entity_id
            rows_of_name.setdefault(entity.name, []).append(publish_row)
            publish_row += 1
    truth = GroundTruth(
        entity_of_row=entity_of_row,
        author_row_of_name=author_row_of_name,
        rows_of_name=rows_of_name,
        entity_labels={
            e.entity_id: " / ".join(e.institutions)
            for e in world.entities
            if e.institutions
        },
    )
    return WorldSplit(
        base=base_db,
        delta=delta,
        truth=truth,
        n_base_papers=n_base,
        n_delta_papers=n_delta_papers,
    )
