"""Name pools and the frequency model behind rare-name detection.

The automatic training-set construction of §3 rests on one observation: a
name whose first *and* last parts are both rare is very likely unique. The
generator therefore needs a name distribution with a realistic head/tail
shape, and the library needs a way to measure token rarity **from the data
itself** (not from the generator's pools — the real DBLP pipeline has no
pools to consult).

``COMMON_GIVEN`` / ``COMMON_SURNAMES`` are weighted heads (drawn with
Zipf-like weights); ``RARE_GIVEN`` / ``RARE_SURNAMES`` are tails used both by
the generator's long-tail sampling and to mint guaranteed-unique names.

:class:`NameFrequencyModel` computes token frequencies over the actual
author table and classifies names as rare — this is what
:mod:`repro.ml.trainingset` uses.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass
import random

COMMON_GIVEN: list[str] = [
    "Wei", "Jian", "Lei", "Ming", "Hui", "Bin", "Bing", "Jun", "Li", "Yan",
    "Xin", "Hong", "Feng", "Yu", "Hao", "Chen", "Dong", "Gang", "Ning", "Tao",
    "John", "Michael", "David", "James", "Robert", "William", "Richard",
    "Thomas", "Mark", "Charles", "Steven", "Paul", "Andrew", "Peter", "Kevin",
    "Brian", "George", "Edward", "Ronald", "Anthony", "Daniel", "Matthew",
    "Maria", "Anna", "Laura", "Susan", "Linda", "Karen", "Helen", "Sandra",
    "Rakesh", "Ajay", "Anil", "Sanjay", "Vijay", "Ravi", "Amit", "Sunil",
    "Raj", "Arun", "Hiroshi", "Takeshi", "Kenji", "Yuki", "Satoshi",
    "Hans", "Klaus", "Jurgen", "Wolfgang", "Dieter", "Pierre", "Jean",
    "Michel", "Alain", "Marco", "Paolo", "Giuseppe", "Carlos", "Jose",
    "Juan", "Luis", "Miguel", "Ivan", "Sergey", "Dmitri", "Andrei",
    "Jim", "Joseph", "Frank", "Henry", "Jack", "Larry", "Scott", "Eric",
    "Stephen", "Gary", "Jeffrey", "Gregory", "Patrick", "Dennis", "Walter",
]

COMMON_SURNAMES: list[str] = [
    "Wang", "Li", "Zhang", "Liu", "Chen", "Yang", "Huang", "Zhao", "Wu",
    "Zhou", "Xu", "Sun", "Ma", "Zhu", "Hu", "Guo", "He", "Lin", "Gao",
    "Luo", "Smith", "Johnson", "Williams", "Brown", "Jones", "Miller",
    "Davis", "Garcia", "Rodriguez", "Wilson", "Martinez", "Anderson",
    "Taylor", "Thomas", "Moore", "Jackson", "Martin", "Lee", "Thompson",
    "White", "Harris", "Clark", "Lewis", "Robinson", "Walker", "Young",
    "Allen", "King", "Wright", "Hill", "Kumar", "Gupta", "Sharma", "Singh",
    "Patel", "Mehta", "Agarwal", "Rao", "Reddy", "Iyer", "Tanaka", "Suzuki",
    "Takahashi", "Watanabe", "Ito", "Yamamoto", "Nakamura", "Kobayashi",
    "Mueller", "Schmidt", "Schneider", "Fischer", "Weber", "Meyer",
    "Wagner", "Becker", "Schulz", "Hoffmann", "Martin", "Bernard", "Dubois",
    "Moreau", "Laurent", "Rossi", "Russo", "Ferrari", "Esposito", "Bianchi",
    "Fernandez", "Gonzalez", "Lopez", "Perez", "Sanchez", "Ivanov", "Petrov",
    "Fang", "Yu", "Liu", "Han", "Pei", "Lu", "Lin", "Shi", "Song", "Jiang",
]

RARE_GIVEN: list[str] = [
    "Aldric", "Bartholomew", "Casimir", "Dashiell", "Eleazar", "Fitzgerald",
    "Gideon", "Hyacinth", "Ignatius", "Jericho", "Kazimierz", "Leopold",
    "Montgomery", "Nikodem", "Octavian", "Peregrine", "Quentin", "Rutherford",
    "Sigmund", "Thaddeus", "Ulysses", "Valentin", "Wendelin", "Xenophon",
    "Yevgeni", "Zebulon", "Anselm", "Benedikt", "Cornelius", "Dagobert",
    "Eberhard", "Friedhelm", "Gotthold", "Hieronymus", "Isidor", "Jolyon",
    "Kasimir", "Lysander", "Meinhard", "Nepomuk", "Oswin", "Parsifal",
    "Quirin", "Reinhold", "Siegbert", "Theobald", "Urban", "Volkmar",
    "Wilhelmine", "Xaviera", "Yolanda", "Zinaida", "Apollonia", "Brunhilde",
    "Crescentia", "Dorothea", "Eulalia", "Friederike", "Gertraud",
    "Hildegard", "Iphigenia", "Jocasta", "Kunigunde", "Leocadia",
    "Melisande", "Notburga", "Ottilie", "Perpetua", "Quiteria", "Rosalinde",
    "Scholastica", "Theodelinde", "Ursulina", "Veridiana", "Walburga",
    "Xanthippe", "Ysolde", "Zenobia", "Ambrosius", "Balthasar",
]

RARE_SURNAMES: list[str] = [
    "Abercrombie", "Ballantyne", "Cholmondeley", "Dunsworth", "Etherington",
    "Featherstone", "Goldsworthy", "Hollingberry", "Inglethorpe",
    "Jellicoe", "Kingscote", "Liversidge", "Mortlake", "Netherwood",
    "Oglethorpe", "Postlethwaite", "Quarrington", "Ravenscroft",
    "Satterthwaite", "Thistlethwaite", "Umfreville", "Vavasour",
    "Winterbourne", "Xylander", "Yarborough", "Zellweger", "Ashgrove",
    "Blackwood", "Carfax", "Dravenmoor", "Eastgate", "Fernsby", "Grimsditch",
    "Hartsook", "Ironmonger", "Jessop", "Kestrel", "Loxley", "Midwinter",
    "Nighswander", "Onslow", "Pemberton", "Quillfeather", "Rivenhall",
    "Silverlock", "Tredwell", "Underhill", "Villiers", "Wetherby",
    "Yewdale", "Zouche", "Ainsworth", "Birtwistle", "Culpepper",
    "Dankworth", "Entwistle", "Fazakerley", "Garrickson", "Haverford",
    "Illingworth", "Juxon", "Kirkbride", "Lanyon", "Mompesson",
    "Nethercott", "Ollerenshaw", "Pilkington", "Quennell", "Rampling",
    "Sacheverell", "Tattershall", "Urquhart", "Venables", "Wolstenholme",
    "Yeardley", "Zephaniah", "Arkwright", "Bragnall", "Crowhurst",
]


def zipf_weights(n: int, exponent: float = 1.1) -> list[float]:
    """Zipf-like weights for ranks 1..n (head tokens are much more common)."""
    return [1.0 / (rank**exponent) for rank in range(1, n + 1)]


@dataclass(frozen=True)
class PersonName:
    """A first/last name pair; ``full`` is the display form used in the DB."""

    first: str
    last: str

    @property
    def full(self) -> str:
        return f"{self.first} {self.last}"

    @classmethod
    def parse(cls, full: str) -> "PersonName":
        """Split a full name into (first, last) at the final space."""
        first, _, last = full.rpartition(" ")
        if not first:
            return cls(first="", last=last)
        return cls(first=first, last=last)


class NameSampler:
    """Draws names from the weighted common pools / uniform rare pools."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._given_weights = zipf_weights(len(COMMON_GIVEN))
        self._surname_weights = zipf_weights(len(COMMON_SURNAMES))

    def sample_common(self) -> PersonName:
        first = self._rng.choices(COMMON_GIVEN, weights=self._given_weights)[0]
        last = self._rng.choices(COMMON_SURNAMES, weights=self._surname_weights)[0]
        return PersonName(first, last)

    def sample_rare_unique(self, taken: set[str]) -> PersonName:
        """A rare-token name not yet in ``taken`` (updates ``taken``)."""
        while True:
            name = PersonName(
                self._rng.choice(RARE_GIVEN), self._rng.choice(RARE_SURNAMES)
            )
            if name.full not in taken:
                taken.add(name.full)
                return name


class NameFrequencyModel:
    """Token frequencies over an observed set of author names.

    ``is_rare(name)`` implements the §3 heuristic: both the first token and
    the last token of the name occur at most ``max_token_count`` times across
    all author names.
    """

    def __init__(self, full_names: Iterable[str], max_token_count: int = 2) -> None:
        self.max_token_count = max_token_count
        self.first_counts: Counter[str] = Counter()
        self.last_counts: Counter[str] = Counter()
        for full in full_names:
            name = PersonName.parse(full)
            self.first_counts[name.first] += 1
            self.last_counts[name.last] += 1

    def first_frequency(self, name: str | PersonName) -> int:
        name = name if isinstance(name, PersonName) else PersonName.parse(name)
        return self.first_counts[name.first]

    def last_frequency(self, name: str | PersonName) -> int:
        name = name if isinstance(name, PersonName) else PersonName.parse(name)
        return self.last_counts[name.last]

    def is_rare(self, name: str | PersonName) -> bool:
        name = name if isinstance(name, PersonName) else PersonName.parse(name)
        if not name.first:
            return False
        return (
            self.first_counts[name.first] <= self.max_token_count
            and self.last_counts[name.last] <= self.max_token_count
        )

    def rare_names(self, full_names: Iterable[str]) -> list[str]:
        """The subset of ``full_names`` classified rare, order preserved."""
        return [full for full in full_names if self.is_rare(full)]
