"""Levenshtein edit distance (dynamic programming, O(len_a * len_b)).

Used as the exact verifier behind the q-gram count filter: the approximate
join prunes with cheap q-gram overlap, then confirms candidates with the
real distance.
"""

from __future__ import annotations


def levenshtein(a: str, b: str, max_distance: int | None = None) -> int:
    """Edit distance between ``a`` and ``b`` (insert/delete/substitute = 1).

    With ``max_distance`` set, returns ``max_distance + 1`` as soon as the
    true distance provably exceeds it (banded early exit) — the common case
    in join verification.
    """
    if a == b:
        return 0
    if len(a) > len(b):
        a, b = b, a  # ensure len(a) <= len(b)
    if max_distance is not None and len(b) - len(a) > max_distance:
        return max_distance + 1

    previous = list(range(len(a) + 1))
    for j, cb in enumerate(b, start=1):
        current = [j] + [0] * len(a)
        row_min = j
        for i, ca in enumerate(a, start=1):
            current[i] = min(
                previous[i] + 1,          # deletion
                current[i - 1] + 1,       # insertion
                previous[i - 1] + (ca != cb),  # substitution / match
            )
            row_min = min(row_min, current[i])
        if max_distance is not None and row_min > max_distance:
            return max_distance + 1
        previous = current
    return previous[len(a)]


def normalized_levenshtein(a: str, b: str) -> float:
    """1 - distance / max_len, in [0, 1]; 1.0 for equal strings."""
    if not a and not b:
        return 1.0
    return 1.0 - levenshtein(a, b) / max(len(a), len(b))
