"""The approximate string self-join of Gravano et al. [7], in memory.

Pipeline: build an inverted index from q-grams to strings; for each string,
merge the posting lists of its q-grams and keep candidates whose shared
q-gram count passes the count filter for the requested edit-distance bound;
verify survivors with banded Levenshtein. Length filtering (|len_a - len_b|
<= k) is applied before counting.

:func:`resembling_name_groups` applies the join to an author table and
returns groups of resembling names — the candidate sets a full ER system
would feed into the distinction pipeline.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.reldb.database import Database
from repro.strings.editdist import levenshtein
from repro.strings.qgrams import count_filter_threshold, qgram_profile


@dataclass(frozen=True)
class JoinMatch:
    """One verified approximate match."""

    left: str
    right: str
    distance: int


class ApproximateJoin:
    """Approximate self-join over a string collection.

    Parameters
    ----------
    max_distance:
        Edit-distance bound ``k``; pairs further apart are not reported.
    q:
        q-gram length (3 is the usual choice).
    """

    def __init__(self, max_distance: int = 2, q: int = 3) -> None:
        if max_distance < 1:
            raise ValueError("max_distance must be >= 1")
        self.max_distance = max_distance
        self.q = q

    def matches(self, strings: list[str]) -> list[JoinMatch]:
        """All unordered pairs within the distance bound (excluding equal
        indices; duplicate string values match with distance 0)."""
        unique = sorted(set(strings))
        profiles = [qgram_profile(s, self.q) for s in unique]

        # Inverted index: q-gram -> list of string ids containing it.
        postings: dict[str, list[int]] = {}
        for idx, profile in enumerate(profiles):
            for gram in profile:
                postings.setdefault(gram, []).append(idx)

        found: dict[tuple[int, int], JoinMatch] = {}

        def verify(small: int, large: int) -> None:
            key = (small, large)
            if key in found:
                return
            distance = levenshtein(
                unique[small], unique[large], max_distance=self.max_distance
            )
            if distance <= self.max_distance:
                found[key] = JoinMatch(unique[small], unique[large], distance)

        for idx, profile in enumerate(profiles):
            # Count shared q-grams with every earlier candidate (set
            # semantics on grams; count filter uses distinct-gram overlap
            # which lower-bounds bag overlap).
            shared: Counter[int] = Counter()
            for gram in profile:
                for other in postings[gram]:
                    if other < idx:
                        shared[other] += 1
            len_a = len(unique[idx])
            for other, overlap in shared.items():
                len_b = len(unique[other])
                if abs(len_a - len_b) > self.max_distance:
                    continue  # length filter
                threshold = count_filter_threshold(
                    len_a, len_b, self.max_distance, self.q
                )
                if overlap < threshold:
                    continue  # count filter
                verify(other, idx)

        # The count filter is vacuous (threshold <= 0) when both strings are
        # very short: such pairs may share zero q-grams yet still be within
        # the bound, so the index cannot find them. Brute-force that bucket
        # — it only holds strings of length <= (k-1)*q + 1.
        short_limit = (self.max_distance - 1) * self.q + 1
        short = [i for i, s in enumerate(unique) if len(s) <= short_limit]
        for pos, small in enumerate(short):
            for large in short[pos + 1 :]:
                if abs(len(unique[small]) - len(unique[large])) <= self.max_distance:
                    verify(small, large)

        return [found[key] for key in sorted(found)]

    def groups(self, strings: list[str]) -> list[set[str]]:
        """Connected components of the match graph (resembling groups).

        Only groups with at least two members are returned.
        """
        unique = sorted(set(strings))
        parent = {s: s for s in unique}

        def find(s: str) -> str:
            while parent[s] != s:
                parent[s] = parent[parent[s]]
                s = parent[s]
            return s

        for match in self.matches(strings):
            ra, rb = find(match.left), find(match.right)
            if ra != rb:
                parent[rb] = ra

        components: dict[str, set[str]] = {}
        for s in unique:
            components.setdefault(find(s), set()).add(s)
        return sorted(
            (c for c in components.values() if len(c) > 1),
            key=lambda c: (-len(c), min(c)),
        )


def resembling_name_groups(
    db: Database,
    object_relation: str = "Authors",
    name_attribute: str = "name",
    max_distance: int = 1,
    q: int = 3,
) -> list[set[str]]:
    """Groups of resembling (near-identical) names in an object table.

    These are candidate variant groups ("Wei Wang" / "Wei  Wang" /
    "W. Wang") whose references a full ER pipeline would pool before
    running object distinction.
    """
    names = [n for n in db.table(object_relation).column(name_attribute) if n]
    return ApproximateJoin(max_distance=max_distance, q=q).groups(names)
