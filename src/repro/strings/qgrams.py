"""Positional-free q-gram profiles and similarities.

A q-gram profile is the bag of length-q substrings of a padded string; two
strings within edit distance k share at least ``max(|s1|, |s2|) - 1 -
(k - 1) * q`` q-grams (the count filter of Gravano et al. [7]), which is
what makes the approximate join cheap.
"""

from __future__ import annotations

import math
from collections import Counter

PAD = ""  # padding char outside any real alphabet


def _padded(text: str, q: int) -> str:
    pad = PAD * (q - 1)
    return f"{pad}{text.lower()}{pad}"


def qgram_profile(text: str, q: int = 3) -> Counter[str]:
    """The bag (multiset) of q-grams of ``text``, padded, lowercased."""
    if q < 1:
        raise ValueError("q must be >= 1")
    padded = _padded(text, q)
    return Counter(padded[i : i + q] for i in range(len(padded) - q + 1))


def qgram_set(text: str, q: int = 3) -> frozenset[str]:
    """The set of distinct q-grams (set semantics, for Jaccard)."""
    return frozenset(qgram_profile(text, q))


def qgram_jaccard(a: str, b: str, q: int = 3) -> float:
    """Jaccard similarity of the q-gram sets; 1.0 for equal strings."""
    sa, sb = qgram_set(a, q), qgram_set(b, q)
    if not sa and not sb:
        return 1.0
    union = len(sa | sb)
    return len(sa & sb) / union if union else 0.0


def qgram_cosine(a: str, b: str, q: int = 3) -> float:
    """Cosine similarity of the q-gram count vectors (bag semantics)."""
    pa, pb = qgram_profile(a, q), qgram_profile(b, q)
    if not pa and not pb:
        return 1.0
    dot = sum(count * pb.get(gram, 0) for gram, count in pa.items())
    norm_a = math.sqrt(sum(c * c for c in pa.values()))
    norm_b = math.sqrt(sum(c * c for c in pb.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def count_filter_threshold(len_a: int, len_b: int, k: int, q: int) -> int:
    """Minimum shared q-grams for strings within edit distance ``k`` [7].

    Counts are over padded strings (each string has ``len + q - 1`` grams).
    May be <= 0, in which case the filter prunes nothing.
    """
    return max(len_a, len_b) + q - 1 - k * q
