"""Approximate string matching: finding *resembling* references.

The paper defines references as resembling when their textual contents are
identical, and cites Gravano et al., *Approximate string joins in a
database (almost) for free* (VLDB 2001) [7] as the standard candidate
generator. Real bibliographic data also carries near-identical variants
("W. Wang", "Wei  Wang", "Wei Wang 0002"), so a complete system needs the
approximate join too: this subpackage implements q-gram profiles, q-gram
set/bag similarities, Levenshtein distance, and the count-filtering
approximate join of [7] over an inverted q-gram index — all from scratch.

The output of :func:`resembling_name_groups` (clusters of name variants)
feeds the same distinction pipeline: pool the variants' references and
resolve them together.
"""

from repro.strings.qgrams import (
    qgram_profile,
    qgram_set,
    qgram_jaccard,
    qgram_cosine,
)
from repro.strings.editdist import levenshtein, normalized_levenshtein
from repro.strings.join import (
    ApproximateJoin,
    resembling_name_groups,
)

__all__ = [
    "qgram_profile",
    "qgram_set",
    "qgram_jaccard",
    "qgram_cosine",
    "levenshtein",
    "normalized_levenshtein",
    "ApproximateJoin",
    "resembling_name_groups",
]
