"""Row storage for one relation.

Rows are stored as Python tuples in insertion order; a row is addressed by
its integer row id (its position). Deletion is not supported — the workloads
in this reproduction are append-only, which keeps row ids stable and lets
indexes store plain integer lists.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import IntegrityError
from repro.reldb.schema import RelationSchema


class Table:
    """Append-only storage of the rows of one relation.

    Parameters
    ----------
    schema:
        The relation schema; insertions are checked against its arity and,
        if a primary key is declared, key uniqueness.
    """

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema
        self.rows: list[tuple] = []
        self._key_position = (
            schema.position(schema.key) if schema.key is not None else None
        )
        self._key_to_row: dict[object, int] = {}

    def insert(self, row: Iterable[object]) -> int:
        """Insert one row; return its row id.

        Raises
        ------
        IntegrityError
            If the row has the wrong arity or duplicates the primary key.
        """
        values = tuple(row)
        if len(values) != self.schema.arity:
            raise IntegrityError(
                f"{self.schema.name}: expected {self.schema.arity} values, "
                f"got {len(values)}"
            )
        if self._key_position is not None:
            key = values[self._key_position]
            if key in self._key_to_row:
                raise IntegrityError(
                    f"{self.schema.name}: duplicate primary key {key!r}"
                )
            self._key_to_row[key] = len(self.rows)
        self.rows.append(values)
        return len(self.rows) - 1

    def insert_many(self, rows: Iterable[Iterable[object]]) -> list[int]:
        return [self.insert(row) for row in rows]

    def row(self, row_id: int) -> tuple:
        return self.rows[row_id]

    def value(self, row_id: int, attribute: str) -> object:
        return self.rows[row_id][self.schema.position(attribute)]

    def column(self, attribute: str) -> list[object]:
        """All values of one attribute, in row-id order."""
        pos = self.schema.position(attribute)
        return [row[pos] for row in self.rows]

    def row_by_key(self, key: object) -> int | None:
        """Row id of the row whose primary key equals ``key``, or None."""
        if self._key_position is None:
            raise IntegrityError(f"{self.schema.name} has no primary key")
        return self._key_to_row.get(key)

    def as_dict(self, row_id: int) -> dict[str, object]:
        """The row as an attribute->value mapping (for display/debug)."""
        return dict(zip(self.schema.attribute_names, self.rows[row_id]))

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"Table({self.schema.name!r}, {len(self.rows)} rows)"
