"""Small query helpers over a :class:`Database`.

These are deliberately minimal — select by equality, project, and follow one
join step — because the heavy lifting in DISTINCT happens in the probability
propagation engine, not in ad-hoc queries. They are still handy for data
loading, examples, and tests.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.reldb.database import Database
from repro.reldb.joins import JoinStep


def select(
    db: Database,
    relation: str,
    where: dict[str, object] | None = None,
    predicate: Callable[[dict[str, object]], bool] | None = None,
) -> Iterator[int]:
    """Yield row ids of ``relation`` matching all equality conditions.

    When ``where`` has exactly one condition, the per-column hash index is
    used; otherwise the narrowest indexed condition prefilters and the rest
    are checked per row. ``predicate`` (over the row-as-dict) is applied last.
    """
    table = db.table(relation)
    where = dict(where or {})

    candidate_ids: Iterator[int]
    if where:
        # Prefilter on the most selective condition via its index.
        best_attr = min(where, key=lambda a: db.index(relation, a).count(where[a]))
        best_value = where.pop(best_attr)
        candidate_ids = iter(db.index(relation, best_attr).lookup(best_value))
    else:
        candidate_ids = iter(range(len(table)))

    positions = {attr: table.schema.position(attr) for attr in where}
    for row_id in candidate_ids:
        row = table.row(row_id)
        if any(row[pos] != where[attr] for attr, pos in positions.items()):
            continue
        if predicate is not None and not predicate(table.as_dict(row_id)):
            continue
        yield row_id


def project(db: Database, relation: str, row_ids: list[int], attribute: str) -> list[object]:
    """Values of ``attribute`` for the given rows, in order."""
    table = db.table(relation)
    pos = table.schema.position(attribute)
    return [table.row(rid)[pos] for rid in row_ids]


def follow(db: Database, step: JoinStep, row_id: int) -> list[int]:
    """Row ids in ``step.dst_relation`` joinable with one source row."""
    src = db.table(step.src_relation)
    value = src.row(row_id)[src.schema.position(step.src_attribute)]
    if value is None:
        return []
    return list(db.index(step.dst_relation, step.dst_attribute).lookup(value))


def count_rows(db: Database, relation: str, where: dict[str, object]) -> int:
    """Number of rows matching the equality conditions."""
    return sum(1 for _ in select(db, relation, where))
