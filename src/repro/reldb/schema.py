"""Schema declarations: attributes, relations, foreign keys.

A :class:`Schema` is a collection of :class:`RelationSchema` objects plus the
foreign keys linking them. It is the static structure that the join-path
enumeration (``repro.paths.enumerate``) walks; the actual rows live in
:class:`repro.reldb.table.Table` objects inside a
:class:`repro.reldb.database.Database`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError, UnknownAttributeError, UnknownRelationError


@dataclass(frozen=True)
class Attribute:
    """A named, loosely typed column of a relation.

    ``kind`` is one of ``"key"`` (primary key), ``"fk"`` (foreign key),
    ``"value"`` (plain attribute, eligible for virtualization), or
    ``"text"`` (free text such as titles, never virtualized).
    """

    name: str
    kind: str = "value"

    VALID_KINDS = ("key", "fk", "value", "text")

    def __post_init__(self) -> None:
        if self.kind not in self.VALID_KINDS:
            raise SchemaError(
                f"attribute {self.name!r}: kind must be one of "
                f"{self.VALID_KINDS}, got {self.kind!r}"
            )


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key: ``src_relation.src_attribute -> dst_relation.dst_attribute``.

    The destination attribute must be the primary key of the destination
    relation, so every FK edge is many-to-one from source to destination.
    """

    src_relation: str
    src_attribute: str
    dst_relation: str
    dst_attribute: str

    def __str__(self) -> str:
        return (
            f"{self.src_relation}.{self.src_attribute} -> "
            f"{self.dst_relation}.{self.dst_attribute}"
        )


class RelationSchema:
    """The schema of one relation: an ordered list of attributes.

    Parameters
    ----------
    name:
        Relation name, unique within a :class:`Schema`.
    attributes:
        Ordered attributes. At most one may have ``kind="key"``.
    """

    def __init__(self, name: str, attributes: list[Attribute]) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        seen: set[str] = set()
        for attr in attributes:
            if attr.name in seen:
                raise SchemaError(
                    f"relation {name!r}: duplicate attribute {attr.name!r}"
                )
            seen.add(attr.name)
        keys = [a for a in attributes if a.kind == "key"]
        if len(keys) > 1:
            raise SchemaError(f"relation {name!r}: more than one primary key")
        self.name = name
        self.attributes = list(attributes)
        self._index = {a.name: i for i, a in enumerate(attributes)}
        self.key = keys[0].name if keys else None

    @property
    def attribute_names(self) -> list[str]:
        return [a.name for a in self.attributes]

    def has_attribute(self, name: str) -> bool:
        return name in self._index

    def attribute(self, name: str) -> Attribute:
        if name not in self._index:
            raise UnknownAttributeError(self.name, name)
        return self.attributes[self._index[name]]

    def position(self, name: str) -> int:
        """Column position of ``name`` within a stored row."""
        if name not in self._index:
            raise UnknownAttributeError(self.name, name)
        return self._index[name]

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __repr__(self) -> str:
        cols = ", ".join(f"{a.name}:{a.kind}" for a in self.attributes)
        return f"RelationSchema({self.name!r}, [{cols}])"


@dataclass
class Schema:
    """A database schema: relations plus foreign keys.

    Use :meth:`add_relation` / :meth:`add_foreign_key` to build one, then
    :meth:`validate` to check consistency. A :class:`Database` validates on
    construction.
    """

    relations: dict[str, RelationSchema] = field(default_factory=dict)
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def add_relation(self, relation: RelationSchema) -> RelationSchema:
        if relation.name in self.relations:
            raise SchemaError(f"relation {relation.name!r} already declared")
        self.relations[relation.name] = relation
        return relation

    def add_foreign_key(self, fk: ForeignKey) -> ForeignKey:
        self.foreign_keys.append(fk)
        return fk

    def relation(self, name: str) -> RelationSchema:
        if name not in self.relations:
            raise UnknownRelationError(name)
        return self.relations[name]

    def foreign_keys_from(self, relation: str) -> list[ForeignKey]:
        return [fk for fk in self.foreign_keys if fk.src_relation == relation]

    def foreign_keys_to(self, relation: str) -> list[ForeignKey]:
        return [fk for fk in self.foreign_keys if fk.dst_relation == relation]

    def validate(self) -> None:
        """Raise :class:`SchemaError` if any FK endpoint is inconsistent."""
        for fk in self.foreign_keys:
            src = self.relation(fk.src_relation)
            dst = self.relation(fk.dst_relation)
            if not src.has_attribute(fk.src_attribute):
                raise UnknownAttributeError(fk.src_relation, fk.src_attribute)
            if not dst.has_attribute(fk.dst_attribute):
                raise UnknownAttributeError(fk.dst_relation, fk.dst_attribute)
            if dst.key != fk.dst_attribute:
                raise SchemaError(
                    f"foreign key {fk} must reference the primary key of "
                    f"{fk.dst_relation!r} (which is {dst.key!r})"
                )
            src_kind = src.attribute(fk.src_attribute).kind
            if src_kind not in ("fk", "key"):
                raise SchemaError(
                    f"foreign key {fk}: source attribute must be declared "
                    f'kind="fk" (got {src_kind!r})'
                )

    def __contains__(self, relation_name: str) -> bool:
        return relation_name in self.relations

    def copy(self) -> "Schema":
        """A shallow copy sharing relation schemas (they are immutable in use)."""
        return Schema(dict(self.relations), list(self.foreign_keys))
