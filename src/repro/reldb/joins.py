"""Join steps: the atomic edges that join paths are made of.

A :class:`JoinStep` joins ``src_relation.src_attribute`` to
``dst_relation.dst_attribute`` by value equality. Every foreign key gives two
steps — the many-to-one forward direction and the one-to-many reverse — and
every virtualized attribute gives a step to/from its virtual value relation.

The step also records its *cardinality class* from source to destination:

- ``"n1"``  — many-to-one (FK traversed forward; each source row joins at
  most one destination row),
- ``"1n"``  — one-to-many (FK traversed in reverse),

which the path enumerator uses for its pruning rules (reversing a ``1n`` step
with its ``n1`` inverse can only return to the parent tuple, so such
backtracking is degenerate; reversing ``n1`` with ``1n`` yields siblings and
is meaningful).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reldb.schema import ForeignKey, Schema


@dataclass(frozen=True)
class JoinStep:
    """One equi-join hop between two relations."""

    src_relation: str
    src_attribute: str
    dst_relation: str
    dst_attribute: str
    cardinality: str  # "n1" or "1n"

    def reverse(self) -> "JoinStep":
        """The same edge traversed in the opposite direction."""
        flipped = {"n1": "1n", "1n": "n1"}[self.cardinality]
        return JoinStep(
            src_relation=self.dst_relation,
            src_attribute=self.dst_attribute,
            dst_relation=self.src_relation,
            dst_attribute=self.src_attribute,
            cardinality=flipped,
        )

    def is_reverse_of(self, other: "JoinStep") -> bool:
        """True if this step traverses ``other``'s edge backwards."""
        return (
            self.src_relation == other.dst_relation
            and self.src_attribute == other.dst_attribute
            and self.dst_relation == other.src_relation
            and self.dst_attribute == other.src_attribute
        )

    def __str__(self) -> str:
        arrow = {"n1": "->", "1n": "<-"}[self.cardinality]
        return (
            f"{self.src_relation}.{self.src_attribute} {arrow} "
            f"{self.dst_relation}.{self.dst_attribute}"
        )


def steps_for_foreign_key(fk: ForeignKey) -> tuple[JoinStep, JoinStep]:
    """The (forward many-to-one, reverse one-to-many) steps of one FK."""
    forward = JoinStep(
        src_relation=fk.src_relation,
        src_attribute=fk.src_attribute,
        dst_relation=fk.dst_relation,
        dst_attribute=fk.dst_attribute,
        cardinality="n1",
    )
    return forward, forward.reverse()


def schema_join_steps(schema: Schema) -> list[JoinStep]:
    """All join steps implied by a schema's foreign keys, both directions."""
    steps: list[JoinStep] = []
    for fk in schema.foreign_keys:
        forward, reverse = steps_for_foreign_key(fk)
        steps.append(forward)
        steps.append(reverse)
    return steps


def steps_from(schema: Schema, relation: str) -> list[JoinStep]:
    """Join steps leaving ``relation`` (both FK directions)."""
    return [s for s in schema_join_steps(schema) if s.src_relation == relation]
