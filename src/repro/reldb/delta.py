"""Delta ingestion: apply a batch of new tuples to a live database.

The paper's workload is a live bibliographic DB — papers and authorships
arrive continuously — yet rebuilding the :class:`~repro.reldb.database.Database`
per batch is O(world). A :class:`Delta` is the unit of change: new rows per
base relation, applied in one shot by :func:`apply_delta`, which

- appends the rows (row ids are stable: tables are append-only),
- extends every virtual relation (``_v_Rel_attr``) with values the batch
  introduces, preserving the first-seen order a cold
  :func:`~repro.reldb.virtual.virtualize_attribute` build would produce,
- verifies referential integrity of the new rows only (old rows cannot
  become dangling — nothing is ever deleted), and
- bumps ``db.epoch`` so epoch-pinned caches refuse stale reads until
  they are advanced.

The order guarantee is what makes delta ingest byte-identical to a cold
rebuild: applying ``base`` then ``delta`` yields exactly the same row ids
(including virtual relations) as building the combined database at once.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import IntegrityError, PersistenceError, SchemaError
from repro.obs import counter
from repro.reldb.database import Database
from repro.reldb.virtual import is_virtual_relation

__all__ = ["AppliedDelta", "Delta", "apply_delta", "load_delta", "save_delta"]

DELTA_FORMAT_VERSION = 1

_ROWS_ADDED = counter("ingest.rows_added")


@dataclass
class Delta:
    """A batch of new tuples, keyed by base-relation name.

    Row order (dict insertion order across relations, list order within a
    relation) is part of the value: it fixes the row ids and the
    first-seen order of new virtual-relation values.
    """

    rows: dict[str, list[tuple]] = field(default_factory=dict)

    def add(self, relation: str, row: tuple) -> None:
        self.rows.setdefault(relation, []).append(tuple(row))

    @property
    def relations(self) -> list[str]:
        return [rel for rel, rows in self.rows.items() if rows]

    def n_rows(self) -> int:
        return sum(len(rows) for rows in self.rows.values())

    def is_empty(self) -> bool:
        return self.n_rows() == 0


@dataclass
class AppliedDelta:
    """What :func:`apply_delta` did: the new epoch and the row ids added
    per relation (including virtual relations extended as a side effect)."""

    epoch: int
    row_ids: dict[str, list[int]] = field(default_factory=dict)

    def n_rows(self) -> int:
        return sum(len(ids) for ids in self.row_ids.values())

    def new_rows(self, relation: str) -> list[int]:
        return self.row_ids.get(relation, [])


def apply_delta(db: Database, delta: Delta) -> AppliedDelta:
    """Apply ``delta`` to ``db`` in place; return the rows added.

    Raises
    ------
    SchemaError
        If a delta relation is unknown or targets a virtual relation
        (virtual rows are derived, never inserted directly).
    IntegrityError
        If a new row has wrong arity, duplicates a primary key, or
        references a missing foreign-key target.
    """
    for relation in delta.rows:
        if relation not in db.schema:
            raise SchemaError(f"delta targets unknown relation {relation!r}")
        if is_virtual_relation(relation):
            raise SchemaError(
                f"delta may not insert into virtual relation {relation!r}; "
                "virtual rows are derived from base attributes"
            )

    applied = AppliedDelta(epoch=db.epoch + 1)
    for relation, rows in delta.rows.items():
        if not rows:
            continue
        ids = applied.row_ids.setdefault(relation, [])
        table = db.table(relation)
        for row in rows:
            ids.append(table.insert(row))
        _extend_virtual(db, relation, ids, applied)

    _check_new_rows(db, applied)
    _ROWS_ADDED.inc(applied.n_rows())
    db.epoch = applied.epoch
    return applied


def _extend_virtual(
    db: Database, relation: str, new_rows: list[int], applied: AppliedDelta
) -> None:
    """Append first-seen new values of virtualized attributes of ``relation``.

    Mirrors :func:`repro.reldb.virtual.virtualize_attribute`: values are
    scanned in row order, so base-then-delta application reproduces the
    cold build's virtual row ids exactly.
    """
    table = db.table(relation)
    for fk in db.schema.foreign_keys_from(relation):
        if not is_virtual_relation(fk.dst_relation):
            continue
        vtable = db.table(fk.dst_relation)
        pos = table.schema.position(fk.src_attribute)
        for row_id in new_rows:
            value = table.rows[row_id][pos]
            if value is None or vtable.row_by_key(value) is not None:
                continue
            vid = vtable.insert((value,))
            applied.row_ids.setdefault(fk.dst_relation, []).append(vid)


def _check_new_rows(db: Database, applied: AppliedDelta) -> None:
    """Referential integrity restricted to the rows this delta added.

    Sound because tables are append-only: a pre-existing row that was
    integral stays integral (targets are never removed), so only the new
    rows can dangle.
    """
    for relation, new_rows in applied.row_ids.items():
        table = db.table(relation)
        for fk in db.schema.foreign_keys_from(relation):
            dst_index = db.index(fk.dst_relation, fk.dst_attribute)
            pos = table.schema.position(fk.src_attribute)
            for row_id in new_rows:
                value = table.rows[row_id][pos]
                if value is None:
                    continue
                if dst_index.count(value) == 0:
                    raise IntegrityError(
                        f"delta row {row_id} of {relation} dangles on "
                        f"{fk}: missing {value!r}"
                    )


def save_delta(delta: Delta, path: str | Path) -> None:
    """Write ``delta`` as JSON (row order preserved)."""
    payload = {
        "format_version": DELTA_FORMAT_VERSION,
        "relations": {
            rel: [list(row) for row in rows] for rel, rows in delta.rows.items()
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_delta(path: str | Path) -> Delta:
    """Read a :class:`Delta` written by :func:`save_delta`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "relations" not in payload:
        raise PersistenceError(f"not a delta file: {path}")
    version = payload.get("format_version")
    if version != DELTA_FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported delta format_version {version!r} (expected "
            f"{DELTA_FORMAT_VERSION}): {path}"
        )
    return Delta(
        rows={
            rel: [tuple(row) for row in rows]
            for rel, rows in payload["relations"].items()
        }
    )
