"""Database statistics: cardinalities and join fan-outs.

Propagation cost and walk-probability magnitudes are governed by join
fan-outs (how many authorship rows a paper has, how many papers an author
has). This module computes the numbers a DBA would ask for — used by the
``stats`` CLI command, the scalability bench, and dataset diagnostics in
tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reldb.database import Database
from repro.reldb.schema import ForeignKey
from repro.reldb.virtual import is_virtual_relation


@dataclass
class ColumnStats:
    """Distribution of one attribute's values."""

    relation: str
    attribute: str
    n_rows: int
    n_distinct: int
    n_null: int

    @property
    def density(self) -> float:
        """Average rows per distinct value (1.0 = unique column)."""
        if self.n_distinct == 0:
            return 0.0
        return (self.n_rows - self.n_null) / self.n_distinct


@dataclass
class FanoutStats:
    """Fan-out of one foreign key in the one-to-many direction."""

    foreign_key: ForeignKey
    min: int
    max: int
    mean: float

    def __str__(self) -> str:
        return (
            f"{self.foreign_key.dst_relation} <- {self.foreign_key.src_relation}."
            f"{self.foreign_key.src_attribute}: min {self.min}, "
            f"mean {self.mean:.2f}, max {self.max}"
        )


def column_stats(db: Database, relation: str, attribute: str) -> ColumnStats:
    """Cardinality statistics of one column."""
    table = db.table(relation)
    values = table.column(attribute)
    n_null = sum(1 for v in values if v is None)
    distinct = {v for v in values if v is not None}
    return ColumnStats(
        relation=relation,
        attribute=attribute,
        n_rows=len(values),
        n_distinct=len(distinct),
        n_null=n_null,
    )


def fanout_stats(db: Database, fk: ForeignKey) -> FanoutStats:
    """How many referencing rows each referenced row has (0 included).

    E.g. for ``Publish.paper_key -> Publications``: authorship rows per
    paper.
    """
    index = db.index(fk.src_relation, fk.src_attribute)
    counts = [
        index.count(key)
        for key in db.table(fk.dst_relation).column(fk.dst_attribute)
    ]
    if not counts:
        return FanoutStats(fk, 0, 0, 0.0)
    return FanoutStats(
        foreign_key=fk,
        min=min(counts),
        max=max(counts),
        mean=sum(counts) / len(counts),
    )


def database_stats(db: Database, include_virtual: bool = False) -> dict:
    """A full statistics report: sizes, key columns, and every FK fan-out."""
    relations = {
        name: len(table)
        for name, table in db.tables.items()
        if include_virtual or not is_virtual_relation(name)
    }
    fanouts = [
        fanout_stats(db, fk)
        for fk in db.schema.foreign_keys
        if include_virtual or not is_virtual_relation(fk.dst_relation)
    ]
    return {"relations": relations, "fanouts": fanouts}


def format_stats(db: Database) -> str:
    """Human-readable statistics block (used by the CLI)."""
    report = database_stats(db)
    lines = ["relation sizes:"]
    for name in sorted(report["relations"]):
        lines.append(f"  {name}: {report['relations'][name]} rows")
    lines.append("join fan-outs (one-to-many direction):")
    for fanout in report["fanouts"]:
        lines.append(f"  {fanout}")
    return "\n".join(lines)
