"""Attribute-value virtualization (§2.1 of the paper).

DISTINCT treats each distinct value of a non-key attribute as a tuple of its
own, so that "two proceedings share the same publisher" is expressible with
the same join machinery as "two papers share a proceedings". Concretely,
virtualizing ``Proceedings.publisher`` creates a single-column relation
``_v_Proceedings_publisher(value)`` holding the distinct publisher strings,
plus a foreign key ``Proceedings.publisher -> _v_.value`` — after which the
original attribute behaves exactly like a foreign key and join paths may end
at (but not pass through, by default) the virtual relation.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.reldb.database import Database
from repro.reldb.schema import Attribute, ForeignKey, RelationSchema

VIRTUAL_PREFIX = "_v_"
VIRTUAL_VALUE_ATTRIBUTE = "value"


def virtual_relation_name(relation: str, attribute: str) -> str:
    """Name of the virtual relation for ``relation.attribute``."""
    return f"{VIRTUAL_PREFIX}{relation}_{attribute}"


def is_virtual_relation(name: str) -> bool:
    return name.startswith(VIRTUAL_PREFIX)


def virtualize_attribute(db: Database, relation: str, attribute: str) -> str:
    """Materialize the virtual relation for ``relation.attribute``.

    Returns the virtual relation's name. Idempotent: virtualizing the same
    attribute twice returns the existing relation.

    Raises
    ------
    SchemaError
        If the attribute is a key, a foreign key, or declared ``text``
        (titles and other free text carry no linkage semantics).
    """
    rel_schema = db.schema.relation(relation)
    attr = rel_schema.attribute(attribute)
    if attr.kind != "value":
        raise SchemaError(
            f"only kind=\"value\" attributes can be virtualized; "
            f"{relation}.{attribute} has kind {attr.kind!r}"
        )
    vname = virtual_relation_name(relation, attribute)
    if vname in db.schema:
        return vname

    vschema = RelationSchema(
        vname, [Attribute(VIRTUAL_VALUE_ATTRIBUTE, kind="key")]
    )
    vtable = db.add_relation(vschema)
    seen: set[object] = set()
    for value in db.table(relation).column(attribute):
        if value is None or value in seen:
            continue
        seen.add(value)
        vtable.insert((value,))
    db.schema.add_foreign_key(
        ForeignKey(relation, attribute, vname, VIRTUAL_VALUE_ATTRIBUTE)
    )
    return vname


def virtualize_all(db: Database, skip: set[tuple[str, str]] | None = None) -> list[str]:
    """Virtualize every ``kind="value"`` attribute of every base relation.

    ``skip`` is a set of (relation, attribute) pairs to leave alone. Returns
    the names of the virtual relations created (or already present).
    """
    skip = skip or set()
    created: list[str] = []
    for name, rel in list(db.schema.relations.items()):
        if is_virtual_relation(name):
            continue
        for attr in rel.attributes:
            if attr.kind != "value" or (name, attr.name) in skip:
                continue
            created.append(virtualize_attribute(db, name, attr.name))
    return created
