"""Hash indexes mapping attribute values to the row ids holding them.

Joins in this library are always equi-joins on a single attribute pair, so a
value -> [row_id] hash index per join column is all the propagation engine
needs. Indexes are built once per column on demand and kept by the
:class:`repro.reldb.database.Database`; tables are append-only, so an index
can be refreshed incrementally by scanning only new rows.
"""

from __future__ import annotations

from repro.reldb.table import Table


class HashIndex:
    """Value -> row-id list index over one attribute of one table."""

    def __init__(self, table: Table, attribute: str) -> None:
        self.table = table
        self.attribute = attribute
        self._position = table.schema.position(attribute)
        self._buckets: dict[object, list[int]] = {}
        self._rows_seen = 0
        self.refresh()

    def refresh(self) -> None:
        """Index rows appended since the last refresh."""
        rows = self.table.rows
        for row_id in range(self._rows_seen, len(rows)):
            value = rows[row_id][self._position]
            self._buckets.setdefault(value, []).append(row_id)
        self._rows_seen = len(rows)

    @property
    def stale(self) -> bool:
        return self._rows_seen != len(self.table)

    def lookup(self, value: object) -> list[int]:
        """Row ids whose indexed attribute equals ``value`` (possibly empty).

        The returned list is owned by the index; callers must not mutate it.
        """
        return self._buckets.get(value, _EMPTY)

    def count(self, value: object) -> int:
        """Number of rows whose indexed attribute equals ``value``."""
        return len(self._buckets.get(value, _EMPTY))

    def distinct_values(self) -> list[object]:
        return list(self._buckets.keys())

    def __len__(self) -> int:
        """Number of distinct indexed values."""
        return len(self._buckets)

    def __repr__(self) -> str:
        return (
            f"HashIndex({self.table.schema.name}.{self.attribute}, "
            f"{len(self._buckets)} distinct values)"
        )


_EMPTY: list[int] = []
