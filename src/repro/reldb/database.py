"""The Database: schema + tables + indexes + integrity checking."""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import IntegrityError, UnknownRelationError
from repro.reldb.index import HashIndex
from repro.reldb.schema import RelationSchema, Schema
from repro.reldb.table import Table


class Database:
    """An in-memory relational database.

    Holds one :class:`Table` per relation in the schema and builds
    :class:`HashIndex` objects lazily per (relation, attribute) as join
    machinery asks for them. The schema is validated on construction.

    ``epoch`` is a monotonically increasing batch counter: it starts at 0
    and is bumped once per :func:`repro.reldb.delta.apply_delta` batch.
    Caches that compile against the row set (fanout memo, transition
    cache) pin the epoch they were built at and refuse stale reads, so a
    delta can never be silently ignored.
    """

    def __init__(self, schema: Schema) -> None:
        schema.validate()
        self.schema = schema
        self.tables: dict[str, Table] = {
            name: Table(rel) for name, rel in schema.relations.items()
        }
        self._indexes: dict[tuple[str, str], HashIndex] = {}
        self.epoch: int = 0

    # -- data access ------------------------------------------------------

    def table(self, relation: str) -> Table:
        if relation not in self.tables:
            raise UnknownRelationError(relation)
        return self.tables[relation]

    def insert(self, relation: str, row: Iterable[object]) -> int:
        return self.table(relation).insert(row)

    def insert_many(self, relation: str, rows: Iterable[Iterable[object]]) -> list[int]:
        return self.table(relation).insert_many(rows)

    def index(self, relation: str, attribute: str) -> HashIndex:
        """The hash index on ``relation.attribute`` (built/refreshed on demand)."""
        key = (relation, attribute)
        idx = self._indexes.get(key)
        if idx is None:
            idx = HashIndex(self.table(relation), attribute)
            self._indexes[key] = idx
        elif idx.stale:
            idx.refresh()
        return idx

    # -- integrity --------------------------------------------------------

    def check_integrity(self) -> None:
        """Verify every foreign-key value references an existing target row.

        Raises :class:`IntegrityError` on the first dangling reference.
        ``None`` FK values are treated as nullable and skipped.
        """
        for fk in self.schema.foreign_keys:
            src = self.table(fk.src_relation)
            dst_index = self.index(fk.dst_relation, fk.dst_attribute)
            pos = src.schema.position(fk.src_attribute)
            for row_id, row in enumerate(src.rows):
                value = row[pos]
                if value is None:
                    continue
                if dst_index.count(value) == 0:
                    raise IntegrityError(
                        f"dangling foreign key {fk}: row {row_id} of "
                        f"{fk.src_relation} references missing {value!r}"
                    )

    # -- schema evolution (used by virtualization) -------------------------

    def add_relation(self, relation: RelationSchema) -> Table:
        """Add a new (empty) relation to a live database."""
        self.schema.add_relation(relation)
        table = Table(relation)
        self.tables[relation.name] = table
        return table

    # -- stats / display ----------------------------------------------------

    def relation_sizes(self) -> dict[str, int]:
        return {name: len(table) for name, table in self.tables.items()}

    def summary(self) -> str:
        """A short human-readable description of the database contents."""
        lines = [f"Database with {len(self.tables)} relations:"]
        for name in sorted(self.tables):
            lines.append(f"  {name}: {len(self.tables[name])} rows")
        return "\n".join(lines)

    def __repr__(self) -> str:
        total = sum(len(t) for t in self.tables.values())
        return f"Database({len(self.tables)} relations, {total} rows)"
