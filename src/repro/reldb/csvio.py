"""Persist a database to a directory of CSV files (plus a JSON schema file).

Layout::

    <dir>/schema.json          # relations, attribute kinds, foreign keys
    <dir>/<relation>.csv       # one CSV per base relation, header row first

Virtual relations are not persisted — they are derived data and are rebuilt
by re-running virtualization after load. Values are written as strings; on
load, values that look like integers are parsed back to ``int`` (the only
non-string type the generators produce). ``None`` is written as the
sentinel ``\\N`` (MySQL-dump convention) so that empty strings survive the
round trip unchanged.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.reldb.database import Database
from repro.reldb.schema import Attribute, ForeignKey, RelationSchema, Schema
from repro.reldb.virtual import is_virtual_relation

_SCHEMA_FILE = "schema.json"


def save_database(db: Database, directory: str | Path) -> None:
    """Write every base relation of ``db`` to ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    base_relations = [
        name for name in db.schema.relations if not is_virtual_relation(name)
    ]
    manifest = {
        "relations": [
            {
                "name": name,
                "attributes": [
                    {"name": a.name, "kind": a.kind}
                    for a in db.schema.relation(name).attributes
                ],
            }
            for name in base_relations
        ],
        "foreign_keys": [
            {
                "src_relation": fk.src_relation,
                "src_attribute": fk.src_attribute,
                "dst_relation": fk.dst_relation,
                "dst_attribute": fk.dst_attribute,
            }
            for fk in db.schema.foreign_keys
            if not is_virtual_relation(fk.dst_relation)
        ],
    }
    (directory / _SCHEMA_FILE).write_text(json.dumps(manifest, indent=2))

    for name in base_relations:
        table = db.table(name)
        with open(directory / f"{name}.csv", "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(table.schema.attribute_names)
            for row in table.rows:
                writer.writerow([_NULL if v is None else v for v in row])


def load_database(directory: str | Path) -> Database:
    """Rebuild a database saved by :func:`save_database`."""
    directory = Path(directory)
    manifest = json.loads((directory / _SCHEMA_FILE).read_text())

    schema = Schema()
    for rel in manifest["relations"]:
        schema.add_relation(
            RelationSchema(
                rel["name"],
                [Attribute(a["name"], kind=a["kind"]) for a in rel["attributes"]],
            )
        )
    for fk in manifest["foreign_keys"]:
        schema.add_foreign_key(ForeignKey(**fk))

    db = Database(schema)
    for rel in manifest["relations"]:
        name = rel["name"]
        with open(directory / f"{name}.csv", newline="") as handle:
            reader = csv.reader(handle)
            next(reader)  # header
            for row in reader:
                db.insert(name, [_parse_value(v) for v in row])
    return db


_NULL = "\\N"


def _parse_value(text: str) -> object:
    if text == _NULL:
        return None
    try:
        return int(text)
    except ValueError:
        return text
