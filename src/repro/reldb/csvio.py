"""Persist a database to a directory of CSV files (plus a JSON schema file).

Layout::

    <dir>/schema.json          # relations, attribute kinds, foreign keys
    <dir>/<relation>.csv       # one CSV per base relation, header row first

Virtual relations are not persisted — they are derived data and are rebuilt
by re-running virtualization after load. Values are written as strings; on
load, values that look like integers are parsed back to ``int`` (the only
non-string type the generators produce). ``None`` is written as the
sentinel ``\\N`` (MySQL-dump convention) so that empty strings survive the
round trip unchanged.

Loading validates before it trusts: a missing or corrupt ``schema.json``
raises :class:`~repro.errors.SchemaError` naming the offending path; a
missing CSV, or a CSV whose header disagrees with the manifest, raises
:class:`~repro.errors.IntegrityError` — never a bare ``KeyError`` or
``FileNotFoundError``. Malformed *rows* go through the ``on_error``
policy (:class:`~repro.resilience.Policy`), so a handful of corrupt lines
can be skipped or collected instead of aborting the load.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.errors import IntegrityError, SchemaError
from repro.obs import counter
from repro.reldb.database import Database
from repro.reldb.schema import Attribute, ForeignKey, RelationSchema, Schema
from repro.reldb.virtual import is_virtual_relation
from repro.resilience import ErrorCollector, Policy, fault_check, guard

_SCHEMA_FILE = "schema.json"

_ROWS_SKIPPED = counter("csvio.rows_skipped")


def save_database(db: Database, directory: str | Path) -> None:
    """Write every base relation of ``db`` to ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    base_relations = [
        name for name in db.schema.relations if not is_virtual_relation(name)
    ]
    manifest = {
        "relations": [
            {
                "name": name,
                "attributes": [
                    {"name": a.name, "kind": a.kind}
                    for a in db.schema.relation(name).attributes
                ],
            }
            for name in base_relations
        ],
        "foreign_keys": [
            {
                "src_relation": fk.src_relation,
                "src_attribute": fk.src_attribute,
                "dst_relation": fk.dst_relation,
                "dst_attribute": fk.dst_attribute,
            }
            for fk in db.schema.foreign_keys
            if not is_virtual_relation(fk.dst_relation)
        ],
    }
    (directory / _SCHEMA_FILE).write_text(json.dumps(manifest, indent=2))

    for name in base_relations:
        table = db.table(name)
        with open(directory / f"{name}.csv", "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(table.schema.attribute_names)
            for row in table.rows:
                writer.writerow([_NULL if v is None else v for v in row])


def _load_manifest(directory: Path) -> dict:
    schema_path = directory / _SCHEMA_FILE
    if not schema_path.exists():
        raise SchemaError(
            f"not a saved database: missing schema file {schema_path}"
        )
    try:
        manifest = json.loads(schema_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SchemaError(f"corrupt schema file {schema_path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise SchemaError(f"corrupt schema file {schema_path}: not a JSON object")
    for key in ("relations", "foreign_keys"):
        if key not in manifest:
            raise SchemaError(f"schema file {schema_path} is missing {key!r}")
    return manifest


def _build_schema(manifest: dict, schema_path: Path) -> Schema:
    schema = Schema()
    try:
        for rel in manifest["relations"]:
            schema.add_relation(
                RelationSchema(
                    rel["name"],
                    [Attribute(a["name"], kind=a["kind"]) for a in rel["attributes"]],
                )
            )
        for fk in manifest["foreign_keys"]:
            schema.add_foreign_key(ForeignKey(**fk))
    except (KeyError, TypeError) as exc:
        raise SchemaError(
            f"schema file {schema_path} has a malformed entry: {exc!r}"
        ) from exc
    return schema


def load_database(
    directory: str | Path,
    on_error: Policy | str = Policy.RAISE,
    collector: ErrorCollector | None = None,
) -> Database:
    """Rebuild a database saved by :func:`save_database`.

    Raises :class:`SchemaError` for a missing/corrupt manifest and
    :class:`IntegrityError` for a missing CSV or a header that disagrees
    with the manifest (always naming the offending path). Row-level
    problems (wrong arity) follow ``on_error``.
    """
    directory = Path(directory)
    on_error = Policy.coerce(on_error)
    manifest = _load_manifest(directory)
    schema = _build_schema(manifest, directory / _SCHEMA_FILE)

    db = Database(schema)
    for rel in manifest["relations"]:
        name = rel["name"]
        csv_path = directory / f"{name}.csv"
        if not csv_path.exists():
            raise IntegrityError(
                f"relation {name!r} is in the manifest but its file is "
                f"missing: {csv_path}"
            )
        fault_check("csv.load", name)
        expected_header = [a["name"] for a in rel["attributes"]]
        with open(csv_path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header != expected_header:
                raise IntegrityError(
                    f"header of {csv_path} disagrees with the manifest: "
                    f"expected {expected_header}, found {header}"
                )
            for lineno, row in enumerate(reader, start=2):
                with guard("csv.row", f"{csv_path}:{lineno}", on_error, collector):
                    if len(row) != len(expected_header):
                        if on_error is not Policy.RAISE:
                            _ROWS_SKIPPED.inc()
                        raise IntegrityError(
                            f"{csv_path}:{lineno}: expected "
                            f"{len(expected_header)} values, found {len(row)}"
                        )
                    db.insert(name, [_parse_value(v) for v in row])
    return db


_NULL = "\\N"


def _parse_value(text: str) -> object:
    if text == _NULL:
        return None
    try:
        return int(text)
    except ValueError:
        return text
