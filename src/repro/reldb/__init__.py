"""In-memory relational database substrate.

The paper assumes the data lives in a relational database (Fig 2 shows the
DBLP schema). This subpackage provides that substrate from scratch: typed
relations with primary/foreign keys, hash indexes on join columns,
referential-integrity checking, join-step execution, and the attribute-value
virtualization of §2.1 (every distinct value of a non-key attribute becomes a
tuple in a single-column virtual relation).
"""

from repro.reldb.schema import Attribute, ForeignKey, RelationSchema, Schema
from repro.reldb.table import Table
from repro.reldb.index import HashIndex
from repro.reldb.database import Database
from repro.reldb.delta import AppliedDelta, Delta, apply_delta, load_delta, save_delta
from repro.reldb.joins import JoinStep
from repro.reldb.virtual import virtualize_attribute, virtual_relation_name

__all__ = [
    "Attribute",
    "ForeignKey",
    "RelationSchema",
    "Schema",
    "Table",
    "HashIndex",
    "Database",
    "JoinStep",
    "Delta",
    "AppliedDelta",
    "apply_delta",
    "load_delta",
    "save_delta",
    "virtualize_attribute",
    "virtual_relation_name",
]
