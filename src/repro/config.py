"""Configuration for the DISTINCT pipeline.

One :class:`DistinctConfig` drives the whole methodology: which relation
holds the references, how join paths are enumerated, how the automatic
training set is built, the SVM hyperparameters, and the clustering
threshold. Defaults match the DBLP schema and the paper's setup (1000+1000
training pairs, linear-kernel SVM, agglomerative clustering with min-sim).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.paths.enumerate import PathEnumerationConfig


def default_path_config() -> PathEnumerationConfig:
    """Default path budget: up to 5 hops, which covers the coauthor,
    author's-other-papers, proceedings/conference/year/location/publisher and
    conference-sibling paths (27 paths on DBLP). The 7-hop budget including
    coauthors-of-coauthors is available via :func:`deep_path_config` and is
    studied in the path ablation bench."""
    return PathEnumerationConfig(
        max_hops=5, max_sibling_expansions=2, max_start_revisits=2
    )


def deep_path_config() -> PathEnumerationConfig:
    """7-hop budget reaching the coauthor-of-coauthor path (47 paths on DBLP)."""
    return PathEnumerationConfig(
        max_hops=7, max_sibling_expansions=3, max_start_revisits=3
    )


@dataclass(frozen=True)
class DistinctConfig:
    """All knobs of the DISTINCT pipeline.

    Schema binding
    --------------
    ``reference_relation`` holds the references (rows to cluster);
    ``object_relation``/``object_key``/``name_attribute`` locate the named
    objects. Defaults bind to the DBLP schema; the music-domain example
    rebinds them.

    Learning (§3)
    -------------
    ``n_positive``/``n_negative`` training pairs from rare names
    (``max_token_count``, ``min_refs``, ``max_refs`` control rarity), linear
    SVM with cost ``svm_C``.

    Clustering (§4)
    ---------------
    ``min_sim`` is the merge-stopping threshold. The default was calibrated
    once on a held-out synthetic world (seed different from the bench seed)
    and is deliberately *not* tuned per name.
    """

    # schema binding
    reference_relation: str = "Publish"
    object_relation: str = "Authors"
    object_key: str = "author_key"
    name_attribute: str = "name"

    # join paths
    path_config: PathEnumerationConfig = field(default_factory=default_path_config)

    # automatic training set
    n_positive: int = 1000
    n_negative: int = 1000
    max_token_count: int = 2
    min_refs: int = 2
    max_refs: int = 30

    # SVM. ``svm_C=None`` selects C per measure by cross-validated accuracy
    # over ``svm_C_grid`` (the two measures live on very different raw
    # scales, so one fixed C underfits one of them).
    svm_C: float | None = None
    svm_C_grid: tuple[float, ...] = (0.1, 1.0, 10.0, 100.0, 1000.0)
    svm_cv_folds: int = 3
    svm_loss: str = "squared_hinge"
    # None, "balanced", or a {label: factor} dict; "balanced" is useful when
    # n_positive != n_negative.
    svm_class_weight: str | None = None
    svm_tol: float = 1e-3
    svm_max_epochs: int = 600
    # Extra strict-fit attempts with a doubled epoch budget before a
    # ConvergenceError propagates (0 keeps best-so-far, non-strict fits).
    svm_retries: int = 0
    clamp_negative_weights: bool = True
    # Rescale each measure's clamped weights to sum to 1 before combining.
    # A positive global rescale of one measure rescales every composite
    # similarity equally, so cluster merge order is unchanged — but the
    # combined resemblance becomes a convex combination of per-path Jaccard
    # values in [0, 1], giving ``min_sim`` a stable, interpretable scale
    # across worlds and seeds.
    normalize_weights: bool = True

    # clustering
    min_sim: float = 0.006

    # performance (see docs/performance.md).
    # ``similarity_backend`` routes pair-feature computation through either
    # the scalar per-pair kernels (the reference implementation) or the
    # vectorized sparse-matrix kernels in :mod:`repro.similarity.vectorized`.
    # The two agree to floating-point reassociation tolerance; scalar stays
    # the default so results are bit-stable against the seed corpus.
    similarity_backend: str = "scalar"
    # Byte budget for one dense row-chunk block of the vectorized
    # resemblance kernel (bounds peak memory, not correctness).
    similarity_chunk_bytes: int = 64 * 1024 * 1024
    # Pair-list kernels process pairs in slices of this many rows.
    similarity_pair_chunk: int = 8192
    # ``pairwise_walk_matrix`` keeps its result sparse above this many
    # output entries (n_refs**2) instead of densifying.
    walk_dense_limit: int = 4096 * 4096
    # LRU bound on the per-name join-fanout memo used by propagation
    # (entries; 0 disables the memo).
    propagation_memo_size: int = 65536
    # ``propagation_backend`` selects how neighbor profiles are computed:
    # ``"scalar"`` walks one reference at a time (the reference
    # implementation); ``"batched"`` propagates all references of a name
    # at once as sparse matrix products (:mod:`repro.paths.batch`), which
    # implies the matrix similarity kernels regardless of
    # ``similarity_backend``. Equal to within floating-point
    # reassociation tolerance (property-tested at 1e-12).
    propagation_backend: str = "scalar"
    # Candidate blocking mode: ``"off"`` evaluates every pair;
    # ``"exact"`` skips pairs whose neighbor supports are disjoint on
    # every path (:mod:`repro.perf.blocking` — lossless: both measures
    # are exactly zero there, so clustering output is unchanged);
    # ``"minhash"`` first narrows to banded-MinHash candidates
    # (:mod:`repro.perf.minhash`, tuned by ``minhash_bands`` /
    # ``minhash_rows``) and exact-rechecks the survivors — probabilistic
    # blocking with a measured recall knob; at the defaults the
    # clustering output matches exact pruning on every tested world.
    # Booleans are accepted for back-compat (False -> "off",
    # True -> "exact").
    pair_pruning: bool | str = False
    # Banding of the MinHash signatures behind ``pair_pruning="minhash"``:
    # a pair with support-set Jaccard J becomes a candidate with
    # probability 1 - (1 - J**minhash_rows)**minhash_bands. The defaults
    # (32 bands x 2 rows) keep same-object pairs (J >= 0.5, miss
    # < 1e-4) while dropping ambient-overlap pairs (J ~ 0.02) ~99% of
    # the time; signatures are seeded by ``seed``.
    minhash_bands: int = 32
    minhash_rows: int = 2
    # Dispatch the fork-primed worker payload through one shared-memory
    # segment mapped read-only by every worker
    # (:class:`repro.perf.shm.SharedPayload`) instead of relying on
    # fork-inherited (or spawn-pickled) copies. Zero-copy: workers see
    # the same physical pages; results are unchanged.
    shared_memory: bool = False
    # How the parallel per-name loop orders its dispatch
    # (:mod:`repro.perf.sharding`): ``"static"`` keeps input-order
    # chunks; ``"cost"`` dispatches cost-balanced shards (cost ≈ refs²
    # per name) heaviest-first so idle workers steal the expensive
    # stragglers early. Results are byte-identical either way.
    shard_strategy: str = "static"
    # What to do when a fast backend (vectorized kernels, batched
    # propagation, pair pruning) fails at runtime — e.g. a MemoryError on
    # an oversized name or a SciPy sparse failure. ``"strict"`` (default)
    # propagates the error; ``"fallback"`` recomputes that batch on the
    # scalar reference path instead, so the run degrades to
    # slower-but-correct rather than failing. Fallbacks are counted
    # (``resilience.degraded.*``) and annotated on the similarity span,
    # never silent.
    degradation: str = "strict"

    # determinism
    seed: int = 0

    def with_options(self, **changes) -> "DistinctConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)
