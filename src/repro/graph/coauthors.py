"""Coauthor graph utilities over the DBLP-style schema.

A lightweight, direct view of the linkage DISTINCT's strongest path
exploits: the bipartite authorship structure collapsed into an author
co-occurrence graph. Used for dataset diagnostics (community structure,
hub authors) and by the candidate-discovery heuristic.
"""

from __future__ import annotations

import networkx as nx

from repro.config import DistinctConfig
from repro.reldb.database import Database


def coauthor_graph(
    db: Database, config: DistinctConfig | None = None
) -> nx.Graph:
    """Author-key co-occurrence graph: an edge per coauthored paper.

    Edge attribute ``count`` is the number of papers the two author keys
    share; node attribute ``name`` carries the author name.
    """
    config = config or DistinctConfig()
    refs = db.table(config.reference_relation)
    objects = db.table(config.object_relation)
    key_pos = objects.schema.position(config.object_key)
    name_pos = objects.schema.position(config.name_attribute)

    # Group authorship rows by paper (the non-object FK of the reference
    # relation) — schema-generically: the first fk attribute that is not the
    # object key.
    fk_attrs = [
        a.name
        for a in refs.schema.attributes
        if a.kind == "fk" and a.name != config.object_key
    ]
    if not fk_attrs:
        raise ValueError("reference relation has no grouping foreign key")
    group_pos = refs.schema.position(fk_attrs[0])
    object_pos = refs.schema.position(config.object_key)

    by_group: dict[object, list[object]] = {}
    for row in refs.rows:
        by_group.setdefault(row[group_pos], []).append(row[object_pos])

    graph = nx.Graph()
    for row in objects.rows:
        graph.add_node(row[key_pos], name=row[name_pos])
    for members in by_group.values():
        unique = sorted(set(members))
        for i in range(len(unique)):
            for j in range(i + 1, len(unique)):
                u, v = unique[i], unique[j]
                if graph.has_edge(u, v):
                    graph[u][v]["count"] += 1
                else:
                    graph.add_edge(u, v, count=1)
    return graph


def shared_coauthor_count(graph: nx.Graph, a: object, b: object) -> int:
    """Number of common neighbors of two author keys."""
    if a not in graph or b not in graph:
        return 0
    return len(set(graph.neighbors(a)) & set(graph.neighbors(b)))
