"""Graph views of the resolution problem.

Builds networkx graphs from the pipeline's pair similarities: the
*reference similarity graph* of one name (nodes = references, weighted
edges = combined similarity) for analysis and visualization, plus a
transitive-closure baseline (connected components above a threshold) that
the paper's agglomerative clustering is compared against.
"""

from repro.graph.refgraph import (
    connected_component_clusters,
    reference_graph,
    similarity_histogram,
)
from repro.graph.coauthors import coauthor_graph, shared_coauthor_count

__all__ = [
    "reference_graph",
    "connected_component_clusters",
    "similarity_histogram",
    "coauthor_graph",
    "shared_coauthor_count",
]
