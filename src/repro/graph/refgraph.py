"""The reference similarity graph of one name.

Nodes are reference rows; an edge carries the combined pair similarity
(geometric mean of combined resemblance and walk probability — the same
quantity the clustering engine thresholds). Connected components above a
threshold give the transitive-closure baseline: the simplest conceivable
grouping rule, equivalent to Single-Link clustering cut at the threshold.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.core.distinct import NameResolution
from repro.similarity.combine import geometric_mean


def reference_graph(resolution: NameResolution) -> nx.Graph:
    """Build the weighted similarity graph from a resolved name.

    Requires a resolution carrying pair matrices (i.e. a name with >= 2
    references resolved through the normal pipeline).
    """
    if resolution.resem_matrix is None or resolution.walk_matrix is None:
        raise ValueError("resolution carries no pair matrices")
    graph = nx.Graph()
    graph.add_nodes_from(resolution.rows)
    rows = resolution.rows
    for i in range(len(rows)):
        for j in range(i + 1, len(rows)):
            weight = geometric_mean(
                float(resolution.resem_matrix[i, j]),
                float(resolution.walk_matrix[i, j]),
            )
            if weight > 0.0:
                graph.add_edge(rows[i], rows[j], weight=weight)
    return graph


def connected_component_clusters(
    graph: nx.Graph, min_sim: float
) -> list[set[int]]:
    """Transitive-closure baseline: components of edges >= ``min_sim``.

    Equivalent to Single-Link agglomerative clustering stopped at
    ``min_sim`` — kept as an independent implementation so the two can be
    cross-checked in tests.
    """
    kept = nx.Graph()
    kept.add_nodes_from(graph.nodes)
    kept.add_edges_from(
        (u, v)
        for u, v, data in graph.edges(data=True)
        if data.get("weight", 0.0) >= min_sim
    )
    return sorted(
        (set(c) for c in nx.connected_components(kept)),
        key=lambda c: (-len(c), min(c)),
    )


def similarity_histogram(
    graph: nx.Graph, bins: int = 10
) -> list[tuple[float, float, int]]:
    """(bin_lo, bin_hi, count) histogram of positive edge weights."""
    weights = [data["weight"] for _, _, data in graph.edges(data=True)]
    if not weights:
        return []
    counts, edges = np.histogram(weights, bins=bins)
    return [
        (float(edges[i]), float(edges[i + 1]), int(counts[i]))
        for i in range(len(counts))
    ]
