"""Vectorized all-pairs similarity kernels over sparse profile matrices.

The per-pair loops in :mod:`repro.core.features` are fine for the paper's
name sizes (<= 151 references), but all-pairs *walk probabilities* have a
matrix form that scales much further: stacking the forward profiles of all
references into a sparse matrix ``F`` (rows = references, columns = end
relation tuples) and the backward profiles into ``B``, the directed walk
matrix is simply ``F @ B.T``, and the symmetric measure is the average of
that and its transpose.

Set resemblance has no matmul form (it needs elementwise min/max over the
union of supports), so the vectorized path accelerates the walk half only —
verified bit-for-bit against the scalar implementation by property tests.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.paths.joinpath import JoinPath
from repro.paths.profiles import NeighborProfile


def profile_matrices(
    profiles: list[NeighborProfile],
) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
    """Stack profiles into (forward, backward) CSR matrices.

    Rows follow the input order; columns are the union of the supports,
    indexed densely in sorted row-id order.
    """
    columns = sorted({t for p in profiles for t in p.weights})
    col_of = {t: i for i, t in enumerate(columns)}

    rows_idx: list[int] = []
    cols_idx: list[int] = []
    fwd_vals: list[float] = []
    back_vals: list[float] = []
    for r, profile in enumerate(profiles):
        for t, (fwd, back) in profile.weights.items():
            rows_idx.append(r)
            cols_idx.append(col_of[t])
            fwd_vals.append(fwd)
            back_vals.append(back)

    shape = (len(profiles), len(columns))
    forward = sparse.csr_matrix(
        (fwd_vals, (rows_idx, cols_idx)), shape=shape
    )
    backward = sparse.csr_matrix(
        (back_vals, (rows_idx, cols_idx)), shape=shape
    )
    return forward, backward


def pairwise_walk_matrix(profiles: list[NeighborProfile]) -> np.ndarray:
    """Symmetric all-pairs walk probabilities for one path.

    Equivalent to calling
    :func:`repro.similarity.randomwalk.walk_probability` on every pair, with
    the diagonal zeroed (self-walks are not meaningful for clustering).
    """
    if not profiles:
        return np.zeros((0, 0))
    forward, backward = profile_matrices(profiles)
    directed = (forward @ backward.T).toarray()
    symmetric = 0.5 * (directed + directed.T)
    np.fill_diagonal(symmetric, 0.0)
    return symmetric


def pairwise_walk_matrices(
    profiles_by_path: dict[JoinPath, list[NeighborProfile]],
) -> dict[JoinPath, np.ndarray]:
    """Per-path all-pairs walk matrices (convenience wrapper)."""
    return {
        path: pairwise_walk_matrix(profiles)
        for path, profiles in profiles_by_path.items()
    }
