"""Vectorized all-pairs similarity kernels over sparse profile matrices.

The per-pair loops in :mod:`repro.core.features` are fine for the paper's
name sizes (<= 151 references), but both §2 measures have vectorized forms
that scale much further. Stacking the forward profiles of all references
into a sparse matrix ``F`` (rows = references, columns = end-relation
tuples) and the backward profiles into ``B``:

- the directed *walk* matrix is simply ``F @ B.T``, and the symmetric
  measure is the average of that and its transpose;
- *set resemblance* (weighted Jaccard) vectorizes through the identity
  ``min(a, b) = (a + b - |a - b|) / 2``: with row masses
  ``s_ij = |a|_1 + |b|_1`` and pairwise L1 distances ``d_ij``, the
  resemblance is ``(s_ij - d_ij) / (s_ij + d_ij)``. The L1 distances come
  from chunked sparse row differences, so peak memory is bounded by a
  byte budget and the full ``n x m`` matrix is never densified.

Both kernels match the scalar implementations
(:func:`repro.similarity.resemblance.set_resemblance`,
:func:`repro.similarity.randomwalk.walk_probability`) to floating-point
reassociation tolerance — asserted by property tests and by the CI
benchmark smoke job. The scalar kernels remain the reference; the
``similarity_backend`` switch in :class:`repro.config.DistinctConfig`
selects which one the pipeline runs.

Two kernel families are provided: *all-pairs matrices*
(:func:`pairwise_resemblance_matrix`, :func:`pairwise_walk_matrix`) for
full n x n grids, and *pair-list kernels*
(:func:`pair_resemblance_values`, :func:`pair_walk_values`) that evaluate
an explicit ``(i, j)`` list without materializing the unneeded pairs —
the shape :func:`repro.core.features.compute_pair_features` needs.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.paths.joinpath import JoinPath
from repro.paths.profiles import NeighborProfile
from repro.perf.chunking import DEFAULT_BLOCK_BYTES, chunk_slices

#: Above this many output entries (``n_refs ** 2``) the walk matrix stays
#: sparse instead of being densified (see :func:`pairwise_walk_matrix`).
DEFAULT_DENSE_LIMIT = 4096 * 4096

#: Pair-list kernels process pairs in slices of this many rows.
DEFAULT_PAIR_CHUNK = 8192


def profile_matrices(
    profiles: list[NeighborProfile],
) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
    """Stack profiles into (forward, backward) CSR matrices.

    Rows follow the input order; columns are the union of the supports,
    indexed densely in sorted row-id order. The column index is built once
    via ``np.unique`` over the concatenated supports and shared by the
    forward and backward matrices (identical ``indices``/``indptr``), so
    construction is O(total support x log) with no per-tuple Python-dict
    probing.
    """
    n = len(profiles)
    counts = np.array([len(p.weights) for p in profiles], dtype=np.int64)
    total = int(counts.sum())

    all_ids = np.empty(total, dtype=np.int64)
    fwd_vals = np.empty(total, dtype=np.float64)
    back_vals = np.empty(total, dtype=np.float64)
    pos = 0
    for profile, k in zip(profiles, counts):
        if k:
            all_ids[pos : pos + k] = np.fromiter(
                profile.weights.keys(), dtype=np.int64, count=k
            )
            vals = np.array(list(profile.weights.values()), dtype=np.float64)
            fwd_vals[pos : pos + k] = vals[:, 0]
            back_vals[pos : pos + k] = vals[:, 1]
        pos += k

    columns, inverse = np.unique(all_ids, return_inverse=True)
    # Canonical CSR wants ascending column indices within each row; one
    # lexsort (row-major, then column) orders both value arrays alike.
    rows_idx = np.repeat(np.arange(n, dtype=np.int64), counts)
    order = np.lexsort((inverse, rows_idx))
    indices = inverse[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])

    shape = (n, len(columns))
    forward = sparse.csr_matrix((fwd_vals[order], indices, indptr), shape=shape)
    backward = sparse.csr_matrix((back_vals[order], indices.copy(), indptr.copy()), shape=shape)
    return forward, backward


def _row_masses(forward: sparse.csr_matrix) -> np.ndarray:
    return np.asarray(forward.sum(axis=1)).ravel()


def pairwise_resemblance_matrix(
    profiles: list[NeighborProfile],
    *,
    chunk_bytes: int = DEFAULT_BLOCK_BYTES,
) -> np.ndarray:
    """Symmetric all-pairs set resemblance for one path.

    Equivalent (to reassociation tolerance) to calling
    :func:`repro.similarity.resemblance.set_resemblance` on every pair,
    with the diagonal zeroed to match :func:`pairwise_walk_matrix`
    (self-similarities are not meaningful for clustering).

    ``chunk_bytes`` bounds the per-chunk working set (worst-case dense
    accounting of the sparse pair slices), so memory stays bounded
    however many references or columns the name has.
    """
    if not profiles:
        return np.zeros((0, 0))
    forward, _ = profile_matrices(profiles)
    return resemblance_matrix_from_forward(forward, chunk_bytes=chunk_bytes)


def resemblance_matrix_from_forward(
    forward: sparse.csr_matrix,
    *,
    chunk_bytes: int = DEFAULT_BLOCK_BYTES,
) -> np.ndarray:
    """All-pairs weighted Jaccard from a stacked forward matrix.

    Evaluates the upper triangle with the sparse pair-list kernel in
    chunks sized by ``chunk_bytes`` (worst-case dense accounting), then
    mirrors. Profiles reach a small fraction of the end relation, so the
    sparse row differences beat dense broadcast blocks by the fill-in
    factor — and the full ``n x m`` matrix is never densified.
    """
    n = forward.shape[0]
    out = np.zeros((n, n))
    if n < 2:
        return out
    iu, ju = np.triu_indices(n, k=1)
    pair_chunk = max(1, int(chunk_bytes // (16 * max(forward.shape[1], 1))))
    values = pair_resemblance_values(forward, iu, ju, pair_chunk=pair_chunk)
    out[iu, ju] = values
    out[ju, iu] = values
    return out


def pair_resemblance_values(
    forward: sparse.csr_matrix,
    idx_a: np.ndarray,
    idx_b: np.ndarray,
    *,
    pair_chunk: int = DEFAULT_PAIR_CHUNK,
) -> np.ndarray:
    """Set resemblance for an explicit pair list (rows of ``forward``).

    Works row-wise on sparse slices — no dense blocks, no unneeded pairs —
    so arbitrary pair lists (e.g. training pairs spanning many names) cost
    O(pairs x support), not O(n^2).
    """
    idx_a = np.asarray(idx_a, dtype=np.int64)
    idx_b = np.asarray(idx_b, dtype=np.int64)
    out = np.zeros(len(idx_a))
    if not len(idx_a):
        return out
    masses = _row_masses(forward)
    for sl in chunk_slices(len(idx_a), pair_chunk):
        diff = forward[idx_a[sl]] - forward[idx_b[sl]]
        l1 = np.asarray(abs(diff).sum(axis=1)).ravel()
        s = masses[idx_a[sl]] + masses[idx_b[sl]]
        denom = s + l1
        values = np.where(denom > 0.0, (s - l1) / np.where(denom > 0.0, denom, 1.0), 0.0)
        out[sl] = np.maximum(values, 0.0)
    return out


def pair_walk_values(
    forward: sparse.csr_matrix,
    backward: sparse.csr_matrix,
    idx_a: np.ndarray,
    idx_b: np.ndarray,
    *,
    pair_chunk: int = DEFAULT_PAIR_CHUNK,
) -> np.ndarray:
    """Symmetric walk probabilities for an explicit pair list."""
    idx_a = np.asarray(idx_a, dtype=np.int64)
    idx_b = np.asarray(idx_b, dtype=np.int64)
    out = np.zeros(len(idx_a))
    if not len(idx_a):
        return out
    for sl in chunk_slices(len(idx_a), pair_chunk):
        fwd_a = forward[idx_a[sl]]
        fwd_b = forward[idx_b[sl]]
        back_a = backward[idx_a[sl]]
        back_b = backward[idx_b[sl]]
        d_ab = np.asarray(fwd_a.multiply(back_b).sum(axis=1)).ravel()
        d_ba = np.asarray(fwd_b.multiply(back_a).sum(axis=1)).ravel()
        out[sl] = 0.5 * (d_ab + d_ba)
    return out


def pairwise_walk_matrix(
    profiles: list[NeighborProfile],
    *,
    chunk_bytes: int = DEFAULT_BLOCK_BYTES,
    dense_limit: int = DEFAULT_DENSE_LIMIT,
) -> np.ndarray | sparse.csr_matrix:
    """Symmetric all-pairs walk probabilities for one path.

    Equivalent to calling
    :func:`repro.similarity.randomwalk.walk_probability` on every pair,
    with the diagonal zeroed (self-walks are not meaningful for
    clustering).

    The ``F @ B.T`` product is computed in row chunks sized by
    ``chunk_bytes``; when the output would exceed ``dense_limit`` entries
    (``n_refs ** 2``), the result stays a ``csr_matrix`` instead of being
    densified, so large names cannot blow up memory.
    """
    if not profiles:
        return np.zeros((0, 0))
    forward, backward = profile_matrices(profiles)
    n = forward.shape[0]
    row_chunk = max(1, int(chunk_bytes // (8 * max(n, 1))))

    if n * n <= dense_limit:
        directed = np.empty((n, n))
        for sl in chunk_slices(n, row_chunk):
            directed[sl] = (forward[sl] @ backward.T).toarray()
        symmetric = 0.5 * (directed + directed.T)
        np.fill_diagonal(symmetric, 0.0)
        return symmetric

    blocks = [forward[sl] @ backward.T for sl in chunk_slices(n, row_chunk)]
    directed = sparse.vstack(blocks, format="csr")
    symmetric = (0.5 * (directed + directed.T)).tocsr()
    symmetric.setdiag(0.0)
    symmetric.eliminate_zeros()
    return symmetric


def pairwise_walk_matrices(
    profiles_by_path: dict[JoinPath, list[NeighborProfile]],
    *,
    chunk_bytes: int = DEFAULT_BLOCK_BYTES,
    dense_limit: int = DEFAULT_DENSE_LIMIT,
) -> dict[JoinPath, np.ndarray | sparse.csr_matrix]:
    """Per-path all-pairs walk matrices (convenience wrapper)."""
    return {
        path: pairwise_walk_matrix(
            profiles, chunk_bytes=chunk_bytes, dense_limit=dense_limit
        )
        for path, profiles in profiles_by_path.items()
    }
