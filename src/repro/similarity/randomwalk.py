"""Random-walk probability between references (§2.4 of the paper).

The directed walk probability from ``r1`` to ``r2`` along join path ``P`` is
the probability of walking forward from ``r1`` to a neighbor tuple and then
back along the reverse path to ``r2``::

    Walk_P(r1 -> r2) = sum_t  Prob_P(r1 -> t) * Prob_P(t -> r2)

Both factors come straight out of the propagation engine, which is exactly
the composition trick §2.4 describes ("we can easily compute the probability
of walking between two references by combining such probabilities"). The
symmetric measure averages the two directions.
"""

from __future__ import annotations

from repro.obs import counter
from repro.paths.profiles import NeighborProfile

_CALLS = counter("similarity.walk.calls")


def directed_walk_probability(src: NeighborProfile, dst: NeighborProfile) -> float:
    """``Walk_P(src.origin -> dst.origin)`` — see module docstring."""
    if src.is_empty() or dst.is_empty():
        return 0.0
    small, large = (src, dst) if len(src) <= len(dst) else (dst, src)
    # The product is over the support intersection; iterate the smaller side.
    total = 0.0
    if small is src:
        for row_id, (fwd, _) in src.weights.items():
            pair = dst.weights.get(row_id)
            if pair is not None:
                total += fwd * pair[1]
    else:
        for row_id, (_, back) in dst.weights.items():
            pair = src.weights.get(row_id)
            if pair is not None:
                total += pair[0] * back
    return total


def walk_probability(a: NeighborProfile, b: NeighborProfile) -> float:
    """Symmetric walk probability: the mean of the two directions.

    Lies in [0, 1]; zero iff the profiles' supports are disjoint.
    """
    _CALLS.inc()
    return 0.5 * (directed_walk_probability(a, b) + directed_walk_probability(b, a))


def walk_vector(profiles_a: dict, profiles_b: dict) -> list[float]:
    """Per-path symmetric walk probabilities, aligned on ``profiles_a`` keys."""
    return [walk_probability(profiles_a[path], profiles_b[path]) for path in profiles_a]
