"""Set resemblance between neighbor profiles (Definition 2 of the paper).

The resemblance of two references along one join path is the weighted
Jaccard coefficient of their neighbor-tuple sets, with the forward
connection strengths ``Prob_P(r -> t)`` as weights::

    Resem_P(r1, r2) =  sum_{t}  min(p1(t), p2(t))
                      ---------------------------
                       sum_{t}  max(p1(t), p2(t))

where the sums range over the union of the two supports (a tuple missing
from one profile contributes 0 to min and its present weight to max).
"""

from __future__ import annotations

from repro.obs import counter
from repro.paths.profiles import NeighborProfile

_CALLS = counter("similarity.resemblance.calls")


def set_resemblance(a: NeighborProfile, b: NeighborProfile) -> float:
    """Weighted Jaccard between two profiles of the same join path.

    Returns 0.0 when either profile is empty (no shared context is not
    evidence of similarity). The result lies in [0, 1] and equals 1 iff the
    profiles are identical as weighted sets.
    """
    _CALLS.inc()
    if a.is_empty() or b.is_empty():
        return 0.0
    small, large = (a, b) if len(a) <= len(b) else (b, a)

    min_sum = 0.0
    max_sum = 0.0
    for row_id, (fwd_small, _) in small.weights.items():
        fwd_large = large.forward(row_id)
        if fwd_large <= fwd_small:
            min_sum += fwd_large
            max_sum += fwd_small
        else:
            min_sum += fwd_small
            max_sum += fwd_large
    # Tuples only in the larger profile contribute to the denominator.
    max_sum += sum(
        fwd for row_id, (fwd, _) in large.weights.items() if row_id not in small.weights
    )
    if max_sum == 0.0:
        return 0.0
    return min_sum / max_sum


def resemblance_vector(
    profiles_a: dict, profiles_b: dict
) -> list[float]:
    """Per-path resemblance values, aligned on the keys of ``profiles_a``.

    Both arguments are ``path -> NeighborProfile`` mappings as produced by
    :meth:`repro.paths.ProfileBuilder.profiles_for`.
    """
    return [set_resemblance(profiles_a[path], profiles_b[path]) for path in profiles_a]
