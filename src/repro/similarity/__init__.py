"""Similarity measures between references (§2.3–§2.4 of the paper).

Two complementary per-path measures:

- **set resemblance** (:mod:`repro.similarity.resemblance`): weighted
  Jaccard between neighbor profiles — context similarity;
- **random walk probability** (:mod:`repro.similarity.randomwalk`):
  probability of walking from one reference to the other through the path's
  neighbor tuples — linkage strength.

:mod:`repro.similarity.combine` turns per-path values into one number, with
learned weights (Eq 1) or uniform unsupervised weights, and provides the
geometric-mean composition used by the clustering stage.
"""

from repro.similarity.resemblance import set_resemblance
from repro.similarity.randomwalk import walk_probability, directed_walk_probability
from repro.similarity.combine import (
    PathWeights,
    combine,
    geometric_mean,
    normalize_feature_rows,
    uniform_weights,
)

__all__ = [
    "set_resemblance",
    "walk_probability",
    "directed_walk_probability",
    "PathWeights",
    "combine",
    "geometric_mean",
    "normalize_feature_rows",
    "uniform_weights",
]
