"""Combining per-path similarities into one number.

Supervised combination (Eq 1 of the paper)::

    Resem(r1, r2) = sum_P  w(P) * Resem_P(r1, r2)

with ``w(P)`` learned by the SVM of §3. For use as a similarity the weights
are clamped at zero (a negative contribution would break the geometric-mean
composition and the min-sim threshold semantics); the signed weights stay
available on the model for inspection.

Unsupervised combination (the baselines of Fig 4) uses uniform weights over
paths, after per-path max-normalization across the candidate pair set so
that paths with tiny absolute scales (long walk probabilities) are not
drowned out — the paper is silent on this detail; see DESIGN.md §6.

The clustering stage composes the two measures with a geometric mean
(§4.1)::

    Sim(C1, C2) = sqrt( Resem(C1, C2) * WalkProb(C1, C2) )
"""

from __future__ import annotations

import math
from collections.abc import Sequence


class PathWeights:
    """A non-negative weight per feature dimension (join path).

    ``weights[i]`` multiplies feature ``i``; construction clamps negatives
    to zero by default.
    """

    def __init__(self, weights: Sequence[float], clamp_negative: bool = True) -> None:
        if clamp_negative:
            self.weights = [max(0.0, w) for w in weights]
        else:
            self.weights = list(weights)
        self.clamped = clamp_negative

    def __len__(self) -> int:
        return len(self.weights)

    def apply(self, features: Sequence[float]) -> float:
        if len(features) != len(self.weights):
            raise ValueError(
                f"feature/weight length mismatch: {len(features)} vs {len(self.weights)}"
            )
        return sum(w * f for w, f in zip(self.weights, features))

    def total(self) -> float:
        return sum(self.weights)

    def normalized(self) -> "PathWeights":
        """Weights rescaled to sum to 1 (identity if all zero)."""
        total = self.total()
        if total == 0.0:
            return PathWeights(self.weights, clamp_negative=False)
        return PathWeights([w / total for w in self.weights], clamp_negative=False)


def uniform_weights(n_paths: int) -> PathWeights:
    """The unsupervised combiner: every path counts equally."""
    if n_paths <= 0:
        raise ValueError("need at least one path")
    return PathWeights([1.0 / n_paths] * n_paths, clamp_negative=False)


def combine(weights: PathWeights, features: Sequence[float]) -> float:
    """``sum_P w(P) * Sim_P`` — Eq 1 of the paper."""
    return weights.apply(features)


def geometric_mean(resemblance: float, walk_probability: float) -> float:
    """§4.1 composite similarity; zero if either ingredient is non-positive."""
    if resemblance <= 0.0 or walk_probability <= 0.0:
        return 0.0
    return math.sqrt(resemblance * walk_probability)


def normalize_feature_rows(rows: list[list[float]]) -> list[list[float]]:
    """Per-column max-normalization over a set of feature rows.

    Each column is divided by its maximum absolute value across the rows
    (columns that are all zero stay zero). Used by the unsupervised variants
    so that uniform weights do not simply select the path with the largest
    raw scale.
    """
    if not rows:
        return []
    n_cols = len(rows[0])
    if any(len(row) != n_cols for row in rows):
        raise ValueError("rows have inconsistent lengths")
    maxima = [0.0] * n_cols
    for row in rows:
        for j, value in enumerate(row):
            magnitude = abs(value)
            if magnitude > maxima[j]:
                maxima[j] = magnitude
    return [
        [value / maxima[j] if maxima[j] > 0.0 else 0.0 for j, value in enumerate(row)]
        for row in rows
    ]
