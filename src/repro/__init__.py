"""DISTINCT — distinguishing objects with identical names.

A full reproduction of Yin, Han, Yu, *Object Distinction: Distinguishing
Objects with Identical Names* (ICDE 2007): a relational-database substrate,
join-path probability propagation, set-resemblance and random-walk
similarities, SVM-learned per-path weights from an automatically constructed
training set, and composite agglomerative clustering — plus the synthetic
DBLP-like world and evaluation harness that regenerate the paper's tables
and figures.

Quickstart::

    from repro import Distinct, DistinctConfig, generate_world, world_to_database

    world = generate_world()
    db, truth = world_to_database(world)
    distinct = Distinct(DistinctConfig()).fit(db)
    resolution = distinct.resolve("Wei Wang")
    for cluster in resolution.clusters:
        print(sorted(cluster))
"""

from repro.config import DistinctConfig, deep_path_config, default_path_config
from repro.core import Distinct, NameResolution, FIG4_VARIANTS, VariantSpec
from repro.core.references import extract_references, reference_counts_by_name
from repro.data import (
    AmbiguousNameSpec,
    GeneratorConfig,
    TABLE1_SPEC,
    World,
    generate_world,
)
from repro.data.world import GroundTruth, world_to_database
from repro.errors import ReproError
from repro.eval import (
    bcubed_scores,
    pairwise_scores,
    render_clusters_dot,
    render_clusters_text,
    run_experiment,
)
from repro.reldb import Database, Schema
from repro.resilience import (
    CheckpointStore,
    Deadline,
    ErrorCollector,
    FaultPlan,
    Policy,
    retry,
)

__version__ = "1.1.0"

__all__ = [
    "Distinct",
    "DistinctConfig",
    "NameResolution",
    "VariantSpec",
    "FIG4_VARIANTS",
    "default_path_config",
    "deep_path_config",
    "extract_references",
    "reference_counts_by_name",
    "AmbiguousNameSpec",
    "GeneratorConfig",
    "TABLE1_SPEC",
    "World",
    "GroundTruth",
    "generate_world",
    "world_to_database",
    "ReproError",
    "pairwise_scores",
    "bcubed_scores",
    "render_clusters_text",
    "render_clusters_dot",
    "run_experiment",
    "Database",
    "Schema",
    "CheckpointStore",
    "Deadline",
    "ErrorCollector",
    "FaultPlan",
    "Policy",
    "retry",
    "__version__",
]
