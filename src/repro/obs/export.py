"""Export a run's trace: JSON span tree + metrics snapshot, tree report.

The on-disk format (version 1) is one JSON document::

    {
      "version": 1,
      "spans": [ {"name", "start_s", "duration_s", "attrs", "counters",
                  "children"} ],
      "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}
    }

Durations are seconds; ``start_s`` is the span's offset from the start
of the earliest root (the trace epoch), which is what lets
:mod:`repro.obs.chrometrace` place spans on a real timeline (traces
written before the field existed still load). :func:`load_trace` reads
the document back; :func:`render_tree` formats the span forest as an
indented, human-readable report with per-span wall times, attributes,
and counters; :func:`hot_spans` / :func:`render_hot_spans` /
:func:`render_phase_timeline` condense a saved trace into the top-N
aggregate and per-phase summaries behind ``repro report``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.trace import Span, Tracer, get_tracer

__all__ = [
    "TRACE_FORMAT_VERSION",
    "hot_spans",
    "load_trace",
    "render_hot_spans",
    "render_phase_timeline",
    "render_tree",
    "span_to_dict",
    "trace_payload",
    "write_trace",
]

TRACE_FORMAT_VERSION = 1


def span_to_dict(span: Span, epoch: float | None = None) -> dict[str, Any]:
    """Recursive plain-data form of one span subtree.

    ``epoch`` is the trace's zero point in ``perf_counter`` time; when
    given, every span carries its ``start_s`` offset from it.
    """
    out: dict[str, Any] = {
        "name": span.name,
        "duration_s": round(span.duration, 9),
    }
    if epoch is not None:
        out["start_s"] = round(span.start - epoch, 9)
    if span.attrs:
        out["attrs"] = dict(span.attrs)
    if span.counters:
        out["counters"] = dict(span.counters)
    out["children"] = [span_to_dict(child, epoch) for child in span.children]
    return out


def trace_payload(
    tracer: Tracer | None = None, metrics: MetricsRegistry | None = None
) -> dict[str, Any]:
    """The full exportable document for a run (spans may be empty)."""
    tracer = tracer if tracer is not None else get_tracer()
    metrics = metrics if metrics is not None else get_metrics()
    roots = tracer.roots if tracer is not None else []
    epoch = min((root.start for root in roots), default=None)
    return {
        "version": TRACE_FORMAT_VERSION,
        "spans": [span_to_dict(root, epoch) for root in roots],
        "metrics": metrics.snapshot(),
    }


def write_trace(
    path: str | Path,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> Path:
    """Write the trace document to ``path`` (parents created); returns it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace_payload(tracer, metrics), indent=2) + "\n")
    return path


def load_trace(path: str | Path) -> dict[str, Any]:
    """Read a trace document back (raises on unknown format versions)."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("version")
    if version != TRACE_FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version: {version!r}")
    return payload


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def _render_span(node: dict[str, Any], depth: int, lines: list[str]) -> None:
    parts = [f"{'  ' * depth}{node['name']}", _format_duration(node["duration_s"])]
    attrs = node.get("attrs") or {}
    if attrs:
        parts.append(" ".join(f"{k}={v}" for k, v in attrs.items()))
    counters = node.get("counters") or {}
    if counters:
        parts.append(" ".join(f"{k}:{v:g}" for k, v in counters.items()))
    lines.append("  ".join(parts))
    for child in node.get("children", []):
        _render_span(child, depth + 1, lines)


def render_tree(payload: dict[str, Any]) -> str:
    """Human-readable report: indented span tree plus non-zero metrics."""
    lines: list[str] = []
    for root in payload.get("spans", []):
        _render_span(root, 0, lines)
    metrics = payload.get("metrics", {})
    counters = {
        name: value
        for name, value in metrics.get("counters", {}).items()
        if value
    }
    if counters:
        lines.append("")
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {value:g}")
    gauges = {n: v for n, v in metrics.get("gauges", {}).items() if v}
    if gauges:
        lines.append("gauges:")
        for name, value in gauges.items():
            lines.append(f"  {name}  {value:g}")
    histograms = metrics.get("histograms", {})
    if any(h.get("count") for h in histograms.values()):
        lines.append("histograms:")
        for name, h in histograms.items():
            if h.get("count"):
                mean = h["sum"] / h["count"]
                lines.append(
                    f"  {name}  count={h['count']} sum={h['sum']:g} mean={mean:g}"
                )
    return "\n".join(lines)


def _walk_nodes(node: dict[str, Any]):
    yield node
    for child in node.get("children", ()):
        yield from _walk_nodes(child)


def hot_spans(payload: dict[str, Any], top: int = 10) -> list[dict[str, Any]]:
    """The ``top`` span names by total wall time, aggregated over a trace.

    Each entry carries ``name``, ``count``, ``total_s`` (summed span
    durations), ``self_s`` (total minus time spent in child spans — the
    number that says *this* stage is hot, not its substages), and
    ``max_s`` (the slowest single occurrence). Sorted by ``total_s``
    descending; ties break by name so reports are stable.
    """
    agg: dict[str, dict[str, Any]] = {}
    for root in payload.get("spans", ()):
        for node in _walk_nodes(root):
            duration = node.get("duration_s", 0.0)
            children = sum(
                c.get("duration_s", 0.0) for c in node.get("children", ())
            )
            entry = agg.setdefault(
                node["name"],
                {"name": node["name"], "count": 0, "total_s": 0.0,
                 "self_s": 0.0, "max_s": 0.0},
            )
            entry["count"] += 1
            entry["total_s"] += duration
            entry["self_s"] += max(0.0, duration - children)
            entry["max_s"] = max(entry["max_s"], duration)
    ranked = sorted(agg.values(), key=lambda e: (-e["total_s"], e["name"]))
    return ranked[: max(0, top)]


def render_hot_spans(payload: dict[str, Any], top: int = 10) -> str:
    """The hot-span aggregate as an aligned text table."""
    entries = hot_spans(payload, top)
    if not entries:
        return "no spans recorded"
    width = max(len(e["name"]) for e in entries)
    lines = [
        f"top {len(entries)} spans by total wall time:",
        f"  {'span':<{width}}  {'count':>5}  {'total':>9}  "
        f"{'self':>9}  {'max':>9}",
    ]
    for e in entries:
        lines.append(
            f"  {e['name']:<{width}}  {e['count']:>5}  "
            f"{_format_duration(e['total_s']):>9}  "
            f"{_format_duration(e['self_s']):>9}  "
            f"{_format_duration(e['max_s']):>9}"
        )
    return "\n".join(lines)


def render_phase_timeline(payload: dict[str, Any], width: int = 48) -> str:
    """An ASCII timeline of each root span's direct children (the phases).

    Bars are positioned with ``start_s`` when the trace carries it;
    otherwise phases are laid end-to-end in recorded order. Concurrent
    phases (e.g. grafted worker subtrees) visibly overlap.
    """
    lines: list[str] = []
    for root in payload.get("spans", ()):
        total = root.get("duration_s", 0.0)
        lines.append(
            f"{root['name']}  {_format_duration(total)}"
        )
        children = root.get("children", ())
        if not children or total <= 0:
            continue
        root_start = root.get("start_s", 0.0)
        name_width = max(len(c["name"]) for c in children)
        cursor = 0.0
        for child in children:
            offset = child.get("start_s")
            offset = (offset - root_start) if offset is not None else cursor
            duration = child.get("duration_s", 0.0)
            cursor = offset + duration
            begin = min(width, int(offset / total * width))
            length = max(1, round(duration / total * width))
            length = min(length, width - begin) or 1
            bar = " " * begin + "#" * length
            lines.append(
                f"  {child['name']:<{name_width}}  |{bar:<{width}}|  "
                f"+{_format_duration(max(0.0, offset))} "
                f"{_format_duration(duration)}"
            )
    return "\n".join(lines) if lines else "no spans recorded"
