"""Export a run's trace: JSON span tree + metrics snapshot, tree report.

The on-disk format (version 1) is one JSON document::

    {
      "version": 1,
      "spans": [ {"name", "duration_s", "attrs", "counters", "children"} ],
      "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}
    }

Durations are seconds. :func:`load_trace` reads the document back;
:func:`render_tree` formats the span forest as an indented,
human-readable report with per-span wall times, attributes, and counters.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.trace import Span, Tracer, get_tracer

__all__ = [
    "TRACE_FORMAT_VERSION",
    "load_trace",
    "render_tree",
    "span_to_dict",
    "trace_payload",
    "write_trace",
]

TRACE_FORMAT_VERSION = 1


def span_to_dict(span: Span) -> dict[str, Any]:
    """Recursive plain-data form of one span subtree."""
    out: dict[str, Any] = {
        "name": span.name,
        "duration_s": round(span.duration, 9),
    }
    if span.attrs:
        out["attrs"] = dict(span.attrs)
    if span.counters:
        out["counters"] = dict(span.counters)
    out["children"] = [span_to_dict(child) for child in span.children]
    return out


def trace_payload(
    tracer: Tracer | None = None, metrics: MetricsRegistry | None = None
) -> dict[str, Any]:
    """The full exportable document for a run (spans may be empty)."""
    tracer = tracer if tracer is not None else get_tracer()
    metrics = metrics if metrics is not None else get_metrics()
    roots = tracer.roots if tracer is not None else []
    return {
        "version": TRACE_FORMAT_VERSION,
        "spans": [span_to_dict(root) for root in roots],
        "metrics": metrics.snapshot(),
    }


def write_trace(
    path: str | Path,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> Path:
    """Write the trace document to ``path`` (parents created); returns it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace_payload(tracer, metrics), indent=2) + "\n")
    return path


def load_trace(path: str | Path) -> dict[str, Any]:
    """Read a trace document back (raises on unknown format versions)."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("version")
    if version != TRACE_FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version: {version!r}")
    return payload


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def _render_span(node: dict[str, Any], depth: int, lines: list[str]) -> None:
    parts = [f"{'  ' * depth}{node['name']}", _format_duration(node["duration_s"])]
    attrs = node.get("attrs") or {}
    if attrs:
        parts.append(" ".join(f"{k}={v}" for k, v in attrs.items()))
    counters = node.get("counters") or {}
    if counters:
        parts.append(" ".join(f"{k}:{v:g}" for k, v in counters.items()))
    lines.append("  ".join(parts))
    for child in node.get("children", []):
        _render_span(child, depth + 1, lines)


def render_tree(payload: dict[str, Any]) -> str:
    """Human-readable report: indented span tree plus non-zero metrics."""
    lines: list[str] = []
    for root in payload.get("spans", []):
        _render_span(root, 0, lines)
    metrics = payload.get("metrics", {})
    counters = {
        name: value
        for name, value in metrics.get("counters", {}).items()
        if value
    }
    if counters:
        lines.append("")
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {value:g}")
    gauges = {n: v for n, v in metrics.get("gauges", {}).items() if v}
    if gauges:
        lines.append("gauges:")
        for name, value in gauges.items():
            lines.append(f"  {name}  {value:g}")
    histograms = metrics.get("histograms", {})
    if any(h.get("count") for h in histograms.values()):
        lines.append("histograms:")
        for name, h in histograms.items():
            if h.get("count"):
                mean = h["sum"] / h["count"]
                lines.append(
                    f"  {name}  count={h['count']} sum={h['sum']:g} mean={mean:g}"
                )
    return "\n".join(lines)
