"""Chrome trace-event JSON from a saved span tree (Perfetto-loadable).

:func:`chrome_trace_events` converts a trace document (the
:func:`repro.obs.export.trace_payload` shape, in memory or loaded back
from ``--trace-out``) into the Trace Event Format understood by
``chrome://tracing`` and https://ui.perfetto.dev: one complete event
(``"ph": "X"``) per span, with microsecond ``ts``/``dur``.

Spans grafted from worker processes carry a ``worker_pid`` attribute
(see :mod:`repro.perf.parallel`); those subtrees are emitted under that
pid so each worker renders as its own process track, with the parent
process on track 0. Spans exported without ``start_s`` (traces written
before the field existed) are laid end-to-end under their parent, which
preserves nesting and durations at the cost of exact concurrency.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

__all__ = ["chrome_trace_events", "write_chrome_trace"]

#: Synthetic pid for the parent process's track (trace documents do not
#: record the real parent pid; workers keep their recorded pids).
MAIN_PID = 0


def _span_events(
    node: dict[str, Any],
    fallback_start_s: float,
    pid: int,
    events: list[dict[str, Any]],
) -> None:
    start_s = node.get("start_s", fallback_start_s)
    duration_s = node.get("duration_s", 0.0)
    attrs = node.get("attrs") or {}
    pid = int(attrs.get("worker_pid", pid))
    args = dict(attrs)
    for name, value in (node.get("counters") or {}).items():
        args[f"counter.{name}"] = value
    event = {
        "name": node["name"],
        "cat": "repro",
        "ph": "X",
        "ts": round(start_s * 1e6, 3),
        "dur": round(duration_s * 1e6, 3),
        "pid": pid,
        "tid": pid,
    }
    if args:
        event["args"] = args
    events.append(event)
    child_fallback = start_s
    for child in node.get("children", ()):
        _span_events(child, child_fallback, pid, events)
        child_fallback += child.get("duration_s", 0.0)


def chrome_trace_events(payload: dict[str, Any]) -> dict[str, Any]:
    """The Trace Event Format document for one trace payload.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` —
    serializable with ``json.dumps`` and loadable in Perfetto as-is.
    Process-name metadata events label the parent track ``repro`` and
    each worker track ``worker <pid>``.
    """
    events: list[dict[str, Any]] = []
    cursor = 0.0
    for root in payload.get("spans", ()):
        _span_events(root, cursor, MAIN_PID, events)
        cursor += root.get("duration_s", 0.0)
    pids = sorted({event["pid"] for event in events})
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": pid,
            "args": {"name": "repro" if pid == MAIN_PID else f"worker {pid}"},
        }
        for pid in pids
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, payload: dict[str, Any]) -> Path:
    """Write the Chrome trace JSON for ``payload`` to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace_events(payload), indent=1) + "\n")
    return path
