"""Nested wall-time spans with a thread-local stack and a no-op mode.

A :class:`Span` records one timed region of a run: name, attributes,
start/end (``time.perf_counter``), per-span counters, and child spans.
Spans nest via a thread-local stack held by the :class:`Tracer`, so
concurrent threads build independent subtrees under their own roots.

The module-level :func:`span` is the instrumentation entry point. When no
tracer is installed (the default) it returns :data:`NOOP_SPAN`, a shared
do-nothing span, so instrumented call sites cost one global read — hot
paths can stay instrumented permanently.

:func:`timed` is the variant for durations that must exist even when
tracing is off (e.g. the numbers feeding ``FitReport``): it always
measures wall time, and additionally records a real span when tracing is
enabled.

Spans also cross process boundaries: :func:`span_to_wire` /
:func:`span_from_wire` serialize a closed subtree to plain data (JSON-
and pickle-safe), and :meth:`Tracer.graft` re-attaches a reconstructed
subtree under the current open span. ``start``/``end`` stay in
``perf_counter`` time — a system-wide monotonic clock on every supported
platform — so worker spans land at their true position on the parent's
timeline. :mod:`repro.perf.parallel` uses exactly this to ship each
worker task's span subtree home inside its ``TaskOutcome``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterator

__all__ = [
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "current_span",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "span",
    "span_from_wire",
    "span_to_wire",
    "timed",
    "tracing_enabled",
]


class Span:
    """One timed region: name, attributes, counters, children.

    ``duration`` is in seconds; while the span is open it reflects time
    elapsed so far. ``attrs`` hold static context (name being resolved,
    pair counts); ``counters`` accumulate within-span event counts via
    :meth:`add`.
    """

    __slots__ = ("name", "attrs", "start", "end", "counters", "children")

    def __init__(self, name: str, attrs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.start = time.perf_counter()
        self.end: float | None = None
        self.counters: dict[str, float] = {}
        self.children: list["Span"] = []

    @property
    def duration(self) -> float:
        if self.end is None:
            return time.perf_counter() - self.start
        return self.end - self.start

    def annotate(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the span."""
        self.attrs.update(attrs)

    def add(self, name: str, value: float = 1) -> None:
        """Increment a per-span counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def find(self, name: str) -> "Span | None":
        """First descendant (depth-first, self included) with this name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over self and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end is None else f"{self.duration * 1e3:.2f}ms"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class _NoopSpan:
    """Shared do-nothing span returned when tracing is disabled.

    Supports the full :class:`Span` surface (context manager, ``annotate``,
    ``add``) so call sites never branch on whether tracing is on.
    """

    __slots__ = ()

    duration = 0.0
    name = ""
    attrs: dict[str, Any] = {}
    counters: dict[str, float] = {}
    children: list[Span] = []

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        pass

    def add(self, name: str, value: float = 1) -> None:
        pass

    def find(self, name: str) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NOOP_SPAN"


NOOP_SPAN = _NoopSpan()


class _SpanContext:
    """Context manager opening a span on a tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer.start(self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type: object, *exc: object) -> bool:
        assert self._span is not None
        if exc_type is not None:
            # The span failed: close it with the exception type on record
            # instead of pretending the stage completed normally.
            self._span.attrs["error"] = True
            self._span.attrs["error_type"] = getattr(
                exc_type, "__name__", str(exc_type)
            )
        self._tracer.finish(self._span)
        return False


class Tracer:
    """Collects a forest of spans, one stack per thread.

    Spans opened with no active parent become roots; the roots list is
    shared across threads (guarded by a lock), while the open-span stack
    is thread-local so concurrent work nests correctly.
    """

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, /, **attrs: Any) -> _SpanContext:
        """``with tracer.span("stage", key=val) as sp:`` — open a child span."""
        return _SpanContext(self, name, attrs)

    def start(self, name: str, attrs: dict[str, Any] | None = None) -> Span:
        """Open a span under the current thread's innermost open span."""
        sp = Span(name, attrs)
        stack = self._stack()
        if stack:
            stack[-1].children.append(sp)
        else:
            with self._lock:
                self.roots.append(sp)
        stack.append(sp)
        return sp

    def finish(self, sp: Span) -> None:
        """Close a span, popping it (and any unclosed descendants) off the stack."""
        sp.end = time.perf_counter()
        stack = self._stack()
        while stack:
            if stack.pop() is sp:
                break

    def current(self) -> Span | _NoopSpan:
        stack = self._stack()
        return stack[-1] if stack else NOOP_SPAN

    def graft(self, sp: Span) -> Span:
        """Attach an already-closed span subtree under the current span.

        Used to merge a subtree recorded elsewhere (another process,
        deserialized via :func:`span_from_wire`) into this trace: the
        subtree becomes a child of this thread's innermost open span, or
        a new root when none is open. The grafted span is returned.
        """
        stack = self._stack()
        if stack:
            stack[-1].children.append(sp)
        else:
            with self._lock:
                self.roots.append(sp)
        return sp


_tracer: Tracer | None = None


def enable_tracing() -> Tracer:
    """Install (and return) a fresh global tracer; spans start recording."""
    global _tracer
    _tracer = Tracer()
    return _tracer


def disable_tracing() -> None:
    """Remove the global tracer; :func:`span` reverts to no-ops."""
    global _tracer
    _tracer = None


def get_tracer() -> Tracer | None:
    return _tracer


def tracing_enabled() -> bool:
    return _tracer is not None


def span(name: str, /, **attrs: Any) -> "_SpanContext | _NoopSpan":
    """Open a nested span on the global tracer, or a no-op when disabled.

    Usage mirrors both modes::

        with span("resolve.cluster", measure=measure) as sp:
            ...
            sp.add("merges")
    """
    tracer = _tracer
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def current_span() -> Span | _NoopSpan:
    """The innermost open span of this thread (no-op span when none)."""
    tracer = _tracer
    if tracer is None:
        return NOOP_SPAN
    return tracer.current()


class _Timed:
    """Minimal always-on timer with the span surface (used when disabled)."""

    __slots__ = ("start", "end")

    def __init__(self) -> None:
        self.start = 0.0
        self.end: float | None = None

    @property
    def duration(self) -> float:
        if self.end is None:
            return time.perf_counter() - self.start
        return self.end - self.start

    def __enter__(self) -> "_Timed":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.end = time.perf_counter()
        return False

    def annotate(self, **attrs: Any) -> None:
        pass

    def add(self, name: str, value: float = 1) -> None:
        pass


def timed(name: str, /, **attrs: Any) -> "_SpanContext | _Timed":
    """Like :func:`span`, but ``duration`` is measured even when tracing
    is disabled — for durations that feed reports (e.g. ``FitReport``)."""
    tracer = _tracer
    if tracer is None:
        return _Timed()
    return tracer.span(name, **attrs)


def span_to_wire(sp: Span) -> dict[str, Any]:
    """Plain-data form of a span subtree for crossing a process boundary.

    Unlike :func:`repro.obs.export.span_to_dict` (the on-disk report
    shape), the wire form keeps the raw ``perf_counter`` ``start``/``end``
    so a receiver on the same machine can place the subtree at its true
    position on the timeline. A still-open span is serialized as if it
    ended now.
    """
    return {
        "name": sp.name,
        "start": sp.start,
        "end": sp.end if sp.end is not None else time.perf_counter(),
        "attrs": dict(sp.attrs),
        "counters": dict(sp.counters),
        "children": [span_to_wire(child) for child in sp.children],
    }


def span_from_wire(payload: dict[str, Any]) -> Span:
    """Reconstruct a closed :class:`Span` subtree from its wire form."""
    sp = Span(payload["name"], payload.get("attrs"))
    sp.start = float(payload["start"])
    sp.end = float(payload["end"])
    sp.counters = {
        str(k): float(v) for k, v in (payload.get("counters") or {}).items()
    }
    sp.children = [
        span_from_wire(child) for child in payload.get("children", ())
    ]
    return sp
