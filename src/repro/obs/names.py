"""The canonical registry of metric names the pipeline emits.

Every counter/gauge/histogram name passed to
:func:`repro.obs.counter` / :func:`~repro.obs.gauge` /
:func:`~repro.obs.histogram` must appear here, and every entry here must
still be emitted somewhere — both directions are enforced statically by
the ``metrics/*`` rules of :mod:`repro.analysis` (run ``repro lint``).
This is what keeps dashboards, ``docs/observability.md``, and the code
telling the same story: a typo'd name at an instrumentation site fails
lint instead of silently creating a parallel instrument that no export
ever picks up.

Keys are the dot-separated metric names; values are the instrument kind
(``"counter"`` | ``"gauge"`` | ``"histogram"``). Keep the groups sorted
by subsystem prefix.
"""

from __future__ import annotations

__all__ = ["REGISTERED_METRICS"]

REGISTERED_METRICS: dict[str, str] = {
    # MinHash/LSH candidate blocking (repro.perf.minhash)
    "blocking.minhash.candidates": "counter",
    "blocking.minhash.rechecked": "counter",
    # zero-overlap pair pruning (repro.perf.blocking)
    "blocking.pairs_kept": "counter",
    "blocking.pairs_pruned": "counter",
    # checkpointing (repro.resilience.checkpoint)
    "checkpoint.corrupt_quarantined": "counter",
    "checkpoint.items_resumed": "counter",
    "checkpoint.writes": "counter",
    # clustering (repro.cluster.agglomerative / .incremental)
    "cluster.heap.compactions": "counter",
    "cluster.heap.size": "gauge",
    "cluster.heap.stale_dropped": "counter",
    "cluster.merges": "counter",
    "cluster.merges_replayed": "counter",
    "cluster.runs": "counter",
    # CSV ingestion (repro.reldb.csvio)
    "csvio.rows_skipped": "counter",
    # DBLP XML ingestion (repro.data.dblp_xml)
    "dblp.authors_dropped": "counter",
    "dblp.records_parsed": "counter",
    "dblp.records_skipped": "counter",
    # evaluation loop (repro.eval.runner)
    "experiment.name_seconds": "histogram",
    "experiment.names_failed": "counter",
    "experiment.names_scored": "counter",
    # vectorized kernels (repro.core.features)
    "features.vectorized.pairs": "counter",
    # delta ingest (repro.ingest / repro.reldb.delta)
    "ingest.deltas_applied": "counter",
    "ingest.greedy.assigned": "counter",
    "ingest.greedy.new_clusters": "counter",
    "ingest.name_seconds": "histogram",
    "ingest.names_clean": "counter",
    "ingest.names_failed": "counter",
    "ingest.names_refreshed": "counter",
    "ingest.names_scored": "counter",
    "ingest.pairs_recomputed": "counter",
    "ingest.pairs_reused": "counter",
    "ingest.refs_dirty": "counter",
    "ingest.rows_added": "counter",
    "ingest.rows_affected": "counter",
    # pipeline facade (repro.core.distinct)
    "names.resolved": "counter",
    # resource sampler (repro.obs.sampler)
    "obs.sampler.cpu_seconds": "gauge",
    "obs.sampler.gc_collections": "gauge",
    "obs.sampler.peak_rss_bytes": "gauge",
    "obs.sampler.rss_bytes": "gauge",
    "obs.sampler.rss_sample_bytes": "histogram",
    "obs.sampler.ticks": "counter",
    # pipeline facade (repro.core.distinct)
    "pairs.scored": "counter",
    # path enumeration (repro.paths.enumerate)
    "paths.enumerated": "counter",
    # fanout memo (repro.perf.memo)
    "perf.fanout.evictions": "counter",
    "perf.fanout.hits": "counter",
    "perf.fanout.misses": "counter",
    "perf.fanout.size": "gauge",
    # epoch-advance invalidation (repro.perf.memo / .transitions)
    "perf.ingest.rows_dirty": "counter",
    "perf.ingest.rows_reused": "counter",
    # process-pool map (repro.perf.parallel)
    "perf.parallel.spans_grafted": "counter",
    "perf.parallel.task_seconds": "histogram",
    "perf.parallel.tasks_failed": "counter",
    "perf.parallel.tasks_inlined": "counter",
    "perf.parallel.tasks_interrupted": "counter",
    "perf.parallel.tasks_ok": "counter",
    "perf.parallel.tasks_redispatched": "counter",
    "perf.parallel.worker_deaths": "counter",
    # shard planning and work-stealing (repro.perf.sharding / .parallel)
    "perf.shard.shards": "counter",
    "perf.shard.steals": "counter",
    # shared-memory payload dispatch (repro.perf.shm)
    "perf.shm.bytes_mapped": "counter",
    "perf.shm.bytes_shared": "counter",
    "perf.shm.segments": "counter",
    "perf.shm.unlinks": "counter",
    # transition compilation (repro.perf.transitions)
    "perf.transitions.built": "counter",
    "perf.transitions.reused": "counter",
    "perf.transitions.rows": "counter",
    # profile cache (repro.paths.profiles)
    "profiles.cache_hits": "counter",
    "profiles.cache_misses": "counter",
    # propagation engines (repro.paths.propagation / .batch)
    "propagation.batch.origin_corrections": "counter",
    "propagation.batch.runs": "counter",
    "propagation.batch.spmm": "counter",
    "propagation.batch.tuples": "counter",
    "propagation.runs": "counter",
    "propagation.steps": "counter",
    "propagation.tuples_visited": "counter",
    # graceful degradation ladder (repro.core.features)
    "resilience.degraded.features": "counter",
    "resilience.degraded.pairs": "counter",
    # error policies and retries (repro.resilience.policy / .retry)
    "resilience.errors_collected": "counter",
    "resilience.items_skipped": "counter",
    "resilience.retry_attempts": "counter",
    # similarity kernels (repro.similarity)
    "similarity.resemblance.calls": "counter",
    "similarity.walk.calls": "counter",
    # SVM training (repro.ml.svm)
    "svm.convergence_retries": "counter",
    "svm.fits": "counter",
    "svm.iterations": "counter",
    # training-set construction (repro.ml.trainingset)
    "trainingset.pairs_built": "counter",
}
