"""OpenMetrics/Prometheus text exposition of a metrics snapshot.

:func:`render_openmetrics` turns a :meth:`MetricsRegistry.snapshot`
(live or loaded back from a saved trace document) into the OpenMetrics
text format — the lingua franca of Prometheus scrapers, so the whole
registry can be pasted into any standard metrics stack:

.. code-block:: text

    # TYPE repro_pairs_scored counter
    repro_pairs_scored_total 630
    # TYPE repro_resolve_seconds histogram
    repro_resolve_seconds_bucket{le="0.1"} 4
    repro_resolve_seconds_bucket{le="+Inf"} 5
    repro_resolve_seconds_sum 1.25
    repro_resolve_seconds_count 5
    # EOF

Dots in the registry's ``subsystem.event`` names become underscores
(OpenMetrics names admit ``[a-zA-Z0-9_:]`` only) and everything is
prefixed ``repro_``. Histogram bucket counts are exposed cumulatively
with inclusive ``le`` upper bounds plus the mandated ``+Inf`` bucket,
exactly as Prometheus expects.

:func:`parse_openmetrics` reads the exposition back into snapshot shape
(keyed by the exposed metric names); the round-trip is exercised by the
test suite so the exposition stays parseable by construction.
"""

from __future__ import annotations

import re
from typing import Any

from repro.obs.metrics import MetricsRegistry, get_metrics

__all__ = [
    "metric_name",
    "parse_openmetrics",
    "render_openmetrics",
]

#: Prepended to every exposed metric name (after sanitization).
DEFAULT_PREFIX = "repro_"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{le="(?P<le>[^"]*)"\})?'
    r'\s+(?P<value>\S+)$'
)


def metric_name(name: str, prefix: str = DEFAULT_PREFIX) -> str:
    """The exposed (sanitized, prefixed) form of a registry metric name."""
    return prefix + _INVALID_CHARS.sub("_", name)


def _format_value(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_openmetrics(
    snapshot: dict[str, Any] | None = None,
    registry: MetricsRegistry | None = None,
    prefix: str = DEFAULT_PREFIX,
) -> str:
    """The OpenMetrics text exposition of a metrics snapshot.

    Pass an explicit ``snapshot`` (e.g. the ``metrics`` section of a
    saved trace document) or a ``registry`` to snapshot now; the default
    is the process-global registry. Families are emitted sorted by
    exposed name, counters first, then gauges, then histograms.
    """
    if snapshot is None:
        snapshot = (registry if registry is not None else get_metrics()).snapshot()
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        exposed = metric_name(name, prefix)
        lines.append(f"# TYPE {exposed} counter")
        lines.append(f"{exposed}_total {_format_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        exposed = metric_name(name, prefix)
        lines.append(f"# TYPE {exposed} gauge")
        lines.append(f"{exposed} {_format_value(value)}")
    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        exposed = metric_name(name, prefix)
        lines.append(f"# TYPE {exposed} histogram")
        cumulative = 0
        for bound, count in zip(hist["buckets"], hist["counts"]):
            cumulative += count
            lines.append(
                f'{exposed}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        cumulative += hist["counts"][-1]
        lines.append(f'{exposed}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{exposed}_sum {_format_value(hist['sum'])}")
        lines.append(f"{exposed}_count {hist['count']}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_openmetrics(text: str) -> dict[str, Any]:
    """Parse an exposition back into snapshot shape.

    Returns ``{"counters": ..., "gauges": ..., "histograms": ...}`` keyed
    by the *exposed* names (the registry's dotted names are not
    recoverable from a sanitized exposition). Histogram bucket counts are
    de-cumulated back to per-bucket counts, so a snapshot survives
    ``render -> parse`` with its values intact. Raises ``ValueError`` on
    lines that are neither comments nor well-formed samples.
    """
    out: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    types: dict[str, str] = {}
    buckets: dict[str, list[tuple[float, float]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line {lineno}: {line!r}")
        sample, le, value = match["name"], match["le"], float(match["value"])
        if le is not None and sample.endswith("_bucket"):
            family = sample[: -len("_bucket")]
            bound = float("inf") if le == "+Inf" else float(le)
            buckets.setdefault(family, []).append((bound, value))
        elif sample.endswith("_total") and types.get(sample[:-6]) == "counter":
            out["counters"][sample[:-6]] = value
        elif sample.endswith("_sum") and types.get(sample[:-4]) == "histogram":
            out["histograms"].setdefault(sample[:-4], {})["sum"] = value
        elif sample.endswith("_count") and types.get(sample[:-6]) == "histogram":
            out["histograms"].setdefault(sample[:-6], {})["count"] = int(value)
        else:
            out["gauges"][sample] = value
    for family, entries in buckets.items():
        entries.sort(key=lambda pair: pair[0])
        bounds = [bound for bound, _ in entries[:-1]]  # +Inf is the overflow
        cumulative = [count for _, count in entries]
        counts = [int(b - a) for a, b in zip([0.0] + cumulative[:-1], cumulative)]
        hist = out["histograms"].setdefault(family, {})
        hist["buckets"] = bounds
        hist["counts"] = counts
    return out
