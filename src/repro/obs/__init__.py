"""Observability for the DISTINCT pipeline: tracing, metrics, logging.

The pipeline runs expensive multi-stage work (path enumeration,
probability propagation, similarity kernels, SVM training, agglomerative
merging); this package makes that work visible without slowing it down:

- :mod:`repro.obs.trace` — nested span context managers recording wall
  time, counters, and parent/child structure, with a thread-local span
  stack and a zero-cost no-op mode when tracing is disabled;
- :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges, and fixed-bucket histograms;
- :mod:`repro.obs.logging` — structured stdlib-logging setup with
  optional JSON-lines output;
- :mod:`repro.obs.export` — dump a run's span tree plus a metrics
  snapshot to JSON, and render a human-readable tree report.

Typical instrumentation::

    from repro.obs import counter, get_logger, span

    _PAIRS = counter("pairs.scored")
    log = get_logger("core.distinct")

    with span("resolve.profiles", name=name) as sp:
        ...
        sp.annotate(cache_size=builder.cache_size)
    _PAIRS.inc(len(pairs))

Tracing is off by default: ``span(...)`` then returns a shared no-op
span, so instrumented code pays only a global read per call site.
Enable it with :func:`enable_tracing` (the CLI does this for
``--trace-out``) and export with :func:`repro.obs.export.write_trace`.
"""

from repro.obs.export import (
    load_trace,
    render_tree,
    span_to_dict,
    trace_payload,
    write_trace,
)
from repro.obs.logging import get_logger, setup_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_metrics,
    histogram,
)
from repro.obs.names import REGISTERED_METRICS
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    Tracer,
    current_span,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    timed,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "REGISTERED_METRICS",
    "Span",
    "Tracer",
    "counter",
    "current_span",
    "disable_tracing",
    "enable_tracing",
    "gauge",
    "get_logger",
    "get_metrics",
    "get_tracer",
    "histogram",
    "load_trace",
    "render_tree",
    "setup_logging",
    "span",
    "span_to_dict",
    "timed",
    "trace_payload",
    "tracing_enabled",
    "write_trace",
]
