"""Observability for the DISTINCT pipeline: tracing, metrics, logging.

The pipeline runs expensive multi-stage work (path enumeration,
probability propagation, similarity kernels, SVM training, agglomerative
merging); this package makes that work visible without slowing it down:

- :mod:`repro.obs.trace` — nested span context managers recording wall
  time, counters, and parent/child structure, with a thread-local span
  stack and a zero-cost no-op mode when tracing is disabled;
- :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges, and fixed-bucket histograms;
- :mod:`repro.obs.logging` — structured stdlib-logging setup with
  optional JSON-lines output;
- :mod:`repro.obs.export` — dump a run's span tree plus a metrics
  snapshot to JSON, and render human-readable tree / hot-span /
  phase-timeline reports;
- :mod:`repro.obs.sampler` — a background thread sampling RSS, CPU
  time, and GC activity into gauges, with per-span peak-RSS
  attribution;
- :mod:`repro.obs.openmetrics` / :mod:`repro.obs.chrometrace` —
  standard exporters: OpenMetrics text exposition of the metrics
  registry and Perfetto-loadable Chrome trace-event JSON;
- :mod:`repro.obs.regress` — the perf-regression observatory comparing
  the newest ``BENCH_history.jsonl`` run against a trailing baseline.

Typical instrumentation::

    from repro.obs import counter, get_logger, span

    _PAIRS = counter("pairs.scored")
    log = get_logger("core.distinct")

    with span("resolve.profiles", name=name) as sp:
        ...
        sp.annotate(cache_size=builder.cache_size)
    _PAIRS.inc(len(pairs))

Tracing is off by default: ``span(...)`` then returns a shared no-op
span, so instrumented code pays only a global read per call site.
Enable it with :func:`enable_tracing` (the CLI does this for
``--trace-out``) and export with :func:`repro.obs.export.write_trace`.
"""

from repro.obs.chrometrace import chrome_trace_events, write_chrome_trace
from repro.obs.export import (
    hot_spans,
    load_trace,
    render_hot_spans,
    render_phase_timeline,
    render_tree,
    span_to_dict,
    trace_payload,
    write_trace,
)
from repro.obs.logging import get_logger, setup_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_metrics,
    histogram,
)
from repro.obs.names import REGISTERED_METRICS
from repro.obs.openmetrics import parse_openmetrics, render_openmetrics
from repro.obs.regress import (
    RegressionReport,
    SectionVerdict,
    compare_latest,
    load_history,
)
from repro.obs.sampler import ResourceSampler
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    Tracer,
    current_span,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    span_from_wire,
    span_to_wire,
    timed,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "REGISTERED_METRICS",
    "RegressionReport",
    "ResourceSampler",
    "SectionVerdict",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "compare_latest",
    "counter",
    "current_span",
    "disable_tracing",
    "enable_tracing",
    "gauge",
    "get_logger",
    "get_metrics",
    "get_tracer",
    "histogram",
    "hot_spans",
    "load_history",
    "load_trace",
    "parse_openmetrics",
    "render_hot_spans",
    "render_openmetrics",
    "render_phase_timeline",
    "render_tree",
    "setup_logging",
    "span",
    "span_from_wire",
    "span_to_dict",
    "span_to_wire",
    "timed",
    "trace_payload",
    "tracing_enabled",
    "write_chrome_trace",
    "write_trace",
]
