"""Perf-regression observatory over ``BENCH_history.jsonl``.

``benchmarks/bench_perf_kernels.py`` appends one provenance-stamped
summary line per run (git sha, timestamp, per-section speedups over the
scalar reference). This module is the machine that actually *reads* that
trajectory: :func:`compare_latest` takes the newest run, builds a
trailing baseline per section (the median of up to ``window`` prior
comparable runs — same corpus size, same ``tiny`` flag), and flags any
section whose speedup fell below ``baseline * (1 - tolerance)``.

Speedups, not wall times, are compared: they are already normalized to
the scalar reference measured on the same hardware in the same run, so
the verdict is robust to CI machines of different speeds. Tolerances are
configurable per section (``thresholds={"pair_kernels": 0.5}``); the
default is deliberately loose because shared CI runners are noisy.

The CLI front-end is ``repro report --regress``: report-only by default
(CI uploads the verdict as an artifact after bench-smoke) and a build
gate under ``--strict``. A run whose equivalence gate failed
(``equivalent: false``) is always a regression — a fast wrong kernel is
not an improvement.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median
from typing import Any

__all__ = [
    "DEFAULT_TOLERANCE",
    "DEFAULT_WINDOW",
    "RegressionReport",
    "SectionVerdict",
    "compare_latest",
    "load_history",
]

#: Prior comparable runs folded into the baseline median.
DEFAULT_WINDOW = 5

#: Allowed fractional drop below the baseline speedup before a section
#: is flagged (0.35 = latest may be up to 35% below the median).
DEFAULT_TOLERANCE = 0.35

#: Section statuses.
OK = "ok"
REGRESSION = "regression"
NO_BASELINE = "no-baseline"


@dataclass(frozen=True)
class SectionVerdict:
    """One bench section's latest value against its trailing baseline."""

    section: str
    latest: float
    baseline: float | None
    tolerance: float
    status: str
    n_baseline: int = 0

    @property
    def ratio(self) -> float | None:
        if self.baseline is None or self.baseline == 0:
            return None
        return self.latest / self.baseline


@dataclass
class RegressionReport:
    """The observatory's verdict for the newest history line."""

    sections: list[SectionVerdict] = field(default_factory=list)
    latest: dict[str, Any] = field(default_factory=dict)
    n_comparable: int = 0
    window: int = DEFAULT_WINDOW

    @property
    def regressions(self) -> list[SectionVerdict]:
        return [v for v in self.sections if v.status == REGRESSION]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "n_comparable": self.n_comparable,
            "window": self.window,
            "latest": {
                key: self.latest.get(key)
                for key in ("timestamp", "git_sha", "tiny")
            },
            "sections": [
                {
                    "section": v.section,
                    "latest": v.latest,
                    "baseline": v.baseline,
                    "ratio": v.ratio,
                    "tolerance": v.tolerance,
                    "status": v.status,
                    "n_baseline": v.n_baseline,
                }
                for v in self.sections
            ],
        }

    def render(self) -> str:
        """Human-readable verdict table."""
        head = self.latest
        lines = [
            "perf-regression observatory"
            f" (run {head.get('timestamp', '?')},"
            f" sha {str(head.get('git_sha', 'unknown'))[:12]},"
            f" baseline = median of {self.n_comparable} prior run(s),"
            f" window {self.window})"
        ]
        width = max((len(v.section) for v in self.sections), default=7)
        for v in self.sections:
            if v.baseline is None:
                detail = "no comparable baseline yet"
            else:
                detail = (
                    f"latest {v.latest:6.2f}x  baseline {v.baseline:6.2f}x  "
                    f"ratio {v.ratio:.2f}  floor {1 - v.tolerance:.2f}"
                )
            marker = "REGRESSED" if v.status == REGRESSION else v.status
            lines.append(f"  {v.section:<{width}}  {marker:<11} {detail}")
        lines.append(
            "verdict: " + ("OK" if self.ok else
                           f"{len(self.regressions)} section(s) regressed")
        )
        return "\n".join(lines)


def load_history(path: str | Path) -> list[dict[str, Any]]:
    """The parsed lines of a ``BENCH_history.jsonl`` file, oldest first.

    Blank lines are ignored; a malformed line raises ``ValueError`` with
    its line number (history files are append-only machine output, so
    corruption should fail loudly, not skew a baseline silently).
    """
    runs: list[dict[str, Any]] = []
    text = Path(path).read_text()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: malformed history line") from exc
        if not isinstance(entry, dict):
            raise ValueError(f"{path}:{lineno}: history line is not an object")
        runs.append(entry)
    return runs


def _comparable(run: dict[str, Any], latest: dict[str, Any]) -> bool:
    """Same bench and corpus shape: only like runs feed a baseline."""
    if run.get("bench") != latest.get("bench"):
        return False
    if bool(run.get("tiny")) != bool(latest.get("tiny")):
        return False
    run_refs = (run.get("config") or {}).get("n_refs")
    latest_refs = (latest.get("config") or {}).get("n_refs")
    return run_refs == latest_refs


def compare_latest(
    history: list[dict[str, Any]],
    window: int = DEFAULT_WINDOW,
    tolerance: float = DEFAULT_TOLERANCE,
    thresholds: dict[str, float] | None = None,
) -> RegressionReport:
    """Verdict for the newest run of ``history`` against its baseline.

    ``tolerance`` is the default allowed fractional drop; ``thresholds``
    overrides it per section name. Sections present in the latest run
    but absent from every baseline run report ``no-baseline`` (never a
    failure: new benches need runs before they can regress).
    """
    if not history:
        raise ValueError("history is empty: run the bench at least once")
    if window < 1:
        raise ValueError("window must be >= 1")
    latest = history[-1]
    thresholds = thresholds or {}
    prior = [run for run in history[:-1] if _comparable(run, latest)]
    prior = prior[-window:]
    report = RegressionReport(
        latest=latest, n_comparable=len(prior), window=window
    )
    for section, value in (latest.get("speedups") or {}).items():
        tol = float(thresholds.get(section, tolerance))
        samples = [
            float(run["speedups"][section])
            for run in prior
            if section in (run.get("speedups") or {})
        ]
        if not samples:
            verdict = SectionVerdict(
                section=section, latest=float(value), baseline=None,
                tolerance=tol, status=NO_BASELINE,
            )
        else:
            baseline = median(samples)
            regressed = float(value) < baseline * (1.0 - tol)
            verdict = SectionVerdict(
                section=section, latest=float(value), baseline=baseline,
                tolerance=tol, status=REGRESSION if regressed else OK,
                n_baseline=len(samples),
            )
        report.sections.append(verdict)
    if latest.get("equivalent") is False:
        report.sections.append(
            SectionVerdict(
                section="equivalence", latest=0.0, baseline=1.0,
                tolerance=0.0, status=REGRESSION, n_baseline=len(prior),
            )
        )
    return report
