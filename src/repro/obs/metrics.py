"""Process-global counters, gauges, and fixed-bucket histograms.

The registry is a flat namespace of dot-separated metric names
(``propagation.tuples_visited``, ``pairs.scored``, ``cluster.merges``).
Instruments are created on first use and are stable objects: hot call
sites bind them once at import time and pay only an attribute access plus
an add per event::

    _TUPLES = counter("propagation.tuples_visited")
    ...
    _TUPLES.inc(n)

:meth:`MetricsRegistry.reset` zeroes values *in place*, preserving
instrument identity, so pre-bound module-level instruments survive a
reset (important for benchmarks and tests that reset between runs).

Instruments are thread-safe: every mutation happens under a small
per-instrument lock, so concurrent ``inc()``/``observe()`` calls — from
pipeline threads or the background :mod:`repro.obs.sampler` — never lose
updates. Events in hot loops are still accounted in batch
(``inc(len(level))``), so the lock is taken at stage granularity, not
per tuple.

Naming conventions are documented in ``docs/observability.md``.
"""

from __future__ import annotations

import bisect
import threading

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "get_metrics",
    "histogram",
]

#: Default histogram buckets: log-spaced upper bounds suited to both
#: sub-millisecond kernel times (seconds) and small integer sizes.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
)


class Counter:
    """Monotonically increasing count of events."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self._lock = threading.Lock()

    def inc(self, value: float = 1) -> None:
        with self._lock:
            self.value += value

    def _reset(self) -> None:
        with self._lock:
            self.value = 0

    def _snapshot(self) -> float:
        return self.value


class Gauge:
    """A value that goes up and down (cache sizes, active names)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, value: float = 1) -> None:
        with self._lock:
            self.value += value

    def dec(self, value: float = 1) -> None:
        with self._lock:
            self.value -= value

    def _reset(self) -> None:
        with self._lock:
            self.value = 0

    def _snapshot(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket histogram of observed values.

    ``buckets`` are sorted upper bounds (inclusive); ``counts`` has one
    extra slot for overflow (values above the last bound). ``sum`` and
    ``count`` track the exact total alongside the bucketed distribution.
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count", "_lock")

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty sorted sequence")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum: float = 0.0
        self.count: int = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect.bisect_left(self.buckets, value)] += 1
            self.sum += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.buckets) + 1)
            self.sum = 0.0
            self.count = 0

    def _snapshot(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Named instruments, created on first use, snapshot/reset as a unit."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name))
        return g

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(name, Histogram(name, buckets))
        return h

    def snapshot(self) -> dict:
        """Plain-data view of every instrument (JSON-serializable)."""
        return {
            "counters": {n: c._snapshot() for n, c in sorted(self._counters.items())},
            "gauges": {n: g._snapshot() for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h._snapshot() for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Zero every instrument in place (identities preserved)."""
        for c in self._counters.values():
            c._reset()
        for g in self._gauges.values():
            g._reset()
        for h in self._histograms.values():
            h._reset()


_REGISTRY = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global registry."""
    return _REGISTRY


def counter(name: str) -> Counter:
    """Shorthand for ``get_metrics().counter(name)`` (bind at import time)."""
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
    return _REGISTRY.histogram(name, buckets)
