"""Structured logging setup on top of the stdlib.

All pipeline loggers live under the ``"repro"`` namespace
(:func:`get_logger` prefixes automatically), so one :func:`setup_logging`
call controls the whole tree without touching the root logger or any
host application's configuration.

``json_lines=True`` switches the handler to one JSON object per line
(timestamp, level, logger, message, plus any ``extra={...}`` fields),
which is what log shippers want; the default is a compact human format.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, TextIO

__all__ = ["JsonLinesFormatter", "get_logger", "setup_logging"]

ROOT_LOGGER_NAME = "repro"

#: LogRecord attributes that are stdlib bookkeeping, not user payload.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record; ``extra`` fields are inlined."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def setup_logging(
    level: int | str = "WARNING",
    json_lines: bool = False,
    stream: TextIO | None = None,
) -> logging.Logger:
    """Configure the ``repro`` logger tree; idempotent.

    Replaces any handler a previous ``setup_logging`` call installed, so
    repeated calls (tests, long-lived sessions) never duplicate output.
    Returns the configured root ``repro`` logger.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
        if not isinstance(level, int):
            raise ValueError(f"unknown log level {level!r}")
    logger.setLevel(level)
    logger.propagate = False

    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs", False):
            logger.removeHandler(handler)

    handler = logging.StreamHandler(stream or sys.stderr)
    handler._repro_obs = True  # type: ignore[attr-defined]
    if json_lines:
        handler.setFormatter(JsonLinesFormatter())
    else:
        formatter = logging.Formatter(
            "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
        )
        formatter.converter = time.gmtime
        handler.setFormatter(formatter)
    logger.addHandler(handler)
    return logger


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` namespace: ``get_logger("core.distinct")``."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")
