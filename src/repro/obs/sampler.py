"""Background resource telemetry: RSS, CPU time, GC activity.

A :class:`ResourceSampler` runs a daemon thread that, every ``interval``
seconds, reads the process's resident set size, cumulative CPU time, and
garbage-collector collection count, and publishes them through the
ordinary metrics registry:

- ``obs.sampler.rss_bytes`` (gauge) — resident set size at the last tick;
- ``obs.sampler.peak_rss_bytes`` (gauge) — high-water RSS
  (``ru_maxrss``, monotone over the process lifetime);
- ``obs.sampler.cpu_seconds`` (gauge) — user + system CPU time;
- ``obs.sampler.gc_collections`` (gauge) — total GC collections across
  all generations (a cheap proxy for GC pause pressure);
- ``obs.sampler.ticks`` (counter) — sampling ticks taken;
- ``obs.sampler.rss_sample_bytes`` (histogram) — the distribution of
  sampled RSS values, so a saved metrics snapshot shows *where* memory
  sat, not just where it ended.

When a tracer is active the sampler also attributes memory to stages:
each tick walks the currently *open* spans and raises their
``peak_rss_bytes`` attribute, so a ``fit`` or ``resolve`` span in the
exported trace carries the peak RSS observed while it ran. Sampling is
read-only and stage-grained (default 50 ms), so the overhead is a few
syscalls per tick.

Usage (the CLI wires this behind ``--sample-resources``)::

    with ResourceSampler(interval=0.05):
        distinct.fit(db)

All readings come from the stdlib (``/proc/self/statm`` where available,
``resource.getrusage`` otherwise) — no third-party dependency.
"""

from __future__ import annotations

import gc
import os
import resource
import sys
import threading

from repro.obs.metrics import counter, gauge, histogram
from repro.obs.trace import Span, Tracer, get_tracer

__all__ = [
    "RSS_BUCKETS",
    "ResourceSampler",
    "cpu_seconds",
    "current_rss_bytes",
    "gc_collections",
    "peak_rss_bytes",
]

#: Histogram buckets for sampled RSS: log2-spaced from 16 MiB to 16 GiB.
RSS_BUCKETS: tuple[float, ...] = tuple(float(2 ** p) for p in range(24, 35))

_TICKS = counter("obs.sampler.ticks")
_RSS = gauge("obs.sampler.rss_bytes")
_PEAK_RSS = gauge("obs.sampler.peak_rss_bytes")
_CPU = gauge("obs.sampler.cpu_seconds")
_GC = gauge("obs.sampler.gc_collections")
_RSS_HIST = histogram("obs.sampler.rss_sample_bytes", RSS_BUCKETS)

#: ``ru_maxrss`` is bytes on macOS, kilobytes everywhere else.
_MAXRSS_SCALE = 1 if sys.platform == "darwin" else 1024

_STATM = "/proc/self/statm"
_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def peak_rss_bytes() -> int:
    """High-water resident set size of this process, in bytes."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _MAXRSS_SCALE


def current_rss_bytes() -> int:
    """Resident set size right now (falls back to the peak where the
    platform offers no instantaneous reading)."""
    try:
        with open(_STATM) as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        return peak_rss_bytes()


def cpu_seconds() -> float:
    """Cumulative user + system CPU time of this process."""
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return usage.ru_utime + usage.ru_stime


def gc_collections() -> int:
    """Total garbage collections across all generations so far."""
    return sum(int(stat.get("collections", 0)) for stat in gc.get_stats())


def _raise_peak_attr(spans: list[Span], rss: int) -> None:
    """Raise ``peak_rss_bytes`` on every currently-open span.

    Only open spans (and their open descendants) are touched: a closed
    span's attribution is final. The list is copied before iteration
    because the traced thread appends children concurrently.
    """
    for sp in list(spans):
        if sp.end is not None:
            continue
        if rss > sp.attrs.get("peak_rss_bytes", 0):
            sp.attrs["peak_rss_bytes"] = rss
        _raise_peak_attr(sp.children, rss)


class ResourceSampler:
    """Daemon thread publishing resource gauges at a fixed interval.

    ``interval`` is seconds between ticks. ``tracer`` fixes the tracer
    used for per-span peak-RSS attribution; by default each tick asks
    :func:`repro.obs.trace.get_tracer`, so a sampler started before
    ``enable_tracing()`` still attributes to the spans of the eventual
    trace. ``start``/``stop`` are idempotent; the context-manager form
    stops (and takes one final sample) on exit, so short phases are
    represented even when they fit between ticks.
    """

    def __init__(self, interval: float = 0.05, tracer: Tracer | None = None) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = float(interval)
        self._fixed_tracer = tracer
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ResourceSampler":
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-obs-sampler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take one final sample (idempotent)."""
        thread = self._thread
        self._stop.set()
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        self.sample_once()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc: object) -> bool:
        self.stop()
        return False

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- sampling ------------------------------------------------------------

    def sample_once(self) -> int:
        """Take one sample now (also used by every timer tick); returns
        the sampled RSS in bytes."""
        rss = current_rss_bytes()
        _RSS.set(rss)
        _PEAK_RSS.set(peak_rss_bytes())
        _CPU.set(cpu_seconds())
        _GC.set(gc_collections())
        _RSS_HIST.observe(rss)
        _TICKS.inc()
        tracer = self._fixed_tracer if self._fixed_tracer is not None else get_tracer()
        if tracer is not None:
            _raise_peak_attr(tracer.roots, rss)
        return rss

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()
