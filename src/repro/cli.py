"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library workflow:

- ``generate``   build a synthetic world and save it (CSV database +
                 ground-truth JSON);
- ``stats``      summarize a saved database;
- ``fit``        train the per-path weight models and save them as JSON;
- ``resolve``    cluster the references of one name using saved models
                 (optionally scored/visualized against saved ground truth);
- ``experiment`` run the Table-2 evaluation (and optionally the Fig-4
                 variant comparison) over the ambiguous names;
- ``ingest``     apply a delta batch of new tuples and re-resolve the
                 ambiguous names incrementally (byte-identical to a cold
                 refit in ``--mode exact``; approximate single-reference
                 assignment in ``--mode greedy``);
- ``report``     summarize a saved trace (hot spans, phase timeline),
                 export it to standard formats (OpenMetrics text, Chrome
                 trace-event JSON), and/or run the perf-regression
                 observatory over ``BENCH_history.jsonl``.

Example session::

    python -m repro generate --out /tmp/world
    python -m repro fit --db /tmp/world --out /tmp/world/models
    python -m repro resolve --db /tmp/world --models /tmp/world/models \
        --name "Wei Wang" --truth /tmp/world/truth.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.config import DistinctConfig
from repro.core.distinct import Distinct
from repro.core.variants import FIG4_VARIANTS, variant_by_key
from repro.data.ambiguity import TABLE1_SPEC
from repro.data.generator import GeneratorConfig, generate_world
from repro.data.world import (
    load_ground_truth,
    save_ground_truth,
    world_to_database,
)
from repro.eval.experiment import run_experiment
from repro.eval.reporting import format_table
from repro.eval.runner import experiment_checkpoint, run_resilient
from repro.eval.visualize import render_clusters_text
from repro.ingest.runner import INGEST_MODES, ingest_checkpoint, ingest_resilient
from repro.ml.model import PathWeightModel
from repro.obs import (
    disable_tracing,
    enable_tracing,
    get_logger,
    get_metrics,
    setup_logging,
    span,
)
from repro.obs.export import write_trace
from repro.perf import DEFAULT_TASK_RETRIES
from repro.reldb.csvio import load_database, save_database
from repro.reldb.delta import load_delta
from repro.resilience import Deadline, ErrorCollector, Policy

#: Exit code when a run stops at its ``--deadline`` (resumable via --resume).
EXIT_DEADLINE = 3

TRUTH_FILE = "truth.json"
AMBIGUOUS_FILE = "ambiguous_names.json"

log = get_logger("cli")


def _obs_options() -> argparse.ArgumentParser:
    """The observability flags, accepted before *or* after the subcommand.

    Defaults are SUPPRESS so a flag parsed at the top level is not
    clobbered by the subparser's default; ``main`` reads them via
    ``getattr`` with the real fallbacks.
    """
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("observability")
    group.add_argument(
        "--log-level",
        default=argparse.SUPPRESS,
        choices=("DEBUG", "INFO", "WARNING", "ERROR"),
        help="log verbosity for the repro logger tree (default: WARNING)",
    )
    group.add_argument(
        "--json-logs",
        action="store_true",
        default=argparse.SUPPRESS,
        help="emit logs as JSON lines instead of human-readable text",
    )
    group.add_argument(
        "--trace-out",
        default=argparse.SUPPRESS,
        metavar="PATH",
        help="enable tracing and write the span tree + metrics JSON here",
    )
    group.add_argument(
        "--sample-resources",
        nargs="?",
        type=float,
        const=0.05,
        default=argparse.SUPPRESS,
        metavar="SECONDS",
        help="sample RSS/CPU/GC into gauges while the command runs "
             "(optional interval, default 0.05s); with --trace-out, open "
             "spans are annotated with their peak RSS",
    )
    return common


def _add_resilience_options(p: argparse.ArgumentParser) -> None:
    """Flags shared by the long-running, checkpointable commands."""
    group = p.add_argument_group("resilience")
    group.add_argument(
        "--on-error",
        choices=tuple(policy.value for policy in Policy),
        default="raise",
        help="per-item error policy: raise (default), skip, or collect "
             "(skip + report every failed item at the end)",
    )
    group.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="checkpoint file: progress is written here after every item, "
             "and an existing compatible checkpoint is resumed from",
    )
    group.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop gracefully after this wall-clock budget "
             f"(exit code {EXIT_DEADLINE}; combine with --resume to continue later)",
    )


def _add_perf_options(p: argparse.ArgumentParser, workers: bool = False) -> None:
    """Flags for the performance knobs (similarity backend, process pool)."""
    group = p.add_argument_group("performance")
    group.add_argument(
        "--backend",
        choices=("scalar", "vectorized"),
        default=None,
        help="similarity kernel backend (default: the config's, scalar); "
             "vectorized computes all pairs with chunked matrix kernels",
    )
    group.add_argument(
        "--propagation",
        choices=("scalar", "batched"),
        default=None,
        help="propagation backend (default: the config's, scalar); batched "
             "propagates all references of a name at once as sparse matrix "
             "products (implies the matrix similarity kernels)",
    )
    group.add_argument(
        "--pair-pruning",
        nargs="?",
        const="exact",
        choices=("off", "exact", "minhash"),
        default=None,
        help="candidate blocking mode (default: the config's, off). exact "
             "skips pairs with disjoint neighbor supports on every path "
             "(lossless; bare --pair-pruning means exact); minhash narrows "
             "to banded-LSH candidates first and exact-rechecks survivors",
    )
    group.add_argument(
        "--minhash-bands",
        type=int,
        default=None,
        metavar="B",
        help="LSH bands for --pair-pruning minhash (default: the config's, 32)",
    )
    group.add_argument(
        "--minhash-rows",
        type=int,
        default=None,
        metavar="R",
        help="rows per LSH band for --pair-pruning minhash "
             "(default: the config's, 2)",
    )
    group.add_argument(
        "--degradation",
        choices=("strict", "fallback"),
        default=None,
        help="what to do when a fast backend fails at runtime (default: the "
             "config's, strict); fallback recomputes the failed batch on the "
             "scalar reference path instead of failing the run",
    )
    if workers:
        group.add_argument(
            "--workers",
            type=int,
            default=1,
            metavar="N",
            help="process-pool size for the per-name loop (default 1 = "
                 "in-process; results are identical for any N)",
        )
        group.add_argument(
            "--shared-memory",
            action="store_true",
            default=None,
            help="dispatch the worker payload through one read-only "
                 "shared-memory segment instead of per-worker copies "
                 "(zero-copy; results are unchanged)",
        )
        group.add_argument(
            "--shard-strategy",
            choices=("static", "cost"),
            default=None,
            help="how the parallel loop orders dispatch (default: the "
                 "config's, static); cost dispatches cost-balanced shards "
                 "heaviest-first so idle workers steal the stragglers",
        )
        group.add_argument(
            "--task-retries",
            type=int,
            default=DEFAULT_TASK_RETRIES,
            metavar="K",
            help="re-dispatch budget per task when a pool worker dies "
                 f"(default {DEFAULT_TASK_RETRIES}); past the budget the task "
                 "fails as WorkerCrashed under the --on-error policy",
        )


def build_parser() -> argparse.ArgumentParser:
    common = _obs_options()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DISTINCT: distinguishing objects with identical names",
        parents=[common],
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    class _Sub:
        """add_parser shim attaching the shared observability options."""

        @staticmethod
        def add_parser(name: str, **kwargs):
            return subparsers.add_parser(name, parents=[common], **kwargs)

    sub = _Sub()

    p = sub.add_parser("generate", help="generate a synthetic world")
    p.add_argument("--out", required=True, help="output directory")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument(
        "--delta-papers",
        type=int,
        default=0,
        metavar="N",
        help="also grow the world by N localized papers and save them as "
             "delta.json next to the (pre-delta) database, for "
             "`repro ingest` (truth.json covers the post-delta world)",
    )
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("stats", help="summarize a saved database")
    p.add_argument("--db", required=True, help="database directory")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("fit", help="train the per-path weight models")
    p.add_argument("--db", required=True)
    p.add_argument("--out", required=True, help="model output directory")
    p.add_argument("--positive", type=int, default=1000)
    p.add_argument("--negative", type=int, default=1000)
    p.add_argument("--svm-c", type=float, default=None,
                   help="fixed SVM cost (default: cross-validated search)")
    _add_perf_options(p)
    p.set_defaults(func=cmd_fit)

    p = sub.add_parser("resolve", help="cluster the references of one name")
    p.add_argument("--db", required=True)
    p.add_argument("--models", required=True)
    p.add_argument("--name", required=True)
    p.add_argument("--min-sim", type=float, default=None)
    p.add_argument("--truth", default=None, help="ground-truth JSON to score against")
    _add_perf_options(p)
    p.set_defaults(func=cmd_resolve)

    p = sub.add_parser(
        "explain", help="decompose the similarity of one reference pair"
    )
    p.add_argument("--db", required=True)
    p.add_argument("--models", required=True)
    p.add_argument("--name", required=True)
    p.add_argument("--rows", required=True, help="two reference row ids, comma-separated")
    p.add_argument("--top", type=int, default=5)
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("candidates", help="scan for likely ambiguous names")
    p.add_argument("--db", required=True)
    p.add_argument("--min-refs", type=int, default=5)
    p.add_argument("--min-score", type=float, default=0.3)
    p.add_argument("--limit", type=int, default=20)
    p.set_defaults(func=cmd_candidates)

    p = sub.add_parser(
        "calibrate", help="pick min-sim from synthetic ambiguity (no labels)"
    )
    p.add_argument("--db", required=True)
    p.add_argument("--models", required=True)
    p.add_argument("--names", type=int, default=15, help="synthetic names to build")
    p.add_argument("--members", type=int, default=2, help="rare names pooled per synthetic name")
    p.add_argument("--seed", type=int, default=0)
    _add_resilience_options(p)
    _add_perf_options(p, workers=True)
    p.set_defaults(func=cmd_calibrate)

    p = sub.add_parser(
        "lint", help="run the project static-analysis rules (repro.analysis)"
    )
    p.add_argument(
        "--root",
        default=None,
        help="repository root to lint (default: auto-detected from the "
             "installed package: <root>/src/repro)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="lint_format",
        help="findings output format (default: text); sarif renders as "
             "GitHub code-scanning annotations when uploaded from CI",
    )
    p.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    p.add_argument(
        "--min-severity",
        choices=("info", "warning", "error"),
        default="info",
        help="hide findings below this severity (exit code always "
             "reflects error-severity findings)",
    )
    p.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the full JSON report here (CI artifact)",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    p.add_argument(
        "--sarif-out",
        default=None,
        metavar="PATH",
        help="also write a SARIF 2.1.0 report here (CI upload artifact)",
    )
    p.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="report only findings in files changed vs REF (default "
             "HEAD) plus untracked files; the analysis still runs "
             "whole-project",
    )
    p.add_argument(
        "--baseline",
        nargs="?",
        const="lint-baseline.json",
        default=None,
        metavar="PATH",
        help="suppress findings fingerprinted in this baseline file "
             "(default: lint-baseline.json); only new findings fail",
    )
    p.add_argument(
        "--write-baseline",
        nargs="?",
        const="lint-baseline.json",
        default=None,
        metavar="PATH",
        help="record the current findings as the baseline and exit 0",
    )
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "report",
        help="summarize/export a saved trace and run the perf-regression "
             "observatory",
    )
    p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="trace JSON written by --trace-out: print the hot-span table "
             "and phase timeline",
    )
    p.add_argument(
        "--top",
        type=int,
        default=10,
        help="hot-span table size (default 10)",
    )
    p.add_argument(
        "--chrome-out",
        default=None,
        metavar="PATH",
        help="also write the trace as Chrome trace-event JSON "
             "(chrome://tracing, Perfetto)",
    )
    p.add_argument(
        "--openmetrics-out",
        default=None,
        metavar="PATH",
        help="also write the trace's metrics snapshot as OpenMetrics text",
    )
    group = p.add_argument_group("perf-regression observatory")
    group.add_argument(
        "--regress",
        action="store_true",
        help="compare the newest bench-history run against its trailing "
             "baseline",
    )
    group.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        metavar="PATH",
        help="bench history file (default: BENCH_history.jsonl)",
    )
    group.add_argument(
        "--window",
        type=int,
        default=None,
        help="prior comparable runs folded into the baseline median "
             "(default 5)",
    )
    group.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional speedup drop before a section is flagged "
             "(default 0.35)",
    )
    group.add_argument(
        "--threshold",
        action="append",
        default=None,
        metavar="SECTION=FRAC",
        help="per-section tolerance override (repeatable), e.g. "
             "--threshold pair_kernels=0.5",
    )
    group.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on a regression (default: report-only)",
    )
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("experiment", help="evaluate over the ambiguous names")
    p.add_argument("--db", required=True)
    p.add_argument("--models", required=True)
    p.add_argument("--truth", required=True)
    p.add_argument("--names", default=None,
                   help="comma-separated names (default: saved ambiguous names)")
    p.add_argument("--variants", choices=("distinct", "all"), default="distinct")
    p.add_argument("--min-sim", type=float, default=None)
    _add_resilience_options(p)
    _add_perf_options(p, workers=True)
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser(
        "ingest",
        help="apply a delta batch and re-resolve the ambiguous names "
             "incrementally",
    )
    p.add_argument("--db", required=True, help="pre-delta database directory")
    p.add_argument("--models", required=True)
    p.add_argument("--truth", required=True,
                   help="post-delta ground-truth JSON to score against")
    p.add_argument("--delta", required=True,
                   help="delta JSON written by repro.reldb.save_delta")
    p.add_argument("--names", default=None,
                   help="comma-separated names (default: saved ambiguous names)")
    p.add_argument(
        "--mode",
        choices=INGEST_MODES,
        default="exact",
        help="exact (default) walks the invalidation ladder and matches a "
             "cold refit byte-for-byte; greedy assigns each new reference "
             "to the most similar existing cluster without revisiting merges",
    )
    p.add_argument("--min-sim", type=float, default=None)
    p.add_argument("--output", default=None, metavar="PATH",
                   help="write the scored results + ingest stats JSON here")
    _add_resilience_options(p)
    _add_perf_options(p, workers=True)
    p.set_defaults(func=cmd_ingest)

    return parser


# -- commands -----------------------------------------------------------------


def cmd_generate(args) -> int:
    out = Path(args.out)
    world = generate_world(GeneratorConfig(seed=args.seed, scale=args.scale))
    delta = None
    if args.delta_papers:
        from repro.data.deltas import grow_world, split_world

        grown = grow_world(world, args.delta_papers, seed=args.seed)
        split = split_world(grown, args.delta_papers, prepared=False)
        db, truth, delta = split.base, split.truth, split.delta
    else:
        db, truth = world_to_database(world, prepared=False)
    save_database(db, out)
    if delta is not None:
        from repro.reldb.delta import save_delta

        save_delta(delta, out / "delta.json")
    save_ground_truth(truth, out / TRUTH_FILE)
    (out / AMBIGUOUS_FILE).write_text(json.dumps(world.ambiguous_names))
    stats = world.stats()
    print(f"world written to {out}")
    print(
        f"  {stats['papers']} papers, {stats['authorships']} authorship rows, "
        f"{stats['distinct_names']} distinct names, "
        f"{len(world.ambiguous_names)} ambiguous names"
    )
    return 0


def _open_database(directory: str):
    from repro.data.dblp_schema import prepare_dblp_database

    db = load_database(directory)
    return prepare_dblp_database(db)


def cmd_stats(args) -> int:
    from repro.reldb.stats import format_stats

    db = _open_database(args.db)
    print(db.summary())
    print()
    print(format_stats(db))
    truth_path = Path(args.db) / TRUTH_FILE
    if truth_path.exists():
        truth = load_ground_truth(truth_path)
        ambiguous = _ambiguous_names(args.db, None)
        rows = [
            [name, len(truth.clusters_for(name)), len(truth.rows_of_name[name])]
            for name in ambiguous
        ]
        print()
        print(format_table(["name", "#entities", "#refs"], rows,
                           title="ambiguous names"))
    return 0


def cmd_fit(args) -> int:
    db = _open_database(args.db)
    config = DistinctConfig(
        n_positive=args.positive, n_negative=args.negative, svm_C=args.svm_c
    )
    config = _apply_perf_overrides(config, args)
    distinct = Distinct(config).fit(db)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    distinct.resem_model_.save(out / "resem_model.json")
    distinct.walk_model_.save(out / "walk_model.json")
    report = distinct.fit_report_
    (out / "fit_report.json").write_text(
        json.dumps(
            {
                "n_paths": report.n_paths,
                "n_training_pairs": report.n_training_pairs,
                "n_rare_names": report.n_rare_names,
                "train_accuracy_resem": report.train_accuracy_resem,
                "train_accuracy_walk": report.train_accuracy_walk,
                "seconds_total": report.seconds_total,
            },
            indent=2,
        )
    )
    print(
        f"models written to {out} "
        f"({report.n_paths} paths, train acc resem "
        f"{report.train_accuracy_resem:.3f} / walk "
        f"{report.train_accuracy_walk:.3f}, {report.seconds_total:.1f}s)"
    )
    return 0


def _apply_perf_overrides(config: DistinctConfig, args) -> DistinctConfig:
    """Apply the optional performance flags on top of ``config``.

    Uses ``getattr`` defaults because not every subcommand carries every
    perf flag (e.g. the pool flags exist only where ``--workers`` does).
    """
    if getattr(args, "backend", None):
        config = config.with_options(similarity_backend=args.backend)
    if getattr(args, "propagation", None):
        config = config.with_options(propagation_backend=args.propagation)
    if getattr(args, "pair_pruning", None) is not None:
        config = config.with_options(pair_pruning=args.pair_pruning)
    if getattr(args, "minhash_bands", None) is not None:
        config = config.with_options(minhash_bands=args.minhash_bands)
    if getattr(args, "minhash_rows", None) is not None:
        config = config.with_options(minhash_rows=args.minhash_rows)
    if getattr(args, "shared_memory", None):
        config = config.with_options(shared_memory=True)
    if getattr(args, "shard_strategy", None):
        config = config.with_options(shard_strategy=args.shard_strategy)
    if getattr(args, "degradation", None):
        config = config.with_options(degradation=args.degradation)
    return config


def _load_pipeline(
    db_dir: str,
    model_dir: str,
    min_sim: float | None,
    args=None,
) -> Distinct:
    db = _open_database(db_dir)
    models = Path(model_dir)
    config = DistinctConfig()
    if min_sim is not None:
        config = config.with_options(min_sim=min_sim)
    if args is not None:
        config = _apply_perf_overrides(config, args)
    return Distinct.from_models(
        db,
        PathWeightModel.load(models / "resem_model.json"),
        PathWeightModel.load(models / "walk_model.json"),
        config,
    )


def cmd_resolve(args) -> int:
    distinct = _load_pipeline(args.db, args.models, args.min_sim, args)
    resolution = distinct.resolve(args.name)
    print(
        f"{args.name!r}: {len(resolution.rows)} references -> "
        f"{resolution.n_clusters} objects"
    )
    if args.truth:
        truth = load_ground_truth(args.truth)
        print()
        print(render_clusters_text(resolution, truth))
    else:
        for idx, cluster in enumerate(resolution.clusters):
            print(f"  object {idx}: reference rows {sorted(cluster)}")
    return 0


def cmd_explain(args) -> int:
    from repro.core.explain import explain_pair

    distinct = _load_pipeline(args.db, args.models, None)
    parts = [p.strip() for p in args.rows.split(",") if p.strip()]
    if len(parts) != 2:
        print("--rows needs exactly two row ids, e.g. --rows 17,42")
        return 2
    explanation = explain_pair(distinct, args.name, int(parts[0]), int(parts[1]))
    print(explanation.render(k=args.top))
    return 0


def cmd_candidates(args) -> int:
    from repro.core.candidates import find_ambiguous_candidates

    db = _open_database(args.db)
    candidates = find_ambiguous_candidates(
        db, min_refs=args.min_refs, min_score=args.min_score, limit=args.limit
    )
    if not candidates:
        print("no candidate ambiguous names found")
        return 0
    rows = [
        [c.name, c.n_refs, c.n_components, c.score] for c in candidates
    ]
    print(format_table(
        ["name", "#refs", "#context components", "score"],
        rows,
        title="candidate ambiguous names (structural scan)",
        float_format="{:.2f}",
    ))
    return 0


def _resilience_kwargs(args, make_checkpoint) -> tuple[dict, ErrorCollector]:
    """Shared --on-error/--resume/--deadline plumbing for long commands."""
    collector = ErrorCollector()
    kwargs = {
        "policy": Policy.coerce(args.on_error),
        "collector": collector,
        "checkpoint": make_checkpoint(args.resume) if args.resume else None,
        "deadline": Deadline.after(args.deadline) if args.deadline else None,
    }
    return kwargs, collector


def _report_degradation(collector: ErrorCollector, interrupted: bool,
                        resume_path: str | None) -> int:
    """Print the error report / resume hint; the command's exit code."""
    if collector:
        print()
        print(collector.summary())
    if interrupted:
        print()
        hint = (
            f"re-run with --resume {resume_path} to continue"
            if resume_path
            else "re-run with --resume PATH to make interruptions resumable"
        )
        print(f"deadline exceeded before all work completed; {hint}")
        return EXIT_DEADLINE
    return 0


def cmd_calibrate(args) -> int:
    from repro.eval.calibration import (
        DEFAULT_GRID,
        calibrate_min_sim,
        calibration_checkpoint,
    )

    distinct = _load_pipeline(args.db, args.models, None, args)
    kwargs, collector = _resilience_kwargs(
        args,
        lambda path: calibration_checkpoint(
            path, grid=DEFAULT_GRID, n_names=args.names,
            members=args.members, seed=args.seed,
        ),
    )
    result = calibrate_min_sim(
        distinct, n_names=args.names, members=args.members, seed=args.seed,
        workers=args.workers,
        task_retries=args.task_retries,
        **kwargs,
    )
    rows = [
        [min_sim, f1] for min_sim, f1 in sorted(result.f1_by_min_sim.items())
    ]
    print(format_table(
        ["min-sim", "f1 on synthetic ambiguity"],
        rows,
        title=(
            f"calibration over {result.n_synthetic_names} synthetic names "
            f"({result.members_per_name} rare names pooled each)"
        ),
        float_format="{:.4f}",
    ))
    if result.n_scored < result.n_synthetic_names:
        print(
            f"\n(scored {result.n_scored} of {result.n_synthetic_names} "
            f"synthetic names)"
        )
    print(f"\nbest min-sim: {result.best_min_sim}")
    return _report_degradation(collector, result.interrupted, args.resume)


def _default_lint_root() -> Path:
    """The repo root this package was imported from (``<root>/src/repro``)."""
    return Path(__file__).resolve().parents[2]


def cmd_lint(args) -> int:
    from repro.analysis import (
        Severity,
        format_json,
        format_text,
        load_config,
        rule_catalogue,
        run_lint,
    )

    if args.list_rules:
        for entry in rule_catalogue():
            print(
                f"{entry['id']:32s} {entry['default_severity']:8s} "
                f"{entry['description']}"
            )
        return 0
    root = Path(args.root) if args.root else _default_lint_root()
    if not (root / "src" / "repro").is_dir():
        print(f"no src/repro package under {root}; pass --root", file=sys.stderr)
        return 2
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        result = run_lint(root, config=load_config(root), rules=rules)
    except ValueError as exc:  # unknown rule id, bad pyproject overrides
        print(str(exc), file=sys.stderr)
        return 2
    if args.changed is not None:
        from repro.analysis.incremental import (
            ChangedFilesError,
            changed_files,
            filter_to_changed,
        )

        try:
            result = filter_to_changed(result, changed_files(root, args.changed))
        except ChangedFilesError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.write_baseline is not None:
        from repro.analysis.baseline import write_baseline

        target = root / args.write_baseline
        payload = write_baseline(result, target)
        log.info(
            "baseline with %d fingerprint(s) written to %s",
            len(payload["fingerprints"]), target,
        )
        return 0
    if args.baseline is not None:
        from repro.analysis.baseline import (
            BaselineError,
            apply_baseline,
            load_baseline,
        )

        try:
            result = apply_baseline(result, load_baseline(root / args.baseline))
        except BaselineError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    min_severity = Severity.coerce(args.min_severity)
    if args.lint_format == "sarif":
        from repro.analysis.sarif import format_sarif

        print(format_sarif(result, min_severity))
    elif args.lint_format == "json":
        print(format_json(result, min_severity))
    else:
        print(format_text(result, min_severity))
    if args.output:
        Path(args.output).parent.mkdir(parents=True, exist_ok=True)
        Path(args.output).write_text(format_json(result))
        log.info("lint report written to %s", args.output)
    if args.sarif_out:
        from repro.analysis.sarif import format_sarif

        Path(args.sarif_out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.sarif_out).write_text(format_sarif(result))
        log.info("SARIF report written to %s", args.sarif_out)
    return 0 if result.ok else 1


def _parse_thresholds(pairs: list[str] | None) -> dict[str, float]:
    """``--threshold SECTION=FRAC`` pairs as a dict (raises on bad input)."""
    out: dict[str, float] = {}
    for pair in pairs or ():
        section, sep, value = pair.partition("=")
        if not sep or not section.strip():
            raise ValueError(f"--threshold wants SECTION=FRAC, got {pair!r}")
        out[section.strip()] = float(value)
    return out


def cmd_report(args) -> int:
    from repro.obs import (
        load_trace,
        render_hot_spans,
        render_phase_timeline,
        render_openmetrics,
        write_chrome_trace,
    )
    from repro.obs.regress import (
        DEFAULT_TOLERANCE,
        DEFAULT_WINDOW,
        compare_latest,
        load_history,
    )

    if not args.trace and not args.regress:
        print("nothing to report: pass --trace PATH and/or --regress",
              file=sys.stderr)
        return 2

    if args.trace:
        try:
            payload = load_trace(args.trace)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot read trace {args.trace}: {exc}", file=sys.stderr)
            return 2
        print(render_hot_spans(payload, top=args.top))
        print()
        print(render_phase_timeline(payload))
        if args.chrome_out:
            path = write_chrome_trace(args.chrome_out, payload)
            print(f"\nchrome trace written to {path}")
        if args.openmetrics_out:
            path = Path(args.openmetrics_out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                render_openmetrics(snapshot=payload.get("metrics") or {})
            )
            print(f"openmetrics exposition written to {path}")

    if args.regress:
        try:
            thresholds = _parse_thresholds(args.threshold)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        try:
            history = load_history(args.history)
            report = compare_latest(
                history,
                window=args.window if args.window is not None else DEFAULT_WINDOW,
                tolerance=(args.tolerance if args.tolerance is not None
                           else DEFAULT_TOLERANCE),
                thresholds=thresholds,
            )
        except (OSError, ValueError) as exc:
            print(f"cannot compare bench history {args.history}: {exc}",
                  file=sys.stderr)
            return 2
        if args.trace:
            print()
        print(report.render())
        if not report.ok and args.strict:
            return 1
    return 0


def _ambiguous_names(db_dir: str, names_arg: str | None) -> list[str]:
    if names_arg:
        return [n.strip() for n in names_arg.split(",") if n.strip()]
    saved = Path(db_dir) / AMBIGUOUS_FILE
    if saved.exists():
        return json.loads(saved.read_text())
    return [spec.name for spec in TABLE1_SPEC]


def cmd_experiment(args) -> int:
    distinct = _load_pipeline(args.db, args.models, args.min_sim, args)
    truth = load_ground_truth(args.truth)
    names = _ambiguous_names(args.db, args.names)

    min_sim = distinct.config.min_sim
    kwargs, collector = _resilience_kwargs(
        args,
        lambda path: experiment_checkpoint(path, names, "distinct", min_sim),
    )
    outcome = run_resilient(
        distinct,
        truth,
        names,
        variant_by_key("distinct"),
        min_sim,
        workers=args.workers,
        task_retries=args.task_retries,
        **kwargs,
    )
    result = outcome.result
    rows = [
        [r.name, r.n_entities, r.n_refs, r.n_clusters,
         r.scores.precision, r.scores.recall, r.scores.f1]
        for r in result.names
    ]
    rows.append(["average", "", "", "",
                 result.avg_precision, result.avg_recall, result.avg_f1])
    print(format_table(
        ["name", "#entities", "#refs", "#clusters", "precision", "recall", "f1"],
        rows, title="DISTINCT accuracy"))

    if args.variants == "all" and not outcome.interrupted:
        # The Fig-4 comparison re-scores every name per variant; it is not
        # checkpointed (see docs/robustness.md) and only runs on the names
        # that survived the DISTINCT pass.
        scored = [r.name for r in result.names]
        results = run_experiment(distinct, truth, scored, FIG4_VARIANTS)
        labels = {v.key: v.label for v in FIG4_VARIANTS}
        rows = [
            [labels[key], r.min_sim, r.avg_accuracy, r.avg_f1]
            for key, r in results.items()
        ]
        print()
        print(format_table(["variant", "min-sim", "accuracy", "f1"], rows,
                           title="variant comparison", float_format="{:.4f}"))
    return _report_degradation(collector, outcome.interrupted, args.resume)


def cmd_ingest(args) -> int:
    distinct = _load_pipeline(args.db, args.models, args.min_sim, args)
    truth = load_ground_truth(args.truth)
    names = _ambiguous_names(args.db, args.names)
    delta = load_delta(args.delta)

    min_sim = distinct.config.min_sim
    kwargs, collector = _resilience_kwargs(
        args,
        lambda path: ingest_checkpoint(path, names, delta, min_sim, args.mode),
    )
    outcome = ingest_resilient(
        distinct,
        truth,
        names,
        delta,
        min_sim,
        mode=args.mode,
        workers=args.workers,
        task_retries=args.task_retries,
        **kwargs,
    )
    result = outcome.result
    rows = [
        [r.name, r.n_entities, r.n_refs, r.n_clusters,
         r.scores.precision, r.scores.recall, r.scores.f1]
        for r in result.names
    ]
    if result.names:
        rows.append(["average", "", "", "",
                     result.avg_precision, result.avg_recall, result.avg_f1])
    print(format_table(
        ["name", "#entities", "#refs", "#clusters", "precision", "recall", "f1"],
        rows, title=f"delta ingest ({args.mode}, epoch {outcome.epoch})"))
    stats = outcome.stats
    print(
        f"\n{stats.get('names_refreshed', 0)} name(s) refreshed, "
        f"{stats.get('names_clean', 0)} clean; "
        f"{stats.get('refs_new', 0)} new + {stats.get('refs_dirty', 0)} dirty "
        f"reference(s); {stats.get('pairs_recomputed', 0)} pair(s) recomputed, "
        f"{stats.get('pairs_reused', 0)} reused; "
        f"{stats.get('merges_replayed', 0)} merge(s) replayed"
    )
    if args.output:
        from repro.eval.persistence import name_result_to_dict

        payload = {
            "mode": args.mode,
            "min_sim": min_sim,
            "epoch": outcome.epoch,
            "stats": stats,
            "names": [name_result_to_dict(r) for r in result.names],
            "avg_f1": result.avg_f1 if result.names else None,
        }
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2))
        print(f"results written to {out}")
    return _report_degradation(collector, outcome.interrupted, args.resume)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    setup_logging(
        level=getattr(args, "log_level", "WARNING"),
        json_lines=getattr(args, "json_logs", False),
    )
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        enable_tracing()
    sample_interval = getattr(args, "sample_resources", None)
    sampler = None
    if sample_interval is not None:
        from repro.obs import ResourceSampler

        sampler = ResourceSampler(interval=sample_interval).start()
    try:
        with span(args.command):
            return args.func(args)
    finally:
        if sampler is not None:
            sampler.stop()
        if trace_out:
            path = write_trace(Path(trace_out), metrics=get_metrics())
            disable_tracing()
            log.info("trace written to %s", path)


if __name__ == "__main__":
    sys.exit(main())
