"""Delta ingest: incremental transitions, dirty pairs, streaming re-resolution.

Bibliographic databases grow in batches — a new proceedings, a crawl
increment — and refitting the world per batch wastes almost all of its
work: a small delta leaves the vast majority of partner lists, profiles,
pair features, and merges untouched. This package applies a
:class:`~repro.reldb.Delta` and re-resolves only what changed, walking a
four-rung invalidation ladder (dirty rows → dirty references → dirty
pairs → dirty merges; see :mod:`repro.ingest.engine`) whose every rung
preserves bytes: the refreshed resolutions equal a cold
``prepare``/``cluster_prepared`` on the post-delta database exactly,
across similarity/propagation backends, pruning modes, and worker
counts.

- :mod:`repro.ingest.dirty` — which existing rows a delta touched;
- :mod:`repro.ingest.engine` — :class:`IngestEngine`, the per-name
  state + refresh ladder (``--mode exact``);
- :mod:`repro.ingest.greedy` — the approximate single-reference
  assigner folded in from ``repro.core.incremental``
  (``--mode greedy``);
- :mod:`repro.ingest.runner` — the resilient ``repro ingest`` loop:
  checkpoints, ``--resume``, policies, workers.

``benchmarks/bench_ingest.py`` gates the headline claim: byte-equal
results at a ≥5x wall-clock win for ≤10% deltas at bench scale
(``BENCH_ingest.json``).
"""

from repro.ingest.dirty import affected_rows, relation_sizes
from repro.ingest.engine import IngestEngine, IngestReport, NameRefresh
from repro.ingest.greedy import Assignment, extend_resolution
from repro.ingest.runner import IngestRunOutcome, ingest_checkpoint, ingest_resilient

__all__ = [
    "Assignment",
    "IngestEngine",
    "IngestReport",
    "IngestRunOutcome",
    "NameRefresh",
    "affected_rows",
    "extend_resolution",
    "ingest_checkpoint",
    "ingest_resilient",
    "relation_sizes",
]
