"""Dirty-row analysis: which existing rows a delta actually touched.

Delta ingest's first invalidation rung. A batch of appended tuples
changes the *filtered partner list* of an existing row ``i`` across a
join step iff some new row of the step's destination relation joins to
``i`` — partner lists only ever grow (indexes are append-only), so the
affected set is found by looking each new row's join value up in the
*source* relation's index. Running that probe over every step of the
configured paths **and every step's reverse** covers both propagation
directions: forward mass splits use the forward partner lists, and the
backward DP's denominators count reverse partners
(:mod:`repro.paths.propagation`).

The output feeds three consumers, all epoch-advance operations:

- :meth:`repro.perf.memo.FanoutMemo.advance` drops exactly the cached
  fanouts of affected rows;
- :meth:`repro.perf.transitions.TransitionCache.advance` decompiles
  exactly the affected rows of each compiled transition;
- :func:`repro.perf.blocking.touched_row_mask` intersects the affected
  rows with each reference's visited trace to find the *dirty
  references* — the ones whose profiles can differ from a cold
  post-delta recompute.

The probe ignores per-name exclusions, so it is a (tight) superset of
any one name's truly-changed partner lists — conservative in the safe
direction: a reference flagged dirty is recomputed and lands on the same
bytes; a clean reference provably kept its exact walk.
"""

from __future__ import annotations

from repro.obs import counter
from repro.paths.joinpath import JoinPath
from repro.reldb.database import Database
from repro.reldb.delta import AppliedDelta
from repro.reldb.joins import JoinStep

__all__ = ["affected_rows", "relation_sizes"]

_AFFECTED = counter("ingest.rows_affected")


def relation_sizes(db: Database) -> dict[str, int]:
    """Current row count of every relation (virtual ones included)."""
    return {name: len(db.table(name).rows) for name in db.schema.relations}


def _probe_steps(paths: list[JoinPath]) -> set[JoinStep]:
    """Every distinct step of ``paths``, in both directions."""
    steps: set[JoinStep] = set()
    for path in paths:
        for step in path:
            steps.add(step)
            steps.add(step.reverse())
    return steps


def affected_rows(
    db: Database, paths: list[JoinPath], applied: AppliedDelta
) -> dict[str, set[int]]:
    """Pre-delta rows whose filtered partner lists changed, per relation.

    For each probe step, an *old* source row is affected when one of the
    delta's new destination rows carries its join value. Rows the delta
    itself appended are excluded — they were never cached, compiled, or
    walked, so nothing stale exists for them.
    """
    old_size = {
        relation: len(db.table(relation).rows) - len(applied.new_rows(relation))
        for relation in applied.row_ids
    }
    affected: dict[str, set[int]] = {}
    for step in _probe_steps(paths):
        new_dst = applied.new_rows(step.dst_relation)
        if not new_dst:
            continue
        dst_table = db.table(step.dst_relation)
        dst_pos = dst_table.schema.position(step.dst_attribute)
        src_index = db.index(step.src_relation, step.src_attribute)
        src_old = old_size.get(
            step.src_relation, len(db.table(step.src_relation).rows)
        )
        bucket = affected.setdefault(step.src_relation, set())
        for row_id in new_dst:
            value = dst_table.row(row_id)[dst_pos]
            for src_row in src_index.lookup(value):
                if src_row < src_old:
                    bucket.add(src_row)
    affected = {rel: rows for rel, rows in affected.items() if rows}
    _AFFECTED.inc(sum(len(rows) for rows in affected.values()))
    return affected
