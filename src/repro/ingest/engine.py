"""The delta-ingest engine: streaming re-resolution without a cold refit.

:class:`IngestEngine` owns, per tracked name, everything a cold
:meth:`repro.core.distinct.Distinct.prepare` + ``cluster_prepared`` run
produces *plus* the state needed to invalidate it precisely:

- the reference rows, pair features, combined pair matrices, and the
  :class:`~repro.cluster.agglomerative.ClusteringResult`;
- a persistent :class:`~repro.paths.profiles.ProfileBuilder` whose
  fanout memo and transition cache are epoch-pinned;
- the per-relation *visited traces* (boolean reference × relation-row
  patterns) of every forward propagation level.

Applying a :class:`~repro.reldb.Delta` then walks the invalidation
ladder instead of recomputing the world:

1. **dirty rows** — :func:`repro.ingest.dirty.affected_rows` finds the
   existing rows whose partner lists grew; the memo and transition
   caches :meth:`advance` past them (everything else is reused
   verbatim);
2. **dirty references** — a reference is dirty iff its visited trace
   intersects the affected rows (:func:`repro.perf.blocking
   .touched_row_mask`) or it is new; clean references provably kept
   their exact profiles;
3. **dirty pairs** — only pairs touching a dirty or new reference are
   re-evaluated (through the *configured* backends, so the recomputed
   values are bit-identical to a cold run's); clean pair values are
   scattered from the previous feature arrays;
4. **dirty merges** — :func:`repro.cluster.recluster_incremental`
   replays the previous dendrogram prefix the dirty pairs cannot have
   influenced and resumes the merge loop from there.

Every rung preserves bytes, so ``ingest()`` produces resolutions equal
to a cold ``prepare``/``cluster_prepared`` on the post-delta database —
the property suite asserts full equality across backends, pruning
modes, and worker counts.

With ``workers > 1`` the per-name refresh fans out over the
fork-primed process pool (:func:`repro.perf.ordered_process_map`): the
delta is applied and all caches advanced in the parent first, workers
return compact per-name refreshes, and the parent adopts them in input
order. Worker-side cache warm-ups are lost to the parent (correctness
is epoch-guarded, warmth is not), which is the usual fork trade.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.cluster.agglomerative import AgglomerativeClusterer
from repro.cluster.incremental import recluster_incremental
from repro.core.distinct import Distinct, NamePreparation, NameResolution
from repro.core.features import (
    PairFeatures,
    all_pairs,
    compute_pair_features,
    pair_matrix,
)
from repro.core.references import exclusions_for_name, extract_references
from repro.errors import NotFittedError, ReproError
from repro.obs import counter, get_logger, span
from repro.paths.batch import batch_profile_matrices
from repro.paths.profiles import ProfileBuilder
from repro.perf import (
    DEFAULT_TASK_RETRIES,
    RemoteTaskError,
    TransitionCache,
    ordered_process_map,
    touched_row_mask,
)
from repro.reldb.delta import AppliedDelta, Delta, apply_delta
from repro.resilience.faults import fault_check

from repro.ingest.dirty import affected_rows, relation_sizes

__all__ = ["IngestEngine", "IngestReport", "NameRefresh"]

log = get_logger("ingest.engine")

_DELTAS = counter("ingest.deltas_applied")
_NAMES_REFRESHED = counter("ingest.names_refreshed")
_NAMES_CLEAN = counter("ingest.names_clean")
_REFS_DIRTY = counter("ingest.refs_dirty")
_PAIRS_RECOMPUTED = counter("ingest.pairs_recomputed")
_PAIRS_REUSED = counter("ingest.pairs_reused")


@dataclass
class NameRefresh:
    """One name's post-delta state: the resolution plus refresh accounting.

    Picklable and self-contained, so parallel ingest can compute it in a
    worker and :meth:`IngestEngine.adopt` it in the parent.
    """

    name: str
    resolution: NameResolution
    traces: dict[str, sparse.csr_matrix]
    n_refs_dirty: int
    n_refs_new: int
    n_pairs_recomputed: int
    n_pairs_reused: int
    n_merges_replayed: int
    refreshed: bool = True


@dataclass
class IngestReport:
    """What one :meth:`IngestEngine.ingest` call did."""

    epoch: int
    n_rows_added: int
    refreshes: list[NameRefresh] = field(default_factory=list)

    @property
    def names_refreshed(self) -> list[str]:
        return [r.name for r in self.refreshes if r.refreshed]

    @property
    def names_clean(self) -> list[str]:
        return [r.name for r in self.refreshes if not r.refreshed]

    def resolution(self, name: str) -> NameResolution:
        for refresh in self.refreshes:
            if refresh.name == name:
                return refresh.resolution
        raise KeyError(name)

    def totals(self) -> dict[str, int]:
        return {
            "names_refreshed": len(self.names_refreshed),
            "names_clean": len(self.names_clean),
            "refs_dirty": sum(r.n_refs_dirty for r in self.refreshes),
            "refs_new": sum(r.n_refs_new for r in self.refreshes),
            "pairs_recomputed": sum(r.n_pairs_recomputed for r in self.refreshes),
            "pairs_reused": sum(r.n_pairs_reused for r in self.refreshes),
            "merges_replayed": sum(r.n_merges_replayed for r in self.refreshes),
        }


@dataclass
class _NameState:
    """Everything the engine keeps per tracked name."""

    name: str
    rows: list[int]
    object_rows: list[int]
    builder: ProfileBuilder
    features: PairFeatures | None
    resolution: NameResolution
    traces: dict[str, sparse.csr_matrix]


@dataclass
class _RefreshPlan:
    """Per-name work order computed when a delta is applied."""

    new_rows: list[int]
    dirty_idx: np.ndarray  # positions (== leaf indices) of dirty old refs
    rebuild: bool = False  # exclusions changed: refresh from scratch

    @property
    def needed(self) -> bool:
        return self.rebuild or bool(self.new_rows) or len(self.dirty_idx) > 0


def _refresh_task(payload, name: str) -> NameRefresh:
    """Worker body for parallel ingest: refresh one name on the forked state."""
    (engine,) = payload
    return engine.refresh(name)


class IngestEngine:
    """Incremental resolution of a fixed set of names across deltas.

    ``distinct`` must be fitted (or built from models); its models are
    held fixed across deltas — the byte-identity contract is against a
    cold ``prepare``/``cluster_prepared`` with the same models on the
    post-delta database. ``min_sim``/``measure``/``supervised`` mirror
    :meth:`~repro.core.distinct.Distinct.cluster_prepared`.
    """

    def __init__(
        self,
        distinct: Distinct,
        min_sim: float | None = None,
        measure: str = "combined",
        supervised: bool = True,
    ) -> None:
        if distinct.db is None or distinct.paths_ is None:
            raise NotFittedError("fit the pipeline before building an IngestEngine")
        self.distinct = distinct
        self.min_sim = distinct.config.min_sim if min_sim is None else min_sim
        self.measure = measure
        self.supervised = supervised
        self._states: dict[str, _NameState] = {}
        self._plans: dict[str, _RefreshPlan] = {}

    @property
    def db(self):
        return self.distinct.db

    @property
    def names(self) -> list[str]:
        return list(self._states)

    def resolution(self, name: str) -> NameResolution:
        return self._state(name).resolution

    def _state(self, name: str) -> _NameState:
        state = self._states.get(name)
        if state is None:
            raise ReproError(f"name {name!r} is not tracked; call resolve() first")
        return state

    # -- cold start --------------------------------------------------------

    def resolve(self, name: str) -> NameResolution:
        """Cold-start one name: resolve it and retain the incremental state.

        Bit-identical to ``distinct.cluster_prepared(distinct.prepare(name))``
        — the builder gains a persistent epoch-pinned transition cache and
        a trace pass, neither of which affects values.
        """
        state = self._cold_state(name)
        self._states[name] = state
        return state.resolution

    def _builder(self, name: str) -> ProfileBuilder:
        distinct = self.distinct
        return ProfileBuilder(
            self.db,
            distinct.paths_,
            exclusions_for_name(self.db, name, distinct.config),
            memo_size=distinct.config.propagation_memo_size,
            transition_cache=TransitionCache(epoch=self.db.epoch),
        )

    def _cold_state(self, name: str) -> _NameState:
        distinct = self.distinct
        refs = extract_references(self.db, name, distinct.config)
        builder = self._builder(name)
        if len(refs.rows) <= 1:
            prep = NamePreparation(name=name, rows=list(refs.rows), features=None)
            resolution = distinct.cluster_prepared(
                prep, self.min_sim, self.measure, self.supervised
            )
            return _NameState(
                name, list(refs.rows), list(refs.object_rows), builder,
                None, resolution, {},
            )
        traces: dict[str, sparse.csr_matrix] = {}
        # The trace pass doubles as the transition-cache warm-up; with
        # scalar propagation it is extra work that never feeds values.
        batch_profile_matrices(
            builder.engine,
            distinct.paths_,
            refs.rows,
            cache=builder.transition_cache,
            trace=traces,
        )
        features = self._compute_features(builder, refs.rows, all_pairs(refs.rows))
        prep = NamePreparation(name=name, rows=list(refs.rows), features=features)
        resolution = distinct.cluster_prepared(
            prep, self.min_sim, self.measure, self.supervised
        )
        return _NameState(
            name, list(refs.rows), list(refs.object_rows), builder,
            features, resolution, traces,
        )

    def _compute_features(
        self,
        builder: ProfileBuilder,
        rows: list[int],
        pairs: list[tuple[int, int]],
    ) -> PairFeatures:
        """Pair features through the configured backends — the exact code
        path :meth:`Distinct.prepare` takes, so values are bit-identical."""
        config = self.distinct.config
        if config.propagation_backend == "scalar":
            builder.warm(rows)
        return compute_pair_features(
            builder,
            pairs,
            backend=config.similarity_backend,
            pair_chunk=config.similarity_pair_chunk,
            propagation=config.propagation_backend,
            prune=config.pair_pruning,
            degradation=config.degradation,
            minhash_bands=config.minhash_bands,
            minhash_rows=config.minhash_rows,
            minhash_seed=config.seed,
        )

    # -- delta application -------------------------------------------------

    def apply(self, delta: Delta) -> AppliedDelta:
        """Apply ``delta``, advance every tracked cache, plan the refreshes.

        After this returns, :meth:`pending` names the states whose
        resolutions must be recomputed (call :meth:`refresh` for each, in
        any order or in parallel); every other tracked name is provably
        unchanged. A second ``apply`` before the pending refreshes run
        would interleave epochs, so it raises.
        """
        if self._plans:
            raise ReproError(
                "previous delta has pending refreshes; refresh() them first"
            )
        db = self.db
        with span("ingest.apply", n_rows=delta.n_rows(), epoch=db.epoch + 1) as sp:
            applied = apply_delta(db, delta)
            affected = affected_rows(db, self.distinct.paths_, applied)
            sizes = relation_sizes(db)
            for state in self._states.values():
                self._advance_state(state, applied, affected, sizes)
            self._plans = {
                name: self._plan(state, affected)
                for name, state in self._states.items()
            }
            sp.annotate(
                n_affected=sum(len(rows) for rows in affected.values()),
                n_pending=len(self.pending()),
            )
        _DELTAS.inc()
        return applied

    def _advance_state(
        self,
        state: _NameState,
        applied: AppliedDelta,
        affected: dict[str, set[int]],
        sizes: dict[str, int],
    ) -> None:
        builder = state.builder
        if builder.memo is not None:
            builder.memo.advance(applied.epoch, affected)
        if builder.transition_cache is not None:
            builder.transition_cache.advance(applied.epoch, affected, sizes)

    def _plan(self, state: _NameState, affected: dict[str, set[int]]) -> _RefreshPlan:
        refs = extract_references(self.db, state.name, self.distinct.config)
        if list(refs.object_rows) != state.object_rows:
            # The name gained an object row: exclusions change for every
            # reference, so nothing survives — refresh from scratch.
            return _RefreshPlan(new_rows=[], dirty_idx=np.empty(0, np.int64),
                                rebuild=True)
        old = set(state.rows)
        new_rows = [row for row in refs.rows if row not in old]
        dirty_mask = np.zeros(len(state.rows), dtype=bool)
        for relation, pattern in state.traces.items():
            columns = affected.get(relation)
            if columns:
                # lint: allow[determinism/unkeyed-sort] row ids are plain int
                dirty_mask |= touched_row_mask(pattern, np.asarray(sorted(columns)))
        return _RefreshPlan(
            new_rows=new_rows, dirty_idx=np.flatnonzero(dirty_mask)
        )

    def pending(self) -> list[str]:
        """Tracked names whose resolutions the last delta invalidated."""
        return [name for name, plan in self._plans.items() if plan.needed]

    # -- refresh -----------------------------------------------------------

    def refresh(self, name: str) -> NameRefresh:
        """Re-resolve one name along the invalidation ladder.

        Requires a preceding :meth:`apply`. Clean names return their
        unchanged resolution with ``refreshed=False``.
        """
        state = self._state(name)
        plan = self._plans.get(name)
        if plan is None:
            raise ReproError(f"no pending delta for {name!r}; call apply() first")
        fault_check("ingest.refresh", name)
        if not plan.needed:
            del self._plans[name]
            _NAMES_CLEAN.inc()
            return NameRefresh(
                name=name, resolution=state.resolution, traces=state.traces,
                n_refs_dirty=0, n_refs_new=0, n_pairs_recomputed=0,
                n_pairs_reused=state.features.n_pairs if state.features else 0,
                n_merges_replayed=0, refreshed=False,
            )
        with span(
            "ingest.refresh",
            name=name,
            n_dirty=len(plan.dirty_idx),
            n_new=len(plan.new_rows),
        ) as sp:
            refresh = self._refresh_state(state, plan)
            sp.annotate(
                pairs_recomputed=refresh.n_pairs_recomputed,
                merges_replayed=refresh.n_merges_replayed,
            )
        self._install(state, refresh)
        del self._plans[name]
        _NAMES_REFRESHED.inc()
        _REFS_DIRTY.inc(refresh.n_refs_dirty)
        _PAIRS_RECOMPUTED.inc(refresh.n_pairs_recomputed)
        _PAIRS_REUSED.inc(refresh.n_pairs_reused)
        return refresh

    def refresh_all(self, workers: int = 1,
                    task_retries: int = DEFAULT_TASK_RETRIES) -> list[NameRefresh]:
        """Refresh every pending name; clean names report through too."""
        order = [name for name in self._states if name in self._plans]
        if workers <= 1 or len(self.pending()) <= 1:
            return [self.refresh(name) for name in order]
        pending = set(self.pending())
        results: dict[str, NameRefresh] = {
            name: self.refresh(name) for name in order if name not in pending
        }
        # Counters for the worker-side refreshes arrive through the
        # pool's per-worker registry merge — no parent-side double count.
        outcome_iter = ordered_process_map(
            _refresh_task,
            (self,),
            [name for name in order if name in pending],
            workers=workers,
            task_retries=task_retries,
        )
        for task in outcome_iter:
            if task.error is not None:
                raise RemoteTaskError(task.error)
            refresh = task.value
            self.adopt(refresh)
            results[refresh.name] = refresh
        return [results[name] for name in order]

    def _install(self, state: _NameState, refresh: NameRefresh) -> None:
        state.rows = list(refresh.resolution.rows)
        state.features = refresh.resolution.features
        state.resolution = refresh.resolution
        state.traces = refresh.traces

    def adopt(self, refresh: NameRefresh) -> None:
        """Install a worker-computed refresh into the parent engine.

        The parent's epoch-pinned caches were already advanced by
        :meth:`apply`, so correctness only needs the results copied over
        and any possibly-stale profile-cache entries dropped; the
        worker-side recomputations (profiles, transition rows) are lost
        to the parent — a warmth cost, never a value change.
        """
        state = self._states.get(refresh.name)
        if state is None:
            return
        plan = self._plans.pop(refresh.name, None)
        if not refresh.refreshed:
            return
        if plan is not None and plan.rebuild:
            state.builder = self._builder(refresh.name)
            state.object_rows = list(
                extract_references(
                    self.db, refresh.name, self.distinct.config
                ).object_rows
            )
        else:
            state.builder.evict(set(state.rows) | set(refresh.resolution.rows))
        self._install(state, refresh)

    def ingest(self, delta: Delta, workers: int = 1) -> IngestReport:
        """Apply ``delta`` and refresh every tracked name."""
        n_rows = delta.n_rows()
        applied = self.apply(delta)
        refreshes = self.refresh_all(workers=workers)
        return IngestReport(
            epoch=applied.epoch, n_rows_added=n_rows, refreshes=refreshes
        )

    # -- the ladder --------------------------------------------------------

    def _refresh_state(self, state: _NameState, plan: _RefreshPlan) -> NameRefresh:
        distinct = self.distinct
        refs = extract_references(self.db, state.name, distinct.config)
        rows_new = list(refs.rows)
        n_old = len(state.rows)

        full = (
            plan.rebuild
            or n_old <= 1
            or state.resolution.clustering is None
            or state.features is None
            or rows_new[:n_old] != state.rows
        )
        if len(rows_new) <= 1:
            prep = NamePreparation(name=state.name, rows=rows_new, features=None)
            resolution = distinct.cluster_prepared(
                prep, self.min_sim, self.measure, self.supervised
            )
            return NameRefresh(
                name=state.name, resolution=resolution, traces={},
                n_refs_dirty=len(plan.dirty_idx), n_refs_new=len(plan.new_rows),
                n_pairs_recomputed=0, n_pairs_reused=0, n_merges_replayed=0,
            )
        if full:
            return self._full_refresh(state, plan, rows_new)

        builder = state.builder
        dirty_origins = [state.rows[int(i)] for i in plan.dirty_idx] + plan.new_rows
        builder.evict(dirty_origins)

        # Fresh traces (and transition-cache warm-up) for the dirty slice.
        refreshed_traces: dict[str, sparse.csr_matrix] = {}
        batch_profile_matrices(
            builder.engine,
            distinct.paths_,
            dirty_origins,
            cache=builder.transition_cache,
            trace=refreshed_traces,
        )

        pairs_new = all_pairs(rows_new)
        old_position = {pair: k for k, pair in enumerate(state.features.pairs)}
        dirty_rows_set = set(dirty_origins)
        recompute = [
            k for k, (a, b) in enumerate(pairs_new)
            if a in dirty_rows_set or b in dirty_rows_set
        ]
        recompute_set = set(recompute)

        n_paths = len(distinct.paths_)
        resem = np.zeros((len(pairs_new), n_paths))
        walk = np.zeros((len(pairs_new), n_paths))
        reused = 0
        for k, pair in enumerate(pairs_new):
            if k in recompute_set:
                continue
            old_k = old_position[pair]
            resem[k] = state.features.resemblance[old_k]
            walk[k] = state.features.walk[old_k]
            reused += 1
        if recompute:
            sub = self._compute_features(
                builder, dirty_origins, [pairs_new[k] for k in recompute]
            )
            idx = np.asarray(recompute, dtype=np.int64)
            resem[idx] = sub.resemblance
            walk[idx] = sub.walk
        features = PairFeatures(
            paths=distinct.paths_, pairs=pairs_new, resemblance=resem, walk=walk
        )

        resolution, replayed = self._recluster(
            state, rows_new, features, plan.dirty_idx, n_old
        )
        traces = _merge_traces(
            state.traces, refreshed_traces, state.rows, rows_new, dirty_origins
        )
        return NameRefresh(
            name=state.name,
            resolution=resolution,
            traces=traces,
            n_refs_dirty=len(plan.dirty_idx),
            n_refs_new=len(plan.new_rows),
            n_pairs_recomputed=len(recompute),
            n_pairs_reused=reused,
            n_merges_replayed=replayed,
        )

    def _full_refresh(
        self, state: _NameState, plan: _RefreshPlan, rows_new: list[int]
    ) -> NameRefresh:
        """Cold-equivalent recompute of one name (fresh builder when the
        exclusions changed — the cached partner lists bake the old ones in)."""
        distinct = self.distinct
        builder = self._builder(state.name) if plan.rebuild else state.builder
        if not plan.rebuild:
            builder.evict(rows_new + state.rows)
        traces: dict[str, sparse.csr_matrix] = {}
        batch_profile_matrices(
            builder.engine,
            distinct.paths_,
            rows_new,
            cache=builder.transition_cache,
            trace=traces,
        )
        features = self._compute_features(builder, rows_new, all_pairs(rows_new))
        prep = NamePreparation(name=state.name, rows=rows_new, features=features)
        resolution = distinct.cluster_prepared(
            prep, self.min_sim, self.measure, self.supervised
        )
        state.builder = builder
        state.object_rows = list(
            extract_references(self.db, state.name, distinct.config).object_rows
        )
        return NameRefresh(
            name=state.name,
            resolution=resolution,
            traces=traces,
            n_refs_dirty=len(plan.dirty_idx),
            n_refs_new=len(plan.new_rows),
            n_pairs_recomputed=len(features.pairs),
            n_pairs_reused=0,
            n_merges_replayed=0,
        )

    def _recluster(
        self,
        state: _NameState,
        rows_new: list[int],
        features: PairFeatures,
        dirty_idx: np.ndarray,
        n_old: int,
    ) -> tuple[NameResolution, int]:
        """The dirty-merge rung: replay + resume instead of a fresh heap.

        Mirrors :meth:`Distinct.cluster_prepared` exactly except that the
        merge loop starts from the replayed prefix —
        :func:`recluster_incremental`'s byte-identity argument covers the
        difference.
        """
        distinct = self.distinct
        fault_check("cluster", state.name)
        resem_vals, walk_vals = distinct._combined_pair_values(
            features, self.supervised
        )
        resem_matrix = pair_matrix(rows_new, features.pairs, resem_vals)
        walk_matrix = pair_matrix(rows_new, features.pairs, walk_vals)
        measure_obj = Distinct._make_measure(self.measure, resem_matrix, walk_matrix)
        clusterer = AgglomerativeClusterer(min_sim=self.min_sim)
        result, replayed = recluster_incremental(
            measure_obj,
            state.resolution.clustering,
            [int(i) for i in dirty_idx],
            clusterer,
            n_old,
        )
        clusters = [{rows_new[i] for i in cluster} for cluster in result.clusters]
        resolution = NameResolution(
            name=state.name,
            rows=list(rows_new),
            clusters=clusters,
            clustering=result,
            features=features,
            resem_matrix=resem_matrix,
            walk_matrix=walk_matrix,
        )
        return resolution, replayed


def _merge_traces(
    old: dict[str, sparse.csr_matrix],
    refreshed: dict[str, sparse.csr_matrix],
    rows_old: list[int],
    rows_new: list[int],
    refreshed_rows: list[int],
) -> dict[str, sparse.csr_matrix]:
    """Stitch post-delta traces: refreshed rows replace, clean rows carry.

    Clean references kept their exact walks, so their old pattern rows are
    still correct — only the column space (relation row count) grew, which
    a CSR absorbs as a shape change. Row order follows ``rows_new``
    (old rows are a prefix; new rows append).
    """
    refreshed_pos = {row: i for i, row in enumerate(refreshed_rows)}
    out: dict[str, sparse.csr_matrix] = {}
    for relation in dict.fromkeys((*old, *refreshed)):
        old_p = old.get(relation)
        new_p = refreshed.get(relation)
        width = max(
            old_p.shape[1] if old_p is not None else 0,
            new_p.shape[1] if new_p is not None else 0,
        )
        blocks = []
        n_old_rows = 0
        if old_p is not None:
            blocks.append(_pad_columns(old_p, width))
            n_old_rows = old_p.shape[0]
        if new_p is not None:
            blocks.append(_pad_columns(new_p, width))
        combined = sparse.vstack(blocks, format="csr") if blocks else None
        selector = np.empty(len(rows_new), dtype=np.int64)
        for idx, row in enumerate(rows_new):
            pos = refreshed_pos.get(row)
            selector[idx] = n_old_rows + pos if pos is not None else idx
        out[relation] = combined[selector].tocsr()
    return out


def _pad_columns(pattern: sparse.csr_matrix, width: int) -> sparse.csr_matrix:
    if pattern.shape[1] == width:
        return pattern
    return sparse.csr_matrix(
        (pattern.data, pattern.indices, pattern.indptr),
        shape=(pattern.shape[0], width),
    )
