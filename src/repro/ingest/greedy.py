"""Greedy single-reference assignment: the ingest fast path.

The exact delta-ingest ladder (:mod:`repro.ingest.engine`) reproduces a
cold refit byte-for-byte; this module is the cheap approximation the
``--mode greedy`` switch selects: assign each new reference to the most
similar existing cluster (same composite measure, same ``min_sim``
cutoff) without revisiting any previous merge. It is the online
counterpart of §4.2's incremental aggregates — and the original seed
implementation, folded in from ``repro.core.incremental`` (which remains
as a compat shim).

Greedy assignment can disagree with a cold refit (an arrival that would
have changed an early merge is pinned to the old dendrogram); the
equivalence tests check that references the batch engine placed
confidently are assigned identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distinct import Distinct, NameResolution
from repro.core.features import compute_pair_features
from repro.core.references import exclusions_for_name
from repro.errors import NotFittedError
from repro.obs import counter
from repro.paths.profiles import ProfileBuilder
from repro.similarity.combine import geometric_mean

__all__ = ["Assignment", "extend_resolution"]

_ASSIGNED = counter("ingest.greedy.assigned")
_NEW_CLUSTERS = counter("ingest.greedy.new_clusters")


@dataclass
class Assignment:
    """Where one new reference went."""

    row: int
    cluster_index: int
    similarity: float
    created_new_cluster: bool


def extend_resolution(
    distinct: Distinct,
    resolution: NameResolution,
    new_rows: list[int],
    min_sim: float | None = None,
    backend: str | None = None,
) -> tuple[NameResolution, list[Assignment]]:
    """Assign ``new_rows`` to the clusters of an existing resolution.

    Returns a new :class:`NameResolution` (the input is not mutated) and the
    per-row assignment record. New rows are processed in order; a row
    assigned to a cluster is visible to subsequent rows.

    ``backend`` selects the similarity kernels for the new rows' pair
    features; ``None`` follows the pipeline's configured
    ``similarity_backend``. The per-tuple fanout memo is enabled exactly
    as at resolve time.
    """
    if distinct.db is None or distinct.paths_ is None:
        raise NotFittedError("fit the pipeline before extending a resolution")
    if resolution.resem_matrix is None:
        raise ValueError("resolution carries no pair matrices; re-resolve the name")
    config = distinct.config
    min_sim = config.min_sim if min_sim is None else min_sim
    backend = config.similarity_backend if backend is None else backend

    builder = ProfileBuilder(
        distinct.db,
        distinct.paths_,
        exclusions_for_name(distinct.db, resolution.name, config),
        memo_size=config.propagation_memo_size,
    )

    rows = list(resolution.rows)
    clusters = [set(c) for c in resolution.clusters]
    index_of = {row: i for i, row in enumerate(rows)}
    resem = resolution.resem_matrix.copy()
    walk = resolution.walk_matrix.copy()
    assignments: list[Assignment] = []

    for new_row in new_rows:
        if new_row in index_of:
            raise ValueError(f"reference row {new_row} already resolved")
        pairs = [(new_row, row) for row in rows]
        features = compute_pair_features(
            builder,
            pairs,
            backend=backend,
            pair_chunk=config.similarity_pair_chunk,
        )
        resem_vals, walk_vals = distinct._combined_pair_values(features, True)

        best_cluster = -1
        best_sim = 0.0
        for idx, cluster in enumerate(clusters):
            # pair k corresponds to rows[k], so cluster members map to their
            # positions in `rows`.
            member_idx = [index_of[r] for r in cluster]
            r_sum = float(sum(resem_vals[i] for i in member_idx))
            w_sum = float(sum(walk_vals[i] for i in member_idx))
            avg_resem = r_sum / len(cluster)
            coll_walk = 0.5 * (w_sum / 1 + w_sum / len(cluster))
            sim = geometric_mean(avg_resem, coll_walk)
            if sim > best_sim:
                best_sim = sim
                best_cluster = idx

        created = best_cluster < 0 or best_sim < min_sim
        if created:
            clusters.append({new_row})
            best_cluster = len(clusters) - 1
            _NEW_CLUSTERS.inc()
        else:
            clusters[best_cluster].add(new_row)
        _ASSIGNED.inc()
        assignments.append(
            Assignment(new_row, best_cluster, best_sim, created_new_cluster=created)
        )

        # Grow the pair matrices so later rows see this one.
        n = len(rows)
        resem = np.pad(resem, ((0, 1), (0, 1)))
        walk = np.pad(walk, ((0, 1), (0, 1)))
        for i in range(n):
            resem[n, i] = resem[i, n] = resem_vals[i]
            walk[n, i] = walk[i, n] = walk_vals[i]
        index_of[new_row] = n
        rows.append(new_row)

    extended = NameResolution(
        name=resolution.name,
        rows=rows,
        clusters=clusters,
        clustering=resolution.clustering,
        features=None,
        resem_matrix=resem,
        walk_matrix=walk,
    )
    return extended, assignments
