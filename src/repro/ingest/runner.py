"""Resilient delta-ingest runner: the engine behind ``repro ingest``.

Wraps the delta-ingest engine in the same machinery
:func:`repro.eval.runner.run_resilient` gives the experiment loop:
per-name failure policies, a wall-clock deadline, atomic per-name
checkpoints with ``--resume``, and process-pool workers — while keeping
the byte-identity contract (a resumed or parallel run assembles the
same results as an uninterrupted serial one; completed names are loaded
from the checkpoint, remaining names re-ingested exactly as a fresh run
would, because every name's cold-resolve → apply → refresh pipeline is
deterministic and independent of the other names).

The run has two phases. *Cold phase*: each not-yet-checkpointed name is
resolved on the pre-delta database, building the engine state a
long-running service would already hold. *Ingest phase*: the delta is
applied once, caches advance, and each name refreshes down the
invalidation ladder (``mode="exact"``) or through the greedy
single-reference assigner (``mode="greedy"``), then scores against the
post-delta ground truth. Checkpoints record scored names after the
ingest phase, so a crash at any point loses at most one name's work on
resume.

The checkpoint signature includes a fingerprint of the delta's rows:
resuming the store with a different delta raises
:class:`~repro.errors.CheckpointError` instead of silently mixing
epochs.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

from repro.core.distinct import Distinct, NameResolution
from repro.core.references import extract_references
from repro.data.world import GroundTruth
from repro.errors import DeadlineExceeded
from repro.eval.experiment import ExperimentResult, NameResult, score_resolution
from repro.eval.persistence import name_result_from_dict, name_result_to_dict
from repro.obs import counter, get_logger, histogram, span
from repro.perf import DEFAULT_TASK_RETRIES, RemoteTaskError, ordered_process_map
from repro.reldb.delta import Delta
from repro.resilience import (
    CheckpointStore,
    Deadline,
    ErrorCollector,
    Policy,
    guard,
)

from repro.ingest.engine import IngestEngine, NameRefresh
from repro.ingest.greedy import extend_resolution

__all__ = [
    "INGEST_MODES",
    "IngestRunOutcome",
    "delta_fingerprint",
    "ingest_checkpoint",
    "ingest_resilient",
]

log = get_logger("ingest.runner")

INGEST_MODES = ("exact", "greedy")

_NAMES_INGESTED = counter("ingest.names_scored")
_NAMES_FAILED = counter("ingest.names_failed")
_NAME_SECONDS = histogram("ingest.name_seconds")


def delta_fingerprint(delta: Delta) -> str:
    """Stable content hash of a delta's rows (checkpoint signature part)."""
    canonical = json.dumps(
        {rel: [list(row) for row in rows] for rel, rows in delta.rows.items()},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def ingest_checkpoint(
    path, names: list[str], delta: Delta, min_sim: float, mode: str
) -> CheckpointStore:
    """The checkpoint store for one ``ingest`` run's parameters."""
    return CheckpointStore(
        path,
        kind="ingest",
        signature={
            "names": list(names),
            "delta": delta_fingerprint(delta),
            "min_sim": min_sim,
            "mode": mode,
        },
    )


@dataclass
class IngestRunOutcome:
    """What a resilient ingest run produced, and how it ended."""

    result: ExperimentResult
    errors: ErrorCollector = field(default_factory=ErrorCollector)
    interrupted: bool = False
    n_total: int = 0
    epoch: int | None = None
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def n_completed(self) -> int:
        return len(self.result.names)

    @property
    def complete(self) -> bool:
        return not self.interrupted and self.n_completed + len(self.errors) >= self.n_total


def _ingest_name_task(payload, name: str) -> tuple[NameRefresh, NameResult]:
    """Worker body for parallel exact-mode ingest: refresh + score one name."""
    engine, truth = payload
    refresh = engine.refresh(name)
    return refresh, score_resolution(refresh.resolution, truth)


def _accumulate(stats: dict[str, int], refresh: NameRefresh) -> None:
    stats["names_refreshed" if refresh.refreshed else "names_clean"] += 1
    stats["refs_dirty"] += refresh.n_refs_dirty
    stats["refs_new"] += refresh.n_refs_new
    stats["pairs_recomputed"] += refresh.n_pairs_recomputed
    stats["pairs_reused"] += refresh.n_pairs_reused
    stats["merges_replayed"] += refresh.n_merges_replayed


def ingest_resilient(
    distinct: Distinct,
    truth: GroundTruth,
    names: list[str],
    delta: Delta,
    min_sim: float,
    mode: str = "exact",
    measure: str = "combined",
    supervised: bool = True,
    policy: Policy | str = Policy.RAISE,
    collector: ErrorCollector | None = None,
    checkpoint: CheckpointStore | None = None,
    deadline: Deadline | None = None,
    workers: int = 1,
    task_retries: int = DEFAULT_TASK_RETRIES,
) -> IngestRunOutcome:
    """Cold-resolve ``names``, apply ``delta``, refresh, and score.

    ``distinct.db`` must hold the *pre-delta* database; ``truth`` the
    *post-delta* ground truth (the delta's new references belong to
    known entities). ``mode="exact"`` walks the byte-identical ladder;
    ``mode="greedy"`` runs the approximate single-reference assigner
    (always serial — its whole point is being cheap). ``workers > 1``
    fans the exact-mode refreshes out over a fork-primed pool with
    results assembled in input order.
    """
    if mode not in INGEST_MODES:
        raise ValueError(f"mode must be one of {INGEST_MODES}, got {mode!r}")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    policy = Policy.coerce(policy)
    collector = collector if collector is not None else ErrorCollector()
    result = ExperimentResult(variant_key=f"ingest:{mode}", min_sim=min_sim)
    stats = {
        "names_refreshed": 0, "names_clean": 0, "refs_dirty": 0, "refs_new": 0,
        "pairs_recomputed": 0, "pairs_reused": 0, "merges_replayed": 0,
    }
    outcome = IngestRunOutcome(
        result=result, errors=collector, n_total=len(names), stats=stats
    )

    done: dict[str, NameResult] = {}
    if checkpoint is not None and checkpoint.exists():
        payload = checkpoint.load()  # None: corrupt file was quarantined
        if payload is not None:
            done = {
                entry["name"]: name_result_from_dict(entry)
                for entry in payload["completed"]
            }

    def save_progress(complete: bool = False) -> None:
        if checkpoint is not None:
            checkpoint.save(
                [name_result_to_dict(r) for r in result.names],
                errors=collector.to_dicts(),
                complete=complete,
            )

    with span(
        "ingest.resilient",
        mode=mode,
        min_sim=min_sim,
        n_names=len(names),
        workers=workers,
    ) as sp:
        # -- cold phase: pre-delta state for every name still to ingest ----
        engine = IngestEngine(
            distinct, min_sim=min_sim, measure=measure, supervised=supervised
        )
        cold: dict[str, NameResolution] = {}
        for name in names:
            if name in done:
                continue
            if deadline is not None and deadline.expired():
                outcome.interrupted = True
                break
            with guard("ingest.cold", name, policy, collector):
                try:
                    cold[name] = engine.resolve(name)
                except (DeadlineExceeded, KeyboardInterrupt):
                    raise
                except Exception:
                    _NAMES_FAILED.inc()
                    raise
        if outcome.interrupted:
            sp.annotate(n_completed=0, interrupted=True)
            save_progress()
            return outcome

        # -- ingest phase: one apply, then per-name refresh + score --------
        applied = engine.apply(delta)
        outcome.epoch = applied.epoch
        pending = [n for n in names if n in cold]

        greedy_new: dict[str, list[int]] = {}
        if mode == "greedy":
            for name in pending:
                refs = extract_references(distinct.db, name, distinct.config)
                known = set(cold[name].rows)
                greedy_new[name] = [r for r in refs.rows if r not in known]

        results_iter = None
        if mode == "exact" and workers > 1:
            results_iter = ordered_process_map(
                _ingest_name_task,
                (engine, truth),
                pending,
                workers=workers,
                deadline=deadline,
                task_retries=task_retries,
            )
        try:
            for name in names:
                if name in done:
                    result.names.append(done[name])
                    continue
                if name not in cold:  # cold phase failed it under the policy
                    continue
                if deadline is not None and deadline.expired():
                    outcome.interrupted = True
                    break
                scored = None
                if results_iter is not None:
                    task = next(results_iter)
                    assert task.item == name, "parallel map yielded out of order"
                    if task.interrupted:
                        outcome.interrupted = True
                        break
                    _NAME_SECONDS.observe(task.seconds)
                    with guard("ingest.refresh", name, policy, collector):
                        if task.error is not None:
                            _NAMES_FAILED.inc()
                            raise RemoteTaskError(task.error)
                        refresh, scored = task.value
                        engine.adopt(refresh)
                        _accumulate(stats, refresh)
                else:
                    name_start = time.perf_counter()
                    with guard("ingest.refresh", name, policy, collector):
                        try:
                            if mode == "greedy":
                                extended, _ = extend_resolution(
                                    distinct,
                                    cold[name],
                                    greedy_new[name],
                                    min_sim=min_sim,
                                    backend="vectorized",
                                )
                                scored = score_resolution(extended, truth)
                                stats["refs_new"] += len(greedy_new[name])
                                stats["names_refreshed"] += 1
                            else:
                                refresh = engine.refresh(name)
                                _accumulate(stats, refresh)
                                scored = score_resolution(refresh.resolution, truth)
                        except (DeadlineExceeded, KeyboardInterrupt):
                            raise
                        except Exception:
                            _NAMES_FAILED.inc()
                            raise
                    _NAME_SECONDS.observe(time.perf_counter() - name_start)
                if scored is None:  # failed and policy skipped/collected it
                    save_progress()
                    continue
                result.names.append(scored)
                _NAMES_INGESTED.inc()
                save_progress()
        finally:
            if results_iter is not None:
                results_iter.close()
        sp.annotate(
            n_completed=outcome.n_completed,
            n_failed=len(collector),
            interrupted=outcome.interrupted,
        )
    save_progress(complete=outcome.complete)
    return outcome
