"""Deterministic, input-ordered map over a process pool.

Disambiguation workloads scale with the number of ambiguous names, and the
names are independent — the ideal shape for process parallelism. What a
naive ``ProcessPoolExecutor.map`` loses, this module keeps:

- **Deterministic assembly.** Results are yielded in *input* order,
  whatever order workers finish in, so a parallel run's output is
  byte-identical to a serial one.
- **Obs continuity.** Each task snapshots the worker-local counter
  registry before and after, returns the delta, and the parent merges it
  on join — ``propagation.tuples_visited`` and friends keep counting
  across process boundaries (gauges and histograms are per-process and
  are not merged). When the parent has tracing enabled, each worker task
  additionally runs under its own fresh tracer, serializes its span
  subtree (:func:`repro.obs.span_to_wire`), and ships it home in the
  task result; the parent grafts the subtree into its trace annotated
  with ``worker`` (a stable sequential id) and ``worker_pid``, so a
  ``--trace-out`` of a parallel run shows real per-worker spans at their
  true timeline positions instead of an opaque gap.
- **Failure transparency.** Worker exceptions travel back as structured
  ``{"type", "message"}`` payloads in the :class:`TaskOutcome` instead of
  poisoning the pool, so the caller can apply its error policy per item,
  exactly like a serial loop under :func:`repro.resilience.guard`.
- **Worker-death recovery.** A worker killed mid-task (OOM killer,
  SIGKILL, segfault) breaks the whole ``ProcessPoolExecutor``; instead of
  propagating ``BrokenProcessPool``, the map respawns the pool and
  re-dispatches the lost chunks, so one transient kill costs only the
  lost work. Lost chunks re-run one at a time ("probation") before
  normal dispatch resumes, which pins the blame precisely: a chunk that
  breaks the pool while running *alone* is the killer. Each chunk may be
  re-dispatched at most ``task_retries`` times; past that budget its
  items are surfaced as ordinary ``TaskOutcome`` errors (``type:
  "WorkerCrashed"``) so the caller's error policy decides, and the run
  never hangs. Pool deaths and re-dispatches are counted
  (``perf.parallel.worker_deaths`` / ``.tasks_redispatched``).
- **Deadlines.** An expired :class:`~repro.resilience.Deadline` stops
  consuming results; remaining tasks are cancelled and reported as
  ``interrupted`` outcomes in order.

Workers are primed once with a picklable ``payload`` via a pool
initializer (under the default ``fork`` start method the payload is
inherited, not pickled); each task then ships only its item. ``fn`` must
be a module-level function taking ``(payload, item)``. A payload wrapped
in a :class:`repro.perf.shm.PayloadHandle` (e.g.
:class:`~repro.perf.shm.SharedPayload`, whose array buffers live in one
shared-memory segment mapped read-only by every worker) is attached by
the initializer and released — segment unlinked exactly once — in the
map's outer ``finally``, which covers completion, deadline-cancelled
tails, abandoned iterators, and the pool-respawn path (a respawned pool
re-attaches the still-linked segment).

Dispatch order is a *shard plan* (:func:`repro.perf.sharding.plan_shards`).
The default ``"static"`` strategy reproduces consecutive
``chunk_size`` chunks in input order; ``shard_strategy="cost"`` with
per-item ``costs`` packs cost-balanced shards dispatched heaviest-first,
and the pool's shared queue work-steals them: whichever worker goes idle
pulls the next costliest shard. Completed shards are harvested as they
finish, whatever the consumer is blocked on (``perf.shard.steals``
counts the out-of-order harvests), and assembly stays input-ordered, so
results are byte-identical to a serial run under every strategy.

Two dispatch knobs trade pool overhead against parallelism without
touching any of the guarantees above:

- ``chunk_size`` batches that many items per worker dispatch (one future
  per chunk instead of per item), amortizing submit/pickle/wakeup costs
  when individual tasks are cheap. Outcomes are still per item, in input
  order, with per-item counter deltas; the default of 1 keeps the
  historical one-future-per-item behavior exactly.
- ``inline=True`` skips the pool entirely and runs the same task wrapper
  in-process — the escape hatch for workloads where a pool cannot win
  (single-core hosts, tiny per-task cost). :func:`should_inline` is the
  shared policy for that call: pools lose below ``min_task_cost``
  seconds per task or without a second CPU to run on.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.perf.shm import PayloadHandle
from repro.perf.sharding import SHARD_STRATEGIES, plan_shards

from repro.obs import (
    counter,
    disable_tracing,
    enable_tracing,
    get_metrics,
    get_tracer,
    histogram,
    span_from_wire,
    span_to_wire,
    tracing_enabled,
)

_TASKS_OK = counter("perf.parallel.tasks_ok")
_TASKS_FAILED = counter("perf.parallel.tasks_failed")
_TASKS_INTERRUPTED = counter("perf.parallel.tasks_interrupted")
_TASKS_INLINED = counter("perf.parallel.tasks_inlined")
_SPANS_GRAFTED = counter("perf.parallel.spans_grafted")
_TASK_SECONDS = histogram("perf.parallel.task_seconds")
_WORKER_DEATHS = counter("perf.parallel.worker_deaths")
_TASKS_REDISPATCHED = counter("perf.parallel.tasks_redispatched")
_SHARD_STEALS = counter("perf.shard.steals")

#: Below this estimated per-task cost (seconds), process-pool dispatch
#: overhead (pickling, IPC, scheduler wakeups) dominates the work itself
#: and :func:`should_inline` recommends the in-process path.
DEFAULT_MIN_TASK_COST = 0.05

#: How many times one chunk may be re-dispatched after a pool break
#: before its items are surfaced as ``WorkerCrashed`` errors. The default
#: survives any single worker death and surfaces a task that kills its
#: worker twice.
DEFAULT_TASK_RETRIES = 1

#: In-flight dispatch window, in multiples of the pool size. Bounding the
#: window keeps workers saturated while limiting how many chunks a single
#: pool break can take down (every in-flight chunk is lost with the pool).
_WINDOW_FACTOR = 2

#: Worker-side payload installed by the pool initializer.
_PAYLOAD: Any = None

#: Worker-side flag: record a span subtree per task and ship it home.
_TRACE: bool = False


class RemoteTaskError(RuntimeError):
    """A worker-side exception re-raised in the parent process.

    ``error`` holds the structured ``{"type", "message"}`` payload from
    the worker; the original traceback stays in the worker's logs.
    """

    def __init__(self, error: dict) -> None:
        super().__init__(f"worker task failed: {error['type']}: {error['message']}")
        self.error = error


@dataclass
class TaskOutcome:
    """One item's result: a value, a worker error, or an interruption.

    ``seconds`` and ``worker_pid`` are telemetry, not results: they are
    excluded from equality so outcome lists stay comparable across
    pool/chunked/inline runs whose timings necessarily differ.
    """

    item: Any
    value: Any = None
    error: dict | None = None
    interrupted: bool = False
    seconds: float = field(default=0.0, compare=False)
    worker_pid: int | None = field(default=None, compare=False)

    @property
    def ok(self) -> bool:
        return self.error is None and not self.interrupted

    def unwrap(self) -> Any:
        """The value; raises :class:`RemoteTaskError` on a failed task."""
        if self.error is not None:
            raise RemoteTaskError(self.error)
        return self.value


def _init_worker(payload: Any, trace: bool = False) -> None:
    global _PAYLOAD, _TRACE
    if isinstance(payload, PayloadHandle):
        # Zero-copy path: map the shared segment and rebuild the payload
        # over read-only views into it (never pay the pickle per worker).
        payload = payload.attach()
    # Designed per-worker divergence: the initializer primes each worker
    # with its own payload exactly so tasks never re-pickle it; nothing
    # here is read back by the parent.
    _PAYLOAD = payload  # lint: allow[forkstate/worker-global-mutation]
    _TRACE = trace  # lint: allow[forkstate/worker-global-mutation]
    # Under ``fork`` the worker inherits the parent's live tracer (and its
    # whole span forest). Spans recorded there would be silently lost —
    # each task instead runs under a fresh tracer and ships its subtree
    # home explicitly.
    disable_tracing()


def _counter_values() -> dict[str, float]:
    return dict(get_metrics().snapshot()["counters"])


def _run_task(fn: Callable[[Any, Any], Any], item: Any) -> tuple:
    """Worker-side wrapper: run one item, capture errors + counter deltas
    + (when tracing) the task's span subtree in wire form."""
    before = _counter_values()
    tracer = enable_tracing() if _TRACE else None
    value = None
    error = None
    trace = None
    start = time.perf_counter()
    try:
        value = fn(_PAYLOAD, item)
    except Exception as exc:  # travels back as data, not as pool poison
        error = {"type": type(exc).__name__, "message": str(exc)}
    finally:
        seconds = time.perf_counter() - start
        # The tracer must come down even when fn raises something
        # harsher than Exception (KeyboardInterrupt, worker teardown):
        # left installed, it would swallow the next task's spans.
        if tracer is not None:
            if tracer.roots:
                trace = {
                    "pid": os.getpid(),
                    "spans": [span_to_wire(sp) for sp in tracer.roots],
                }
            disable_tracing()
    after = _counter_values()
    deltas = {
        name: after[name] - before.get(name, 0.0)
        for name in after
        if after[name] != before.get(name, 0.0)
    }
    return value, error, deltas, seconds, trace


def _run_chunk(fn: Callable[[Any, Any], Any], chunk: list) -> list[tuple]:
    """Worker-side wrapper for one dispatch of several items.

    Each item still runs through :func:`_run_task`, so error capture and
    counter-delta granularity are per item — batching only changes how
    many items one future carries.
    """
    return [_run_task(fn, item) for item in chunk]


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (payload inherited, not pickled) where available."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def should_inline(
    n_items: int,
    workers: int,
    task_cost_hint: float | None = None,
    min_task_cost: float = DEFAULT_MIN_TASK_COST,
) -> bool:
    """Whether a process pool can pay for itself on this workload.

    The shared policy behind ``ordered_process_map(..., inline=True)``:
    inline when there is nothing to parallelize (``workers`` or
    ``n_items`` <= 1), when the host has no second CPU to run a worker
    on, or when the caller's estimated per-task cost is below
    ``min_task_cost`` seconds (dispatch overhead would dominate). Callers
    without a cost estimate pass ``task_cost_hint=None`` and only the
    structural checks apply.
    """
    if workers <= 1 or n_items <= 1:
        return True
    if (os.cpu_count() or 1) < 2:
        return True
    return task_cost_hint is not None and task_cost_hint < min_task_cost


def ordered_process_map(
    fn: Callable[[Any, Any], Any],
    payload: Any,
    items: Sequence[Any],
    workers: int,
    deadline=None,
    chunk_size: int = 1,
    inline: bool = False,
    task_retries: int = DEFAULT_TASK_RETRIES,
    costs: Sequence[float] | None = None,
    shard_strategy: str = "static",
) -> Iterator[TaskOutcome]:
    """Run ``fn(payload, item)`` for every item; yield outcomes in input order.

    ``workers`` is the pool size (must be >= 1; 1 still uses a pool, which
    keeps the code path identical — callers that want a plain loop should
    pass ``inline=True``, typically via :func:`should_inline`).
    ``deadline`` is an optional :class:`repro.resilience.Deadline`; once
    expired, pending tasks are cancelled and yielded as ``interrupted``
    outcomes. ``chunk_size`` batches that many items per worker dispatch
    (outcomes stay per item); ``inline=True`` runs everything in-process
    with identical outcome semantics. ``task_retries`` bounds how many
    times one chunk is re-dispatched after a worker death before its
    items are surfaced as ``WorkerCrashed`` errors (see module
    docstring; 0 disables re-dispatch entirely).

    ``shard_strategy`` + ``costs`` select the dispatch plan
    (:func:`repro.perf.sharding.plan_shards`): ``"static"`` is the legacy
    consecutive chunking, ``"cost"`` dispatches cost-balanced shards
    heaviest-first so idle workers steal the expensive stragglers early.
    Either way outcomes arrive in input order with identical values. A
    ``payload`` wrapped in a :class:`repro.perf.shm.PayloadHandle` is
    attached per worker and released here when the map winds down.

    Counter deltas from each task are merged into this process's registry
    as the task's outcome is yielded, so obs totals match a serial run.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if task_retries < 0:
        raise ValueError("task_retries must be >= 0")
    if shard_strategy not in SHARD_STRATEGIES:
        raise ValueError(
            f"shard_strategy must be one of {SHARD_STRATEGIES}, "
            f"got {shard_strategy!r}"
        )
    items = list(items)
    if costs is not None and len(costs) != len(items):
        raise ValueError(
            f"costs must have one entry per item: {len(costs)} != {len(items)}"
        )
    if inline:
        return _inline_map(fn, payload, items, deadline)
    plan = plan_shards(
        len(items),
        chunk_size=chunk_size,
        strategy=shard_strategy,
        costs=list(costs) if costs is not None else None,
    )
    return _ordered_map(fn, payload, items, workers, deadline, task_retries, plan)


def _inline_map(fn, payload, items, deadline) -> Iterator[TaskOutcome]:
    """The no-pool path: same outcomes, counters incremented in-process."""
    handle = payload if isinstance(payload, PayloadHandle) else None
    if handle is not None:
        payload = handle.attach()
    try:
        yield from _inline_loop(fn, payload, items, deadline)
    finally:
        if handle is not None:
            handle.release()


def _inline_loop(fn, payload, items, deadline) -> Iterator[TaskOutcome]:
    interrupted = False
    for item in items:
        if not interrupted and deadline is not None and deadline.expired():
            interrupted = True
        if interrupted:
            _TASKS_INTERRUPTED.inc()
            yield TaskOutcome(item=item, interrupted=True)
            continue
        value = None
        error = None
        start = time.perf_counter()
        try:
            value = fn(payload, item)
        except Exception as exc:  # mirror the worker boundary: error as data
            error = {"type": type(exc).__name__, "message": str(exc)}
        seconds = time.perf_counter() - start
        _TASK_SECONDS.observe(seconds)
        _TASKS_INLINED.inc()
        if error is not None:
            _TASKS_FAILED.inc()
        else:
            _TASKS_OK.inc()
        yield TaskOutcome(item=item, value=value, error=error, seconds=seconds)


def _new_pool(payload, workers) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_pool_context(),
        initializer=_init_worker,
        initargs=(payload, tracing_enabled()),
    )


def _crash_error(chunk: list, losses: int) -> dict:
    items = ", ".join(repr(item) for item in chunk)
    return {
        "type": "WorkerCrashed",
        "message": (
            f"worker process died {losses} time(s) while this task was "
            f"in flight; re-dispatch budget exhausted (items: {items})"
        ),
    }


def _ordered_map(
    fn, payload, items, workers, deadline, task_retries, plan
) -> Iterator[TaskOutcome]:
    """The pool path: planned dispatch, ordered assembly, crash recovery.

    ``plan`` maps shard index -> input positions (dispatch order =
    ``plan`` order, which may differ from input order under the cost
    strategy). State per shard index: not yet submitted (``idx >=
    next_submit`` and not lost), in flight (``futures``), harvested
    (``results``), or surfaced as a crash error (``crashed``). Shards
    lost to a pool break wait in ``probation`` and re-run one at a time
    so a poisonous shard is blamed precisely instead of taking innocent
    neighbors past their retry budget. Completed shards are harvested
    eagerly — whatever the consumer is blocked on — so out-of-order
    completions free window slots immediately (the work-stealing half of
    the cost strategy); the consuming loop still walks input positions
    one by one.
    """
    registry = get_metrics()
    chunks = [[items[pos] for pos in shard] for shard in plan]
    n = len(chunks)
    # input position -> (shard index, offset inside the shard)
    locate: dict[int, tuple[int, int]] = {}
    for s, shard in enumerate(plan):
        for offset, pos in enumerate(shard):
            locate[pos] = (s, offset)
    window = max(workers * _WINDOW_FACTOR, 1)
    tracer = get_tracer()
    worker_ids: dict[int, int] = {}

    pool = _new_pool(payload, workers)
    futures: dict[int, Future] = {}
    results: dict[int, list[tuple]] = {}
    consumed = [0] * n
    crashed: dict[int, dict] = {}
    losses = [0] * n
    probation: set[int] = set()
    dispatched: set[int] = set()
    next_submit = 0

    def submit(idx: int) -> None:
        if idx in dispatched:
            _TASKS_REDISPATCHED.inc(len(chunks[idx]))
        dispatched.add(idx)
        futures[idx] = pool.submit(_run_chunk, fn, chunks[idx])

    def fill_window() -> None:
        nonlocal next_submit
        if probation:
            # One suspect at a time: the only shard allowed in flight is
            # the next lost one, so a repeat break has exactly one culprit.
            head = min(probation)
            if head not in futures and not futures:
                submit(head)
            return
        while next_submit < n and len(futures) < window:
            submit(next_submit)
            next_submit += 1

    def harvest(awaiting: int | None = None) -> bool:
        """Bank every finished future; True when the pool broke under one."""
        broke = False
        # lint: allow[determinism/unkeyed-sort] shard indices are ints
        for idx in sorted(futures):
            future = futures[idx]
            if not future.done() or future.cancelled():
                continue
            exc = future.exception()
            if exc is not None:
                if isinstance(exc, BrokenProcessPool):
                    broke = True
                    continue
                raise exc
            results[idx] = future.result()
            del futures[idx]
            probation.discard(idx)
            if awaiting is not None and idx != awaiting:
                _SHARD_STEALS.inc()
        return broke

    def handle_break() -> None:
        nonlocal pool
        _WORKER_DEATHS.inc()
        pool.shutdown(wait=False, cancel_futures=True)
        # lint: allow[determinism/unkeyed-sort] shard indices are ints
        for idx in sorted(futures):
            future = futures[idx]
            if future.cancelled():
                # Never ran (queued behind the break): requeue, no blame.
                probation.add(idx)
                continue
            # Results delivered before the break are intact; keep them.
            if future.done() and future.exception() is None:
                results[idx] = future.result()
                probation.discard(idx)
                continue
            losses[idx] += 1
            if losses[idx] > task_retries:
                crashed[idx] = _crash_error(chunks[idx], losses[idx])
                probation.discard(idx)
            else:
                probation.add(idx)
        futures.clear()
        pool = _new_pool(payload, workers)

    interrupted = False
    try:
        for pos, item in enumerate(items):
            sidx, offset = locate[pos]
            # Deadline checks happen at shard entry, matching the legacy
            # chunk-boundary granularity: a shard whose results are being
            # consumed finishes yielding before an expiry is noticed.
            if (
                not interrupted
                and offset == 0
                and deadline is not None
                and deadline.expired()
            ):
                interrupted = True
            while (
                not interrupted
                and sidx not in results
                and sidx not in crashed
            ):
                try:
                    if harvest(awaiting=sidx):
                        handle_break()
                        continue
                    fill_window()
                    if sidx in results or sidx in crashed:
                        break
                    remaining = (
                        deadline.remaining() if deadline is not None else None
                    )
                    timeout = None if remaining is None else max(0.0, remaining)
                    target = futures.get(sidx)
                    if target is not None:
                        target.result(timeout=timeout)
                    else:
                        # Needed shard queued behind probation or window:
                        # wait for anything in flight, then re-harvest.
                        pending = list(futures.values())
                        if not pending:
                            raise RuntimeError(
                                f"ordered map stalled: shard {sidx} is "
                                "neither in flight nor finished"
                            )
                        wait(pending, timeout=timeout,
                             return_when=FIRST_COMPLETED)
                        if deadline is not None and deadline.expired():
                            interrupted = True
                            break
                except BrokenProcessPool:
                    handle_break()
                    continue
                except (FutureTimeout, CancelledError):
                    interrupted = True
                    break
            if interrupted:
                _TASKS_INTERRUPTED.inc()
                yield TaskOutcome(item=item, interrupted=True)
                continue
            if sidx in crashed:
                _TASKS_FAILED.inc()
                yield TaskOutcome(item=item, error=dict(crashed[sidx]))
                continue
            value, error, deltas, seconds, trace = results[sidx][offset]
            results[sidx][offset] = None  # free task payloads eagerly
            consumed[sidx] += 1
            if consumed[sidx] == len(plan[sidx]):
                del results[sidx]
            for name, delta in deltas.items():
                registry.counter(name).inc(delta)
            _TASK_SECONDS.observe(seconds)
            worker_pid = None
            if trace is not None:
                worker_pid = int(trace["pid"])
                if tracer is not None:
                    _graft_trace(trace, tracer, worker_ids)
            if error is not None:
                _TASKS_FAILED.inc()
            else:
                _TASKS_OK.inc()
            yield TaskOutcome(
                item=item, value=value, error=error,
                seconds=seconds, worker_pid=worker_pid,
            )
    finally:
        # Also reached when the consumer abandons the iterator early:
        # cancel queued tasks so pool teardown doesn't run them all.
        pool.shutdown(wait=True, cancel_futures=True)
        if isinstance(payload, PayloadHandle):
            # Exactly-once segment teardown, whatever path got us here
            # (completion, deadline tail, abandonment, pool respawns).
            payload.release()


def _graft_trace(trace: dict, tracer, worker_ids: dict[int, int]) -> None:
    """Attach one task's wire-form span subtrees to the parent trace.

    Each worker pid gets a stable sequential ``worker`` id (order of
    first completed task), so traces read ``worker=0..n-1`` regardless of
    the pids the OS handed out.
    """
    pid = int(trace["pid"])
    worker = worker_ids.setdefault(pid, len(worker_ids))
    for wire in trace["spans"]:
        sp = span_from_wire(wire)
        sp.attrs["worker"] = worker
        sp.attrs["worker_pid"] = pid
        tracer.graft(sp)
        _SPANS_GRAFTED.inc()


