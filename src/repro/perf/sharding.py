"""Cost-model shard planning for the ordered parallel map.

Static chunking (``items[i:i+chunk_size]``, dispatch in input order) is
the right default when tasks cost roughly the same, but disambiguation
workloads are heavily skewed: per-name work is dominated by the all-pairs
similarity stage, so a name with ``r`` references costs ~``r**2`` while
the long tail of rare names costs almost nothing. Dispatched in input
order, one giant name landing late leaves every other worker idle behind
it — the classic makespan problem.

:func:`plan_shards` turns the item list into an explicit *shard plan*: a
list of shards (lists of input positions) in **dispatch order**. Strategy
``"static"`` reproduces the legacy consecutive chunks exactly. Strategy
``"cost"`` is longest-processing-time-first (LPT) scheduling: items are
packed into shards by descending cost onto the currently lightest shard,
and shards are dispatched heaviest-first. The pool's shared task queue
then does the work-stealing: whichever worker goes idle pulls the next
costliest shard, so the big names run first and the tail backfills the
stragglers. The map's input-ordered assembly is untouched — the plan
only changes *when* work runs, never what is returned, so results stay
byte-identical to a serial run (see docs/performance.md).

:func:`name_cost` is the shared cost model: ``refs**2``, matching the
all-pairs feature stage that dominates per-name time.

``perf.shard.shards`` counts planned shards; the map counts
``perf.shard.steals`` — shards harvested out of consumption order, i.e.
completions a strict in-order dispatcher would not have had yet.
"""

from __future__ import annotations

from repro.obs import counter

__all__ = ["SHARD_STRATEGIES", "name_cost", "plan_shards"]

_SHARDS_PLANNED = counter("perf.shard.shards")

SHARD_STRATEGIES = ("static", "cost")


def name_cost(n_refs: int) -> float:
    """Per-name cost estimate: the all-pairs similarity stage is O(refs²)."""
    return float(n_refs) * float(n_refs)


def plan_shards(
    n_items: int,
    chunk_size: int = 1,
    strategy: str = "static",
    costs: list[float] | None = None,
) -> list[list[int]]:
    """Input positions grouped into shards, in dispatch order.

    ``"static"`` yields consecutive ``chunk_size`` slices in input order
    (the legacy chunking, byte-for-byte). ``"cost"`` needs per-item
    ``costs`` and packs LPT-style: the same number of shards, each at
    most ``chunk_size`` items, balanced by total cost and dispatched
    heaviest-first; items inside a shard stay in input order. Without
    ``costs`` the cost strategy degrades to static (there is nothing to
    balance on).
    """
    if strategy not in SHARD_STRATEGIES:
        raise ValueError(
            f"shard strategy must be one of {SHARD_STRATEGIES}, got {strategy!r}"
        )
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if costs is not None and len(costs) != n_items:
        raise ValueError(
            f"costs must have one entry per item: {len(costs)} != {n_items}"
        )
    if n_items == 0:
        return []
    if strategy == "static" or costs is None:
        plan = [
            list(range(start, min(start + chunk_size, n_items)))
            for start in range(0, n_items, chunk_size)
        ]
    else:
        n_shards = -(-n_items // chunk_size)
        order = sorted(range(n_items), key=lambda i: (-costs[i], i))
        shards: list[list[int]] = [[] for _ in range(n_shards)]
        totals = [0.0] * n_shards
        for item in order:
            target = min(
                (j for j in range(n_shards) if len(shards[j]) < chunk_size),
                key=lambda j: (totals[j], j),
            )
            shards[target].append(item)
            totals[target] += costs[item]
        for shard in shards:
            shard.sort()
        dispatch = sorted(range(n_shards), key=lambda j: (-totals[j], j))
        plan = [shards[j] for j in dispatch if shards[j]]
    _SHARDS_PLANNED.inc(len(plan))
    return plan
