"""Zero-copy payload dispatch via POSIX shared memory.

:func:`repro.perf.ordered_process_map` primes every worker with one
``payload`` object. Under the default ``fork`` start method the payload
is inherited, but forking late in a run copies page tables and loses the
ability to measure (or bound) what each worker actually receives; under
``spawn`` the whole payload is re-pickled into every worker. For
Table-1-scale payloads — compiled :class:`repro.perf.transitions`
``TransitionCache`` CSR arrays, stacked profile matrices, a whole
database — that dispatch cost scales with ``workers``.

:class:`SharedPayload` removes it. ``wrap(payload)`` pickles the payload
once with **protocol 5 out-of-band buffers**: every contiguous buffer the
object graph exposes (numpy arrays, and therefore the ``data`` /
``indices`` / ``indptr`` arrays of every SciPy CSR matrix) is lifted out
of the pickle stream and packed, 64-byte aligned, into a single
``multiprocessing.shared_memory`` segment. What remains — the "head"
pickle — is only object scaffolding, typically a few KB. ``attach()``
(run once per worker by the pool initializer) maps the segment and
rebuilds the payload with ``pickle.loads(head, buffers=...)`` over
**read-only memoryviews into the mapping**: every worker sees the same
physical pages, zero copies, and the read-only views turn accidental
worker-side writes into hard errors instead of silent cross-worker
corruption.

Lifecycle is creator-owned and idempotent. :meth:`SharedPayload.release`
closes and unlinks the segment exactly once — ``ordered_process_map``
calls it in its outer ``finally``, which covers normal completion,
deadline-cancelled tails, an abandoned result iterator, *and* the
worker-crash respawn path: a respawned pool simply re-attaches the
still-linked segment, and the unlink happens only when the map winds
down. Worker-side mappings are intentionally never closed (the arrays
alive in the worker are views into them); they die with the worker
process, and the parent's unlink removes the name. Segment names carry a
recognizable prefix so test suites can assert nothing leaked
(:func:`active_segments`).

:class:`PickledPayload` is the honest baseline for benchmarks: the same
handle interface, but ``wrap`` stores one pickle blob and every
``attach`` deserializes it in full — exactly the per-worker cost a
``spawn``-style pool pays. ``dispatch_bytes`` on both handles is the
serialized payload a worker must consume before its first task, which is
what ``benchmarks/bench_scale.py`` compares.
"""

from __future__ import annotations

import itertools
import os
import pickle
import secrets
from multiprocessing import resource_tracker, shared_memory
from typing import Any

from repro.obs import counter

__all__ = [
    "PayloadHandle",
    "PickledPayload",
    "SharedPayload",
    "active_segments",
]

_SEGMENTS = counter("perf.shm.segments")
_BYTES_SHARED = counter("perf.shm.bytes_shared")
_BYTES_MAPPED = counter("perf.shm.bytes_mapped")
_UNLINKS = counter("perf.shm.unlinks")

#: Prefix of every segment this module creates; the leak check in the
#: chaos suite greps ``/dev/shm`` for it.
SEGMENT_PREFIX = "repro_shm_"

#: Buffer offsets are aligned to this many bytes inside the segment, so
#: reconstructed numpy arrays keep their natural alignment.
_ALIGN = 64

_SEGMENT_COUNTER = itertools.count()


class PayloadHandle:
    """Interface of a dispatchable payload wrapper.

    ``ordered_process_map`` treats any payload that is an instance of
    this class specially: workers (and the inline path) call
    :meth:`attach` to materialize the real payload, and the map calls
    :meth:`release` in its outer ``finally`` when dispatch is over.
    """

    def attach(self) -> Any:
        """Materialize the payload in the calling process."""
        raise NotImplementedError

    def release(self) -> None:
        """Free any cross-process resources. Idempotent; creator-side."""
        raise NotImplementedError

    @property
    def dispatch_bytes(self) -> int:
        """Serialized bytes one worker must consume to attach."""
        raise NotImplementedError


class PickledPayload(PayloadHandle):
    """The pickled-payload baseline: one blob, deserialized per attach.

    This is what a ``spawn``-start pool (or a naive ``initargs`` pickle)
    costs per worker; :mod:`benchmarks.bench_scale` measures
    :class:`SharedPayload` against it.
    """

    __slots__ = ("_blob",)

    def __init__(self, blob: bytes) -> None:
        self._blob = blob

    @classmethod
    def wrap(cls, payload: Any) -> "PickledPayload":
        return cls(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))

    def attach(self) -> Any:
        return pickle.loads(self._blob)

    def release(self) -> None:
        pass

    @property
    def dispatch_bytes(self) -> int:
        return len(self._blob)


class _AttachedSegment(shared_memory.SharedMemory):
    """A worker-side mapping that outlives its Python handle.

    Attached arrays are zero-copy views into the mapping, so closing it
    at garbage-collection time would raise ``BufferError`` mid-teardown.
    The mapping instead lives as long as the process; the creator owns
    the unlink.
    """

    def __del__(self) -> None:  # the base class would close()
        pass


def _untrack(name: str) -> None:
    """Drop a segment from this process's resource tracker.

    Attaching registers the segment with ``resource_tracker`` (on
    Pythons without ``track=False``), which would warn about — and
    unlink — segments the *creator* still owns when this process exits.
    """
    try:
        resource_tracker.unregister(f"/{name.lstrip('/')}", "shared_memory")
    except (AttributeError, KeyError, OSError, ValueError):
        pass


def _retrack(name: str) -> None:
    """Re-register a segment with this process's resource tracker."""
    try:
        resource_tracker.register(f"/{name.lstrip('/')}", "shared_memory")
    except (AttributeError, OSError, ValueError):
        pass


def _open_segment(name: str) -> shared_memory.SharedMemory:
    try:
        segment = _AttachedSegment(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # track= is 3.13+
        segment = _AttachedSegment(name=name)
        _untrack(name)
    return segment


class SharedPayload(PayloadHandle):
    """A payload whose array buffers live in one shared-memory segment.

    See the module docstring for the full protocol. Instances pickle as
    ``(head, segment name, spans)`` — a worker that receives one under a
    ``spawn`` pool attaches exactly like a forked worker, but never owns
    the unlink.
    """

    def __init__(
        self,
        head: bytes,
        segment: str | None,
        spans: list[tuple[int, int]],
        total: int,
        owner: shared_memory.SharedMemory | None = None,
    ) -> None:
        self._head = head
        self._segment = segment
        self._spans = spans
        self._total = total
        self._shm = owner
        self._owner = owner is not None
        self._attached: shared_memory.SharedMemory | None = None
        self._released = False

    @classmethod
    def wrap(cls, payload: Any) -> "SharedPayload":
        """Serialize ``payload`` with its buffers packed into shared memory."""
        buffers: list[pickle.PickleBuffer] = []
        # A falsy ``buffer_callback`` return marks the buffer out-of-band
        # (a truthy one would keep it in the stream); ``list.append``
        # returns None, which is exactly right.
        head = pickle.dumps(payload, protocol=5, buffer_callback=buffers.append)
        raws: list[memoryview] = []
        for buf in buffers:
            try:
                raws.append(buf.raw())
            except BufferError:  # non-contiguous exporter: copy once
                raws.append(memoryview(memoryview(buf).tobytes()).cast("B"))
        spans: list[tuple[int, int]] = []
        offset = 0
        for raw in raws:
            offset = -(-offset // _ALIGN) * _ALIGN
            spans.append((offset, raw.nbytes))
            offset += raw.nbytes
        total = offset
        # Always create the segment — even for a payload with no
        # out-of-band buffers (size 0 is not a valid mapping, so floor at
        # one byte). The lifecycle guarantees (attach-on-respawn,
        # unlink-exactly-once, leak checks) then hold for every payload,
        # not just buffer-rich ones.
        owner = shared_memory.SharedMemory(
            create=True, size=max(total, 1), name=_segment_name()
        )
        for (start, length), raw in zip(spans, raws):
            owner.buf[start:start + length] = raw
        segment = owner.name
        _SEGMENTS.inc()
        _BYTES_SHARED.inc(total)
        for raw in raws:
            raw.release()
        for buf in buffers:
            buf.release()
        return cls(head, segment, spans, total, owner=owner)

    def attach(self) -> Any:
        """Map the segment and rebuild the payload over read-only views."""
        views: list[memoryview] = []
        if self._segment is not None:
            if self._attached is None:
                self._attached = _open_segment(self._segment)
            base = self._attached.buf
            views = [
                base[start:start + length].toreadonly()
                for start, length in self._spans
            ]
            _BYTES_MAPPED.inc(self._total)
        return pickle.loads(self._head, buffers=views)

    def release(self) -> None:
        """Close and (creator only) unlink the segment, exactly once.

        Safe whenever: after a pool respawn, after a deadline-cancelled
        tail, on double call. A mapping still exporting live views (the
        inline path attaches in-process) cannot be closed — the unlink
        below still removes the name and the pages go when the views do.
        """
        if self._released:
            return
        self._released = True
        if self._segment is None:
            return
        for mapping in (self._attached, self._shm):
            if mapping is None:
                continue
            try:
                mapping.close()
            except BufferError:
                pass
        self._attached = None
        if self._owner:
            # A fork-pool worker's attach shares this process's resource
            # tracker, and its untrack drops our registration; re-adding
            # it (set semantics: idempotent) keeps unlink's internal
            # unregister from KeyError-ing inside the tracker process.
            _retrack(self._segment)
            try:
                self._shm.unlink()
                _UNLINKS.inc()
            except FileNotFoundError:
                pass
            self._shm = None

    @property
    def dispatch_bytes(self) -> int:
        """Bytes a worker deserializes to attach: the head pickle only."""
        return len(self._head)

    @property
    def shared_bytes(self) -> int:
        """Bytes of buffer data living in the shared segment."""
        return self._total

    @property
    def segment_name(self) -> str | None:
        return self._segment

    def __getstate__(self) -> dict:
        return {
            "head": self._head,
            "segment": self._segment,
            "spans": self._spans,
            "total": self._total,
        }

    def __setstate__(self, state: dict) -> None:
        self._head = state["head"]
        self._segment = state["segment"]
        self._spans = state["spans"]
        self._total = state["total"]
        self._shm = None
        self._owner = False
        self._attached = None
        self._released = False


def _segment_name() -> str:
    """A collision-resistant segment name carrying the leak-check prefix."""
    return (
        f"{SEGMENT_PREFIX}{os.getpid()}_"
        f"{next(_SEGMENT_COUNTER)}_{secrets.token_hex(4)}"
    )


def active_segments() -> list[str]:
    """Live segments this module created on this host, by name.

    Linux-specific by inspection of ``/dev/shm`` (empty elsewhere); the
    chaos suite asserts this is empty after every scenario, including
    worker-kill and deadline runs.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):
        return []
    # lint: allow[determinism/unkeyed-sort] segment names are strings
    return sorted(
        entry for entry in os.listdir(root) if entry.startswith(SEGMENT_PREFIX)
    )
