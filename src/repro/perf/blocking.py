"""Zero-overlap pair pruning via an inverted neighbor index.

Both §2 measures are *exactly* zero for a pair of references whose
neighbor supports are disjoint on a path: set resemblance is a weighted
Jaccard (empty intersection ⇒ min-sum 0 ⇒ ratio 0) and the walk
probability is a sum of products over common neighbor tuples (empty
intersection ⇒ empty sum). A pair that shares no neighbor tuple on *any*
path therefore has an all-zero feature row, contributes nothing to the
combined similarity, and can be skipped without changing the clustering
output — the standard blocking lever of author-name disambiguation,
applied after propagation instead of on raw attributes so it is lossless.

The index is the classic inverted one: transpose the (references ×
neighbor tuples) support pattern so each neighbor tuple lists the
references that reach it; two references are candidates iff some tuple
lists both. In matrix form that join is ``P @ P.T`` over the boolean
support pattern ``P`` — :func:`candidate_pairs` materializes exactly the
pairs with a non-empty intersection. :func:`intersecting_pair_mask` is
the same test evaluated against an explicit pair list (the shape
:func:`repro.core.features.compute_pair_features` needs), via chunked
sparse row intersections so no n × n product is formed.

This module is generic over any sparse support matrices (rows =
references, columns = end-relation tuples) — in the pipeline those are
the stacked forward profile matrices, from either propagation backend.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.obs import counter
from repro.perf.chunking import chunk_slices

_PAIRS_PRUNED = counter("blocking.pairs_pruned")
_PAIRS_KEPT = counter("blocking.pairs_kept")

#: Pair-mask evaluation processes pairs in slices of this many rows.
DEFAULT_PAIR_CHUNK = 8192

#: ``candidate_pairs`` joins the inverted index in blocks of this many
#: reference rows, bounding the working set to (chunk x n) instead of
#: the full n x n product.
DEFAULT_ROW_CHUNK = 2048


def _pattern(matrix: sparse.spmatrix) -> sparse.csr_matrix:
    """Boolean support pattern of a weighted support matrix."""
    pattern = sparse.csr_matrix(matrix, copy=True)
    pattern.eliminate_zeros()
    pattern.data = np.ones_like(pattern.data)
    return pattern


def intersecting_pair_mask(
    support_matrices: list[sparse.spmatrix],
    idx_a: np.ndarray,
    idx_b: np.ndarray,
    *,
    pair_chunk: int = DEFAULT_PAIR_CHUNK,
) -> np.ndarray:
    """True where a pair's supports intersect on at least one path.

    ``support_matrices`` holds one (references × tuples) matrix per path;
    ``idx_a``/``idx_b`` are aligned row-index arrays naming the pairs.
    Pairs where the mask is False have exactly-zero resemblance and walk
    values on every path (see module docstring).
    """
    idx_a = np.asarray(idx_a, dtype=np.int64)
    idx_b = np.asarray(idx_b, dtype=np.int64)
    mask = np.zeros(len(idx_a), dtype=bool)
    for matrix in support_matrices:
        pattern = _pattern(matrix)
        for sl in chunk_slices(len(idx_a), pair_chunk):
            todo = np.flatnonzero(~mask[sl])
            if not len(todo):
                continue
            rows_a = pattern[idx_a[sl][todo]]
            rows_b = pattern[idx_b[sl][todo]]
            overlap = np.asarray(rows_a.multiply(rows_b).sum(axis=1)).ravel()
            hits = np.zeros(sl.stop - sl.start, dtype=bool)
            hits[todo] = overlap > 0
            mask[sl] |= hits
    kept = int(mask.sum())
    _PAIRS_KEPT.inc(kept)
    _PAIRS_PRUNED.inc(len(mask) - kept)
    return mask


def touched_row_mask(
    pattern: sparse.spmatrix, columns: np.ndarray
) -> np.ndarray:
    """True per reference row whose support hits any of ``columns``.

    The delta-ingest side of the inverted index: ``pattern`` is a
    (references × relation rows) visited pattern (see
    :func:`repro.paths.batch.batch_profile_matrices`'s ``trace``), and
    ``columns`` the rows of that relation a delta changed. A False
    entry certifies the reference's walk never crossed a changed tuple,
    so its profiles — and every pair feature built from them — are
    unchanged. Column ids beyond the pattern's width (rows appended by
    the delta itself) are ignored: they cannot appear in a pre-delta
    walk.
    """
    columns = np.asarray(columns, dtype=np.int64)
    columns = columns[columns < pattern.shape[1]]
    if not len(columns) or pattern.nnz == 0:
        return np.zeros(pattern.shape[0], dtype=bool)
    hit_cols = np.zeros(pattern.shape[1], dtype=np.float64)
    hit_cols[columns] = 1.0
    csr = sparse.csr_matrix(pattern).astype(np.float64)
    return np.asarray(csr @ hit_cols).ravel() > 0.0


def candidate_pairs(
    support_matrices: list[sparse.spmatrix],
    *,
    row_chunk: int = DEFAULT_ROW_CHUNK,
) -> list[tuple[int, int]]:
    """All (i < j) row-index pairs with a non-empty support intersection.

    The inverted-index join in matrix form: ``P @ P.T`` over the
    per-path patterns, evaluated ``row_chunk`` reference rows at a time
    so the working set is one (chunk x n) sparse block — never the full
    n x n product, which at 100K+ references would not fit in memory
    even sparse (the ambient graph makes most pairs overlap somewhere).
    Equivalent to evaluating :func:`intersecting_pair_mask` on the full
    pair grid, but emits only the surviving pairs — the right shape when
    the caller has not yet materialized an all-pairs list.
    """
    if not support_matrices:
        return []
    if row_chunk < 1:
        raise ValueError("row_chunk must be >= 1")
    n = support_matrices[0].shape[0]
    patterns = [_pattern(matrix) for matrix in support_matrices]
    transposed = [pattern.T.tocsr() for pattern in patterns]
    pairs: list[tuple[int, int]] = []
    for sl in chunk_slices(n, row_chunk):
        block: sparse.csr_matrix | None = None
        for pattern, pattern_t in zip(patterns, transposed):
            joined = pattern[sl] @ pattern_t
            block = joined if block is None else block + joined
        coo = block.tocoo()
        rows = coo.row.astype(np.int64) + sl.start
        cols = coo.col.astype(np.int64)
        keep = cols > rows
        pairs.extend(
            (int(i), int(j)) for i, j in zip(rows[keep], cols[keep])
        )
    pairs.sort()
    _PAIRS_KEPT.inc(len(pairs))
    _PAIRS_PRUNED.inc(n * (n - 1) // 2 - len(pairs))
    return pairs
