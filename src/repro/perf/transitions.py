"""Row-normalized sparse transition matrices for batched propagation.

One forward propagation step (:meth:`repro.paths.propagation
.PropagationEngine._forward_step`) splits each tuple's probability mass
uniformly over its exclusion-filtered join partners. For a fixed join
step that split is a *linear* map: with ``T[i, j] = 1 / |P(i)|`` for
every partner ``j`` in the filtered partner list ``P(i)``, pushing a
whole batch of per-reference mass vectors across the step is a single
sparse matrix product ``M @ T`` instead of one Python dict walk per
reference. The backward dynamic program is the same matrix transposed
with the *reverse* step's normalization.

This module is generic (it never touches the database): callers supply
the partner list of each source row via a ``fanout`` callable — in the
pipeline that is :meth:`PropagationEngine._partners`, so exclusion
filtering and the :class:`~repro.perf.memo.FanoutMemo` are shared with
the scalar engine and both backends see byte-identical partner lists.
Per-origin exclusion (the origin tuple is not an intermediate stop) is
deliberately *not* baked in here; :mod:`repro.paths.batch` applies it as
a sparse per-reference correction on top of these origin-free matrices.

A :class:`TransitionCache` compiles each step's matrix lazily over the
rows a batch actually reaches, extending (never recompiling from
scratch per call site) when a later level reaches new rows.
"""

from __future__ import annotations

from collections.abc import Collection, Mapping
from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

import numpy as np
from scipy import sparse

from repro.errors import StaleCacheError
from repro.obs import counter

_BUILT = counter("perf.transitions.built")
_REUSED = counter("perf.transitions.reused")
_ROWS = counter("perf.transitions.rows")
_ROWS_DIRTY = counter("perf.ingest.rows_dirty")
_ROWS_REUSED = counter("perf.ingest.rows_reused")

#: ``fanout(row_id)`` -> the exclusion-filtered partner row ids of one
#: source row across the step being compiled.
Fanout = Callable[[int], Sequence[int]]


@dataclass
class Transition:
    """One compiled join step: the normalized matrix plus its bookkeeping.

    ``matrix[i, j] = 1 / degrees[i]`` for every partner ``j`` of source
    row ``i``; rows that were not compiled (or have no partners) are
    empty. ``degrees[i]`` is the *filtered* partner count ``|P(i)|`` —
    the denominator of the scalar mass split — and ``covered[i]`` says
    whether row ``i`` was compiled at all (``degrees`` alone cannot
    distinguish "no partners" from "never asked").
    """

    matrix: sparse.csr_matrix
    degrees: np.ndarray
    covered: np.ndarray

    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    def covers(self, src_rows: np.ndarray) -> bool:
        """True when every given source row has been compiled."""
        if len(src_rows) == 0:
            return True
        return bool(self.covered[src_rows].all())


def build_transition(
    src_rows: np.ndarray, fanout: Fanout, shape: tuple[int, int]
) -> Transition:
    """Compile the normalized transition over the given source rows.

    ``src_rows`` are the row ids to compile (duplicates are fine; each
    row is compiled once); ``shape`` is ``(n_src_rows, n_dst_rows)`` over
    the *full* relation row spaces, so matrices of consecutive steps
    compose without reindexing.
    """
    n_src, _ = shape
    degrees = np.zeros(n_src, dtype=np.float64)
    covered = np.zeros(n_src, dtype=bool)
    unique_rows = np.unique(np.asarray(src_rows, dtype=np.int64))
    partner_lists = [fanout(row) for row in unique_rows.tolist()]
    counts = np.fromiter(
        (len(p) for p in partner_lists), dtype=np.int64, count=len(partner_lists)
    )
    covered[unique_rows] = True
    degrees[unique_rows] = counts.astype(np.float64)

    # Direct CSR assembly: ``unique_rows`` is sorted and the partner
    # lists are concatenated in that order, so the indptr follows from
    # the per-row counts without a COO round-trip.
    counts_full = np.zeros(n_src, dtype=np.int64)
    counts_full[unique_rows] = counts
    indptr = np.zeros(n_src + 1, dtype=np.int64)
    np.cumsum(counts_full, out=indptr[1:])
    total = int(counts.sum())
    indices = np.fromiter(
        (j for p in partner_lists for j in p), dtype=np.int64, count=total
    )
    weights = np.zeros(len(counts), dtype=np.float64)
    hot = counts > 0
    weights[hot] = 1.0 / counts[hot]
    data = np.repeat(weights, counts)
    matrix = sparse.csr_matrix((data, indices, indptr), shape=shape)
    matrix.sort_indices()
    _BUILT.inc()
    _ROWS.inc(len(unique_rows))
    return Transition(matrix=matrix, degrees=degrees, covered=covered)


def _decompile_rows(
    entry: Transition, dirty: np.ndarray, shape: tuple[int, int]
) -> Transition:
    """Pad ``entry`` to ``shape`` and drop the given source rows.

    The surviving rows keep their exact stored ``data``/``indices``
    slices, so a later read of a clean row is byte-identical to the
    pre-delta compile; dropped rows become uncovered and recompile
    lazily through :meth:`TransitionCache.get`'s extension path.
    """
    n_src_old = entry.shape[0]
    n_src, _ = shape
    matrix = entry.matrix
    counts = np.diff(matrix.indptr)
    keep_row = np.ones(n_src_old, dtype=bool)
    keep_row[dirty] = False
    kept_entries = np.repeat(keep_row, counts)
    counts_new = np.zeros(n_src, dtype=np.int64)
    counts_new[:n_src_old] = np.where(keep_row, counts, 0)
    indptr = np.zeros(n_src + 1, dtype=np.int64)
    np.cumsum(counts_new, out=indptr[1:])
    new_matrix = sparse.csr_matrix(
        (matrix.data[kept_entries], matrix.indices[kept_entries], indptr),
        shape=shape,
    )
    degrees = np.zeros(n_src, dtype=np.float64)
    degrees[:n_src_old] = np.where(keep_row, entry.degrees, 0.0)
    covered = np.zeros(n_src, dtype=bool)
    covered[:n_src_old] = entry.covered & keep_row
    return Transition(matrix=new_matrix, degrees=degrees, covered=covered)


class TransitionCache:
    """Lazily compiled transitions, keyed by an opaque step key.

    ``get`` returns a transition covering at least ``src_rows``: a cache
    hit when the stored matrix already covers them, otherwise the entry
    is *extended* — only the not-yet-covered rows have their fanouts
    fetched and compiled, and the delta is added onto the stored matrix
    (row sets are disjoint, so the sum is a plain union). One cache per
    batched propagation run — entries bake in that run's exclusions via
    the ``fanout`` callable, exactly like :class:`~repro.perf.memo
    .FanoutMemo` entries bake in an engine's exclusions.

    ``epoch`` pins the cache to a database epoch (None = unpinned).
    A pinned cache that outlives an :func:`repro.reldb.apply_delta` must
    be :meth:`advance`\\ d before serving again; until then reads raise
    :class:`~repro.errors.StaleCacheError` through :meth:`check_epoch`.
    """

    def __init__(self, epoch: int | None = None) -> None:
        self.epoch = epoch
        self._entries: dict[Hashable, Transition] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def check_epoch(self, db_epoch: int) -> None:
        """Raise :class:`StaleCacheError` when pinned at a different epoch."""
        if self.epoch is not None and self.epoch != db_epoch:
            raise StaleCacheError("TransitionCache", self.epoch, db_epoch)

    def advance(
        self,
        new_epoch: int,
        dirty_rows: Mapping[str, Collection[int]],
        sizes: Mapping[str, int],
    ) -> tuple[int, int]:
        """Carry compiled transitions across a delta; re-pin at ``new_epoch``.

        ``dirty_rows`` maps relation name -> source row ids whose filtered
        partner lists may have changed; ``sizes`` maps relation name ->
        post-delta row count. Every entry is padded to the new row spaces;
        dirty source rows are decompiled (their matrix rows zeroed and
        their ``covered`` flags cleared, so the next :meth:`get` recompiles
        exactly those rows through the existing extension path); all other
        compiled rows are kept verbatim. Entries whose key does not expose
        ``src_relation``/``dst_relation`` are dropped conservatively.

        Returns ``(rows_reused, rows_dirty)`` summed over entries.
        """
        total_reused = 0
        total_dirty = 0
        advanced: dict[Hashable, Transition] = {}
        for key, entry in self._entries.items():
            src_rel = getattr(key, "src_relation", None)
            dst_rel = getattr(key, "dst_relation", None)
            if src_rel is None or dst_rel is None:
                total_dirty += int(entry.covered.sum())
                continue
            n_src_old, n_dst_old = entry.shape
            n_src = int(sizes.get(src_rel, n_src_old))
            n_dst = int(sizes.get(dst_rel, n_dst_old))
            dirty = np.asarray(
                # lint: allow[determinism/unkeyed-sort] row ids are plain int
                sorted(dirty_rows.get(src_rel, ())),
                dtype=np.int64,
            )
            dirty = dirty[dirty < n_src_old]
            dirty = dirty[entry.covered[dirty]]
            advanced[key] = _decompile_rows(entry, dirty, (n_src, n_dst))
            total_dirty += len(dirty)
            total_reused += int(advanced[key].covered.sum())
        self._entries = advanced
        self.epoch = new_epoch
        _ROWS_DIRTY.inc(total_dirty)
        _ROWS_REUSED.inc(total_reused)
        return total_reused, total_dirty

    def get(
        self,
        key: Hashable,
        src_rows: np.ndarray,
        shape: tuple[int, int],
        fanout: Fanout,
    ) -> Transition:
        entry = self._entries.get(key)
        if entry is not None and entry.covers(src_rows):
            _REUSED.inc()
            return entry
        if entry is not None:
            src_rows = np.asarray(src_rows, dtype=np.int64)
            fresh = src_rows[~entry.covered[src_rows]]
            delta = build_transition(fresh, fanout, shape)
            merged = (entry.matrix + delta.matrix).tocsr()
            merged.sort_indices()
            entry = Transition(
                matrix=merged,
                degrees=entry.degrees + delta.degrees,
                covered=entry.covered | delta.covered,
            )
        else:
            entry = build_transition(src_rows, fanout, shape)
        self._entries[key] = entry
        return entry
