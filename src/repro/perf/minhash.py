"""MinHash/LSH candidate blocking over forward-support sets.

:mod:`repro.perf.blocking` prunes pairs whose neighbor supports are
disjoint on every path — *exact* and lossless, but it still touches
every pair. At Table-1 scale the ambient graph (shared venues, shared
years) gives almost every pair *some* microscopic overlap, so exact
zero-overlap pruning stops pruning at all. The standard blocking answer
from the name-disambiguation literature is locality-sensitive hashing:
the §2.3 set-resemblance measure is a weighted Jaccard, and Jaccard is
exactly what MinHash sketches.

The scheme is classic banded MinHash. Each reference's support set is
the union of its per-path forward supports, lifted into one global
column space (per-path support matrices have distinct end-relation
column spaces, so columns are offset-stacked before hashing — two
references collide iff some path's supports intersect, matching the
exact pruner's test). ``bands * rows`` universal hash functions
``(a*x + b) mod p`` produce a signature per reference; a pair is a
*candidate* iff all ``rows`` signature entries agree in at least one of
the ``bands`` bands. A pair with Jaccard ``J`` survives with probability
``1 - (1 - J^rows)^bands`` — the standard S-curve: near-duplicates pass
almost surely, near-disjoint pairs almost never.

Blocking is probabilistic, so two safety rails keep the pipeline's
equivalence story intact:

- **Exact re-check.** :func:`minhash_refined_mask` (the form
  ``pair_pruning="minhash"`` routes through) re-tests every LSH survivor
  with :func:`repro.perf.blocking.intersecting_pair_mask`, so false
  positives cost a little work but never a wrong feature, and the final
  mask is always a subset of the exact pruner's.
- **A measured recall knob.** :func:`blocking_recall` reports the
  fraction of exactly-intersecting pairs the candidate set kept;
  the property suite gates recall == 1.0 at the default
  ``bands``/``rows`` and reports the measured recall for aggressive
  settings, and ``benchmarks/bench_scale.py`` records it per tier.

Empty support sets hash to a per-reference sentinel, so two references
that reach nothing never become candidates of each other.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.obs import counter
from repro.perf.blocking import DEFAULT_PAIR_CHUNK, intersecting_pair_mask
from repro.perf.chunking import chunk_slices

__all__ = [
    "DEFAULT_BANDS",
    "DEFAULT_ROWS",
    "blocking_recall",
    "minhash_candidate_pairs",
    "minhash_pair_mask",
    "minhash_refined_mask",
    "minhash_signatures",
]

_CANDIDATES = counter("blocking.minhash.candidates")
_RECHECKED = counter("blocking.minhash.rechecked")
_LSH_PRUNED = counter("blocking.pairs_pruned")

#: Default banding. With ``rows=2`` a pair of Jaccard J collides per
#: band with probability J²: weakly-overlapping pairs (J ~ 0.02, e.g.
#: one shared hub venue) survive ~1% of 32 bands while same-object pairs
#: (J >= 0.5) are missed with probability < 1e-4 — and the exact
#: re-check plus the property-suite recall gate covers the residual.
DEFAULT_BANDS = 32
DEFAULT_ROWS = 2

#: Mersenne prime 2**31 - 1: hash values stay < 2**31 so ``a * x + b``
#: never overflows uint64 for any realistic column count.
_PRIME = np.uint64(2147483647)


def minhash_signatures(
    support_matrices: list[sparse.spmatrix],
    *,
    bands: int = DEFAULT_BANDS,
    rows: int = DEFAULT_ROWS,
    seed: int = 0,
) -> np.ndarray:
    """(n_references, bands*rows) MinHash signature matrix.

    Deterministic in ``seed`` (the hash coefficients are drawn from a
    seeded generator), so parallel and serial runs agree. Rows with an
    empty support get a unique sentinel signature (>= the hash prime)
    and therefore never collide with anything.

    Each path's support is hashed with its *own* coefficient set over
    raw row ids, and the signature is the elementwise minimum across
    paths — MinHash over the disjoint union ``{(path, row)}``. Keying by
    ``(path, row)`` rather than a position in one stacked column space
    makes signatures *growth-invariant*: appending rows to the database
    (delta ingest) cannot shift the hashed ids of an unchanged support,
    so a clean reference keeps its exact signature and the pruning
    decisions delta ingest reuses are the decisions a cold refit makes.
    """
    if bands < 1 or rows < 1:
        raise ValueError("bands and rows must be >= 1")
    if not support_matrices:
        raise ValueError("at least one support matrix is required")
    n = support_matrices[0].shape[0]
    k = bands * rows
    rng = np.random.default_rng(seed)
    n_paths = len(support_matrices)
    coef_a = rng.integers(1, int(_PRIME), size=(n_paths, k), dtype=np.uint64)
    coef_b = rng.integers(0, int(_PRIME), size=(n_paths, k), dtype=np.uint64)

    unset = np.iinfo(np.uint64).max
    sig = np.full((n, k), unset, dtype=np.uint64)
    for p, matrix in enumerate(support_matrices):
        pattern = sparse.csr_matrix(matrix, copy=True)
        pattern.eliminate_zeros()
        cols = pattern.indices.astype(np.uint64, copy=False)
        nnz = np.diff(pattern.indptr)
        nonempty = np.flatnonzero(nnz)
        if not len(nonempty):
            continue
        # Empty rows occupy no entries, so the data segments of the
        # non-empty rows are contiguous: reduceat over their start
        # offsets segments exactly at row boundaries.
        starts = pattern.indptr[:-1][nonempty]
        for j in range(k):
            hashed = (coef_a[p, j] * cols + coef_b[p, j]) % _PRIME
            sig[nonempty, j] = np.minimum(
                sig[nonempty, j], np.minimum.reduceat(hashed, starts)
            )
    # Supports empty across every path: a sentinel above every possible
    # hash value, unique per reference so empty-empty pairs never match.
    empty = np.flatnonzero((sig == unset).all(axis=1))
    sig[empty] = (_PRIME + np.arange(1, len(empty) + 1, dtype=np.uint64))[:, None]
    return sig


def _band_views(sig: np.ndarray, bands: int, rows: int) -> np.ndarray:
    return sig.reshape(sig.shape[0], bands, rows)


def minhash_pair_mask(
    support_matrices: list[sparse.spmatrix],
    idx_a: np.ndarray,
    idx_b: np.ndarray,
    *,
    bands: int = DEFAULT_BANDS,
    rows: int = DEFAULT_ROWS,
    seed: int = 0,
    pair_chunk: int = DEFAULT_PAIR_CHUNK,
) -> np.ndarray:
    """True where a pair collides in at least one band (LSH candidates)."""
    idx_a = np.asarray(idx_a, dtype=np.int64)
    idx_b = np.asarray(idx_b, dtype=np.int64)
    sig = _band_views(
        minhash_signatures(support_matrices, bands=bands, rows=rows, seed=seed),
        bands,
        rows,
    )
    mask = np.zeros(len(idx_a), dtype=bool)
    for sl in chunk_slices(len(idx_a), pair_chunk):
        agree = sig[idx_a[sl]] == sig[idx_b[sl]]
        mask[sl] = agree.all(axis=2).any(axis=1)
    _CANDIDATES.inc(int(mask.sum()))
    return mask


def minhash_candidate_pairs(
    support_matrices: list[sparse.spmatrix],
    *,
    bands: int = DEFAULT_BANDS,
    rows: int = DEFAULT_ROWS,
    seed: int = 0,
) -> list[tuple[int, int]]:
    """All (i < j) candidate pairs, via per-band hash buckets.

    The blocking counterpart of
    :func:`repro.perf.blocking.candidate_pairs`: instead of joining the
    inverted index exactly, bucket references by band signature and emit
    pairs sharing a bucket — never materializing the pair grid, which is
    the point at 100K+ references.
    """
    sig = minhash_signatures(
        support_matrices, bands=bands, rows=rows, seed=seed
    )
    banded = _band_views(sig, bands, rows)
    candidates: set[tuple[int, int]] = set()
    for band in range(bands):
        buckets: dict[bytes, list[int]] = {}
        keys = np.ascontiguousarray(banded[:, band, :])
        for i in range(keys.shape[0]):
            buckets.setdefault(keys[i].tobytes(), []).append(i)
        for members in buckets.values():
            for a in range(len(members)):
                for b in range(a + 1, len(members)):
                    candidates.add((members[a], members[b]))
    pairs = sorted(candidates)  # lint: allow[determinism/unkeyed-sort] int pairs
    _CANDIDATES.inc(len(pairs))
    return pairs


def minhash_refined_mask(
    support_matrices: list[sparse.spmatrix],
    idx_a: np.ndarray,
    idx_b: np.ndarray,
    *,
    bands: int = DEFAULT_BANDS,
    rows: int = DEFAULT_ROWS,
    seed: int = 0,
    pair_chunk: int = DEFAULT_PAIR_CHUNK,
) -> np.ndarray:
    """LSH candidates narrowed by the exact intersection test.

    The mask behind ``pair_pruning="minhash"``: every surviving pair
    provably intersects (no false positives reach the kernels), and the
    LSH stage only ever *removes* work relative to exact pruning.
    """
    idx_a = np.asarray(idx_a, dtype=np.int64)
    idx_b = np.asarray(idx_b, dtype=np.int64)
    candidates = minhash_pair_mask(
        support_matrices, idx_a, idx_b,
        bands=bands, rows=rows, seed=seed, pair_chunk=pair_chunk,
    )
    survivors = np.flatnonzero(candidates)
    _RECHECKED.inc(len(survivors))
    _LSH_PRUNED.inc(len(candidates) - len(survivors))
    mask = np.zeros(len(candidates), dtype=bool)
    if len(survivors):
        exact = intersecting_pair_mask(
            support_matrices,
            idx_a[survivors],
            idx_b[survivors],
            pair_chunk=pair_chunk,
        )
        mask[survivors] = exact
    return mask


def blocking_recall(
    exact_mask: np.ndarray, candidate_mask: np.ndarray
) -> float:
    """Fraction of exactly-intersecting pairs the candidates kept.

    1.0 means lossless blocking (every pair the exact pruner would
    evaluate is still evaluated); trivially 1.0 when nothing intersects.
    """
    exact_mask = np.asarray(exact_mask, dtype=bool)
    candidate_mask = np.asarray(candidate_mask, dtype=bool)
    if exact_mask.shape != candidate_mask.shape:
        raise ValueError("masks must be aligned to the same pair list")
    total = int(exact_mask.sum())
    if total == 0:
        return 1.0
    return float((exact_mask & candidate_mask).sum()) / float(total)
