"""Chunk sizing for the vectorized similarity kernels.

The vectorized resemblance kernel materializes dense row blocks of the
sparse profile matrix and broadcasts ``|a - b|`` over block pairs; peak
memory is ``block_rows**2 * n_columns * 8`` bytes per pair of blocks.
These helpers turn a byte budget into block sizes so the kernels bound
memory instead of densifying the full matrix, whatever the profile
dimensions are.
"""

from __future__ import annotations

import math

#: Default byte budget for one broadcast block (see ``rows_per_block``).
DEFAULT_BLOCK_BYTES = 64 * 1024 * 1024

_FLOAT_BYTES = 8


def rows_per_block(
    n_columns: int, budget_bytes: int = DEFAULT_BLOCK_BYTES
) -> int:
    """Rows per block so a ``rows x rows x n_columns`` float64 broadcast
    stays within ``budget_bytes`` (always at least 1)."""
    if n_columns <= 0:
        return 1
    rows = int(math.sqrt(budget_bytes / (_FLOAT_BYTES * n_columns)))
    return max(1, rows)


def chunk_slices(n: int, chunk: int) -> list[slice]:
    """Cover ``range(n)`` with consecutive slices of at most ``chunk``."""
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    return [slice(start, min(start + chunk, n)) for start in range(0, n, chunk)]
