"""Performance layer: memoization, chunking, and parallel execution.

The DISTINCT pipeline's cost is dominated by three hot loops — probability
propagation along join paths (§2.2), all-pairs similarity (§2.3–2.4), and
the agglomerative merge loop (§4.1). This package holds the shared
machinery that accelerates them without changing results:

- :mod:`repro.perf.memo` — the LRU-bounded join-fanout memo that lets
  prefix-shared propagation reuse per-tuple mass splits across the
  references of one name;
- :mod:`repro.perf.chunking` — row/pair chunk sizing so the vectorized
  similarity kernels bound peak memory instead of densifying everything;
- :mod:`repro.perf.parallel` — a ``ProcessPoolExecutor``-backed ordered
  map with deterministic, input-ordered result assembly and per-worker
  obs-counter merging (disambiguation workloads scale with the number of
  ambiguous names, which is embarrassingly parallel).

The vectorized similarity kernels themselves live in
:mod:`repro.similarity.vectorized`; the ``similarity_backend`` switch in
:class:`repro.config.DistinctConfig` routes the pipeline through them.
``benchmarks/bench_perf_kernels.py`` tracks the scalar/vectorized/parallel
trajectory in ``BENCH_perf.json``.
"""

from repro.perf.chunking import chunk_slices, rows_per_block
from repro.perf.memo import FanoutMemo
from repro.perf.parallel import RemoteTaskError, TaskOutcome, ordered_process_map

__all__ = [
    "FanoutMemo",
    "RemoteTaskError",
    "TaskOutcome",
    "chunk_slices",
    "ordered_process_map",
    "rows_per_block",
]
