"""Performance layer: memoization, chunking, and parallel execution.

The DISTINCT pipeline's cost is dominated by three hot loops — probability
propagation along join paths (§2.2), all-pairs similarity (§2.3–2.4), and
the agglomerative merge loop (§4.1). This package holds the shared
machinery that accelerates them without changing results:

- :mod:`repro.perf.memo` — the LRU-bounded join-fanout memo that lets
  prefix-shared propagation reuse per-tuple mass splits across the
  references of one name;
- :mod:`repro.perf.chunking` — row/pair chunk sizing so the vectorized
  similarity kernels bound peak memory instead of densifying everything;
- :mod:`repro.perf.parallel` — a ``ProcessPoolExecutor``-backed ordered
  map with deterministic, input-ordered result assembly, per-worker
  obs-counter merging, chunked dispatch, and an in-process fallback
  (:func:`~repro.perf.parallel.should_inline`) for workloads a pool
  cannot win (disambiguation workloads scale with the number of
  ambiguous names, which is embarrassingly parallel);
- :mod:`repro.perf.transitions` — row-normalized CSR transition matrices
  compiled from exclusion-filtered join fanouts, the building block of
  the batched propagation backend (:mod:`repro.paths.batch`);
- :mod:`repro.perf.blocking` — the inverted neighbor index: lossless
  zero-overlap pair pruning over stacked support matrices;
- :mod:`repro.perf.minhash` — banded MinHash/LSH candidate blocking over
  the same support sets, with an exact re-check of survivors
  (``pair_pruning="minhash"``) and a measured-recall knob;
- :mod:`repro.perf.shm` — zero-copy payload dispatch: protocol-5
  out-of-band buffers packed into one ``multiprocessing.shared_memory``
  segment that workers map read-only (:class:`~repro.perf.shm.SharedPayload`),
  plus the pickled baseline handle benchmarks compare against;
- :mod:`repro.perf.sharding` — cost-model shard planning (LPT order,
  cost ≈ refs² per name) that the parallel map's shared queue
  work-steals from, keeping input-ordered assembly.

The vectorized similarity kernels themselves live in
:mod:`repro.similarity.vectorized`; the ``similarity_backend`` /
``propagation_backend`` / ``pair_pruning`` / ``shared_memory`` /
``shard_strategy`` switches in :class:`repro.config.DistinctConfig`
route the pipeline through them. ``benchmarks/bench_perf_kernels.py``
tracks the scalar/vectorized/batched/parallel trajectory in
``BENCH_perf.json``; ``benchmarks/bench_scale.py`` tracks the
scale-out trajectory (shared-memory dispatch, work-stealing shards,
MinHash blocking) in ``BENCH_scale.json`` (history in
``BENCH_history.jsonl``).
"""

from repro.perf.blocking import (
    candidate_pairs,
    intersecting_pair_mask,
    touched_row_mask,
)
from repro.perf.chunking import chunk_slices, rows_per_block
from repro.perf.memo import FanoutMemo
from repro.perf.minhash import (
    blocking_recall,
    minhash_candidate_pairs,
    minhash_pair_mask,
    minhash_refined_mask,
    minhash_signatures,
)
from repro.perf.parallel import (
    DEFAULT_TASK_RETRIES,
    RemoteTaskError,
    TaskOutcome,
    ordered_process_map,
    should_inline,
)
from repro.perf.sharding import SHARD_STRATEGIES, name_cost, plan_shards
from repro.perf.shm import (
    PayloadHandle,
    PickledPayload,
    SharedPayload,
    active_segments,
)
from repro.perf.transitions import Transition, TransitionCache, build_transition

__all__ = [
    "DEFAULT_TASK_RETRIES",
    "FanoutMemo",
    "PayloadHandle",
    "PickledPayload",
    "RemoteTaskError",
    "SHARD_STRATEGIES",
    "SharedPayload",
    "TaskOutcome",
    "Transition",
    "TransitionCache",
    "active_segments",
    "blocking_recall",
    "build_transition",
    "candidate_pairs",
    "chunk_slices",
    "intersecting_pair_mask",
    "minhash_candidate_pairs",
    "minhash_pair_mask",
    "minhash_refined_mask",
    "minhash_signatures",
    "name_cost",
    "ordered_process_map",
    "plan_shards",
    "rows_per_block",
    "should_inline",
    "touched_row_mask",
]
