"""Performance layer: memoization, chunking, and parallel execution.

The DISTINCT pipeline's cost is dominated by three hot loops — probability
propagation along join paths (§2.2), all-pairs similarity (§2.3–2.4), and
the agglomerative merge loop (§4.1). This package holds the shared
machinery that accelerates them without changing results:

- :mod:`repro.perf.memo` — the LRU-bounded join-fanout memo that lets
  prefix-shared propagation reuse per-tuple mass splits across the
  references of one name;
- :mod:`repro.perf.chunking` — row/pair chunk sizing so the vectorized
  similarity kernels bound peak memory instead of densifying everything;
- :mod:`repro.perf.parallel` — a ``ProcessPoolExecutor``-backed ordered
  map with deterministic, input-ordered result assembly, per-worker
  obs-counter merging, chunked dispatch, and an in-process fallback
  (:func:`~repro.perf.parallel.should_inline`) for workloads a pool
  cannot win (disambiguation workloads scale with the number of
  ambiguous names, which is embarrassingly parallel);
- :mod:`repro.perf.transitions` — row-normalized CSR transition matrices
  compiled from exclusion-filtered join fanouts, the building block of
  the batched propagation backend (:mod:`repro.paths.batch`);
- :mod:`repro.perf.blocking` — the inverted neighbor index: lossless
  zero-overlap pair pruning over stacked support matrices.

The vectorized similarity kernels themselves live in
:mod:`repro.similarity.vectorized`; the ``similarity_backend`` /
``propagation_backend`` / ``pair_pruning`` switches in
:class:`repro.config.DistinctConfig` route the pipeline through them.
``benchmarks/bench_perf_kernels.py`` tracks the scalar/vectorized/
batched/parallel trajectory in ``BENCH_perf.json`` (history in
``BENCH_history.jsonl``).
"""

from repro.perf.blocking import candidate_pairs, intersecting_pair_mask
from repro.perf.chunking import chunk_slices, rows_per_block
from repro.perf.memo import FanoutMemo
from repro.perf.parallel import (
    DEFAULT_TASK_RETRIES,
    RemoteTaskError,
    TaskOutcome,
    ordered_process_map,
    should_inline,
)
from repro.perf.transitions import Transition, TransitionCache, build_transition

__all__ = [
    "DEFAULT_TASK_RETRIES",
    "FanoutMemo",
    "RemoteTaskError",
    "TaskOutcome",
    "Transition",
    "TransitionCache",
    "build_transition",
    "candidate_pairs",
    "chunk_slices",
    "intersecting_pair_mask",
    "ordered_process_map",
    "rows_per_block",
    "should_inline",
]
