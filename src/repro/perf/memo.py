"""LRU-bounded memo of per-tuple join fanouts.

Propagation pushes probability mass across a join step by looking up each
source tuple's join partners and splitting its mass uniformly over them
(§2.2). Within one ambiguous name the same tuples are visited over and
over: every reference's walk crosses the same papers, proceedings, and
coauthor rows, and the prefix-sharing trie (:mod:`repro.paths.trie`)
already forks shared *prefixes* per reference — but each reference still
re-resolves the per-tuple fanouts of those prefixes.

:class:`FanoutMemo` caches the *exclusion-filtered partner list* of one
``(step, source tuple)`` pair. The unit-mass vector a tuple emits across a
step is fully determined by that list (each partner receives
``mass / len(partners)``), so memoizing the list memoizes the mass vector
while staying origin-independent: the only origin-dependent part of a
fanout — dropping the origin tuple itself when a step re-enters the
reference relation — is applied by the engine *after* the lookup. Keying
by the step rather than the whole path prefix is strictly more sharing:
the fanout depends only on the prefix's last step.

The memo is bounded (LRU eviction) so a long-running service cannot grow
it without limit; hit/miss/eviction counters and a size gauge live under
``perf.fanout.*``.

A memo may be *epoch-pinned* (``epoch`` not None): it then refuses reads
at a different ``db.epoch`` than it was built at — a partner list cached
before a :func:`repro.reldb.apply_delta` is silently wrong for any source
row the delta touched. :meth:`advance` re-pins the memo at the new epoch,
dropping exactly the entries whose source row's partner list may have
changed and keeping the rest (``perf.ingest.rows_dirty`` /
``perf.ingest.rows_reused`` count the two sides).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Collection, Mapping
from typing import Hashable

from repro.errors import StaleCacheError
from repro.obs import counter, gauge

_HITS = counter("perf.fanout.hits")
_MISSES = counter("perf.fanout.misses")
_EVICTIONS = counter("perf.fanout.evictions")
_SIZE = gauge("perf.fanout.size")
_ROWS_DIRTY = counter("perf.ingest.rows_dirty")
_ROWS_REUSED = counter("perf.ingest.rows_reused")


class FanoutMemo:
    """Bounded ``(step, src_row) -> tuple(partner rows)`` cache.

    ``max_entries`` bounds the number of cached fanouts; the least
    recently used entry is evicted first. Partner lists are stored as
    tuples so cached values are immutable and safely shared. ``epoch``
    pins the memo to a database epoch (None leaves it unpinned, the
    behavior of memos that never outlive one database state).
    """

    __slots__ = ("max_entries", "epoch", "_entries")

    def __init__(self, max_entries: int = 65536, epoch: int | None = None) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.epoch = epoch
        self._entries: OrderedDict[Hashable, tuple[int, ...]] = OrderedDict()

    def check_epoch(self, db_epoch: int) -> None:
        """Raise :class:`StaleCacheError` when pinned at a different epoch."""
        if self.epoch is not None and self.epoch != db_epoch:
            raise StaleCacheError("FanoutMemo", self.epoch, db_epoch)

    def advance(self, new_epoch: int, dirty_rows: Mapping[str, Collection[int]]) -> None:
        """Re-pin at ``new_epoch``, dropping entries for dirty source rows.

        ``dirty_rows`` maps relation name -> row ids whose filtered
        partner lists may have changed (see
        :func:`repro.ingest.dirty.affected_rows`). Entries are keyed
        ``(step, src_row)``; an entry whose key does not carry a step
        with a ``src_relation`` is dropped conservatively.
        """
        kept: OrderedDict[Hashable, tuple[int, ...]] = OrderedDict()
        dirty = {rel: set(rows) for rel, rows in dirty_rows.items()}
        n_dirty = 0
        for key, partners in self._entries.items():
            step = key[0] if isinstance(key, tuple) and len(key) >= 2 else None
            relation = getattr(step, "src_relation", None)
            interpretable = relation is not None and isinstance(key[1], int)
            if not interpretable or key[1] in dirty.get(relation, ()):
                n_dirty += 1
                continue
            kept[key] = partners
        self._entries = kept
        self.epoch = new_epoch
        _ROWS_DIRTY.inc(n_dirty)
        _ROWS_REUSED.inc(len(kept))
        _SIZE.set(len(kept))

    def get(self, key: Hashable) -> tuple[int, ...] | None:
        """The cached partner tuple, or None. A hit refreshes recency."""
        entries = self._entries
        partners = entries.get(key)
        if partners is None:
            _MISSES.inc()
            return None
        entries.move_to_end(key)
        _HITS.inc()
        return partners

    def put(self, key: Hashable, partners: tuple[int, ...]) -> None:
        entries = self._entries
        entries[key] = partners
        if len(entries) > self.max_entries:
            entries.popitem(last=False)
            _EVICTIONS.inc()
        _SIZE.set(len(entries))

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        _SIZE.set(0)
