"""LRU-bounded memo of per-tuple join fanouts.

Propagation pushes probability mass across a join step by looking up each
source tuple's join partners and splitting its mass uniformly over them
(§2.2). Within one ambiguous name the same tuples are visited over and
over: every reference's walk crosses the same papers, proceedings, and
coauthor rows, and the prefix-sharing trie (:mod:`repro.paths.trie`)
already forks shared *prefixes* per reference — but each reference still
re-resolves the per-tuple fanouts of those prefixes.

:class:`FanoutMemo` caches the *exclusion-filtered partner list* of one
``(step, source tuple)`` pair. The unit-mass vector a tuple emits across a
step is fully determined by that list (each partner receives
``mass / len(partners)``), so memoizing the list memoizes the mass vector
while staying origin-independent: the only origin-dependent part of a
fanout — dropping the origin tuple itself when a step re-enters the
reference relation — is applied by the engine *after* the lookup. Keying
by the step rather than the whole path prefix is strictly more sharing:
the fanout depends only on the prefix's last step.

The memo is bounded (LRU eviction) so a long-running service cannot grow
it without limit; hit/miss/eviction counters and a size gauge live under
``perf.fanout.*``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro.obs import counter, gauge

_HITS = counter("perf.fanout.hits")
_MISSES = counter("perf.fanout.misses")
_EVICTIONS = counter("perf.fanout.evictions")
_SIZE = gauge("perf.fanout.size")


class FanoutMemo:
    """Bounded ``(step, src_row) -> tuple(partner rows)`` cache.

    ``max_entries`` bounds the number of cached fanouts; the least
    recently used entry is evicted first. Partner lists are stored as
    tuples so cached values are immutable and safely shared.
    """

    __slots__ = ("max_entries", "_entries")

    def __init__(self, max_entries: int = 65536) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, tuple[int, ...]] = OrderedDict()

    def get(self, key: Hashable) -> tuple[int, ...] | None:
        """The cached partner tuple, or None. A hit refreshes recency."""
        entries = self._entries
        partners = entries.get(key)
        if partners is None:
            _MISSES.inc()
            return None
        entries.move_to_end(key)
        _HITS.inc()
        return partners

    def put(self, key: Hashable, partners: tuple[int, ...]) -> None:
        entries = self._entries
        entries[key] = partners
        if len(entries) > self.max_entries:
            entries.popitem(last=False)
            _EVICTIONS.inc()
        _SIZE.set(len(entries))

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        _SIZE.set(0)
