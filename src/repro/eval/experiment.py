"""The multi-name experiment harness behind Table 2 and Fig 4.

A run scores one pipeline variant on a set of ambiguous names against the
ground truth: references of each name are prepared once (the expensive
profiling + pair features), then clustered per (variant, min-sim) cheaply —
which is what makes the paper's per-variant best-min-sim sweep affordable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.distinct import Distinct, NamePreparation
from repro.core.variants import VariantSpec
from repro.data.world import GroundTruth
from repro.eval.metrics import ClusterScores, pairwise_scores
from repro.obs import get_logger, span

log = get_logger("eval.experiment")

#: Default threshold grid for the per-variant best-min-sim sweep. Spans the
#: scales of the three cluster measures (walk probabilities live orders of
#: magnitude below resemblances).
DEFAULT_MIN_SIM_GRID: tuple[float, ...] = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.2, 0.3, 0.5,
)


@dataclass
class NameResult:
    """Scores for one ambiguous name under one variant."""

    name: str
    n_refs: int
    n_entities: int
    n_clusters: int
    scores: ClusterScores


@dataclass
class ExperimentResult:
    """Scores for one variant across all evaluated names."""

    variant_key: str
    min_sim: float
    names: list[NameResult] = field(default_factory=list)

    def _mean(self, attr: str) -> float:
        if not self.names:
            return 0.0
        return float(np.mean([getattr(r.scores, attr) for r in self.names]))

    @property
    def avg_precision(self) -> float:
        return self._mean("precision")

    @property
    def avg_recall(self) -> float:
        return self._mean("recall")

    @property
    def avg_f1(self) -> float:
        return self._mean("f1")

    @property
    def avg_accuracy(self) -> float:
        return self._mean("accuracy")


def prepare_names(distinct: Distinct, names: list[str]) -> dict[str, NamePreparation]:
    """Prepare every name once (profiles + pair features)."""
    with span("experiment.prepare", n_names=len(names)):
        preparations = {name: distinct.prepare(name) for name in names}
    log.info("prepared %d names", len(names))
    return preparations


def score_resolution(resolution, truth: GroundTruth) -> NameResult:
    """Score one resolved name against the ground truth."""
    gold = list(truth.clusters_for(resolution.name).values())
    scores = pairwise_scores(resolution.clusters, gold)
    return NameResult(
        name=resolution.name,
        n_refs=len(resolution.rows),
        n_entities=len(gold),
        n_clusters=resolution.n_clusters,
        scores=scores,
    )


def run_variant(
    distinct: Distinct,
    preparations: dict[str, NamePreparation],
    truth: GroundTruth,
    variant: VariantSpec,
    min_sim: float,
) -> ExperimentResult:
    """Cluster every prepared name under one variant at one threshold."""
    result = ExperimentResult(variant_key=variant.key, min_sim=min_sim)
    with span("experiment.variant", variant=variant.key, min_sim=min_sim) as sp:
        for name, prep in preparations.items():
            resolution = distinct.cluster_prepared(
                prep,
                min_sim=min_sim,
                measure=variant.measure,
                supervised=variant.supervised,
            )
            result.names.append(score_resolution(resolution, truth))
        sp.annotate(avg_f1=round(result.avg_f1, 4))
    log.debug(
        "variant %s @ min_sim=%g: avg f1 %.4f over %d names",
        variant.key, min_sim, result.avg_f1, len(result.names),
    )
    return result


def sweep_min_sim(
    distinct: Distinct,
    preparations: dict[str, NamePreparation],
    truth: GroundTruth,
    variant: VariantSpec,
    grid: tuple[float, ...] = DEFAULT_MIN_SIM_GRID,
) -> tuple[ExperimentResult, list[ExperimentResult]]:
    """Run a variant across a threshold grid; return (best by avg accuracy, all).

    This mirrors the paper: "For each approach except DISTINCT, we choose
    the min-sim that maximizes average accuracy."
    """
    runs = [
        run_variant(distinct, preparations, truth, variant, min_sim)
        for min_sim in grid
    ]
    best = max(runs, key=lambda r: (r.avg_accuracy, r.avg_f1))
    return best, runs


def run_experiment(
    distinct: Distinct,
    truth: GroundTruth,
    names: list[str],
    variants: list[VariantSpec],
    grid: tuple[float, ...] = DEFAULT_MIN_SIM_GRID,
) -> dict[str, ExperimentResult]:
    """Fig-4 style comparison: each variant at its best threshold.

    DISTINCT itself (``sweep_min_sim=False``) runs at the configured
    ``min_sim``; every other variant gets its best threshold from the grid.
    """
    preparations = prepare_names(distinct, names)
    results: dict[str, ExperimentResult] = {}
    for variant in variants:
        if variant.sweep_min_sim:
            best, _ = sweep_min_sim(distinct, preparations, truth, variant, grid)
            results[variant.key] = best
        else:
            results[variant.key] = run_variant(
                distinct, preparations, truth, variant, distinct.config.min_sim
            )
    return results
