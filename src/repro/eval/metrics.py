"""Clustering quality metrics.

The paper (§5) scores a predicted clustering ``C'`` against the gold
clustering ``C`` with pairwise precision / recall / f-measure:

- TP = pairs of references together in both C and C'
- FP = pairs together in C' but not in C
- FN = pairs together in C but not in C'
- precision = TP/(TP+FP), recall = TP/(TP+FN), f = harmonic mean.

B-cubed precision/recall is provided as a supplementary metric (not in the
paper) because pairwise scores over-weight large clusters.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass


@dataclass(frozen=True)
class ClusterScores:
    """Precision / recall / f-measure (plus raw pair counts and, for the
    pairwise metric, pair-level accuracy — Fig 4 reports both accuracy and
    f-measure)."""

    precision: float
    recall: float
    f1: float
    accuracy: float = 0.0
    tp: int = 0
    fp: int = 0
    fn: int = 0

    def __str__(self) -> str:
        return f"p={self.precision:.3f} r={self.recall:.3f} f={self.f1:.3f}"


def _labelings(
    predicted: Iterable[Iterable[Hashable]], gold: Iterable[Iterable[Hashable]]
) -> tuple[dict[Hashable, int], dict[Hashable, int]]:
    pred_label: dict[Hashable, int] = {}
    for label, cluster in enumerate(predicted):
        for item in cluster:
            if item in pred_label:
                raise ValueError(f"item {item!r} appears in two predicted clusters")
            pred_label[item] = label
    gold_label: dict[Hashable, int] = {}
    for label, cluster in enumerate(gold):
        for item in cluster:
            if item in gold_label:
                raise ValueError(f"item {item!r} appears in two gold clusters")
            gold_label[item] = label
    if set(pred_label) != set(gold_label):
        raise ValueError("predicted and gold clusterings cover different items")
    return pred_label, gold_label


def pairwise_scores(
    predicted: Iterable[Iterable[Hashable]], gold: Iterable[Iterable[Hashable]]
) -> ClusterScores:
    """§5 pairwise precision / recall / f-measure.

    Computed in O(n + #clusters^2) via the contingency table rather than by
    enumerating all pairs.
    """
    pred_label, gold_label = _labelings(predicted, gold)

    # Contingency counts: (pred cluster, gold cluster) -> size.
    joint: dict[tuple[int, int], int] = {}
    pred_sizes: dict[int, int] = {}
    gold_sizes: dict[int, int] = {}
    for item, p_label in pred_label.items():
        g_label = gold_label[item]
        joint[(p_label, g_label)] = joint.get((p_label, g_label), 0) + 1
        pred_sizes[p_label] = pred_sizes.get(p_label, 0) + 1
        gold_sizes[g_label] = gold_sizes.get(g_label, 0) + 1

    pairs = lambda n: n * (n - 1) // 2
    tp = sum(pairs(n) for n in joint.values())
    pred_pairs = sum(pairs(n) for n in pred_sizes.values())
    gold_pairs = sum(pairs(n) for n in gold_sizes.values())
    fp = pred_pairs - tp
    fn = gold_pairs - tp

    precision = tp / pred_pairs if pred_pairs else 1.0
    recall = tp / gold_pairs if gold_pairs else 1.0
    f1 = (
        2 * precision * recall / (precision + recall) if precision + recall else 0.0
    )
    total_pairs = pairs(len(pred_label))
    tn = total_pairs - tp - fp - fn
    accuracy = (tp + tn) / total_pairs if total_pairs else 1.0
    return ClusterScores(precision, recall, f1, accuracy=accuracy, tp=tp, fp=fp, fn=fn)


def bcubed_scores(
    predicted: Iterable[Iterable[Hashable]], gold: Iterable[Iterable[Hashable]]
) -> ClusterScores:
    """B-cubed precision / recall / f-measure (per-item averaged)."""
    pred_label, gold_label = _labelings(predicted, gold)

    joint: dict[tuple[int, int], int] = {}
    pred_sizes: dict[int, int] = {}
    gold_sizes: dict[int, int] = {}
    for item, p_label in pred_label.items():
        g_label = gold_label[item]
        joint[(p_label, g_label)] = joint.get((p_label, g_label), 0) + 1
        pred_sizes[p_label] = pred_sizes.get(p_label, 0) + 1
        gold_sizes[g_label] = gold_sizes.get(g_label, 0) + 1

    n = len(pred_label)
    if n == 0:
        return ClusterScores(1.0, 1.0, 1.0)
    precision = sum(
        count * count / pred_sizes[p] for (p, _), count in joint.items()
    ) / n
    recall = sum(count * count / gold_sizes[g] for (_, g), count in joint.items()) / n
    f1 = (
        2 * precision * recall / (precision + recall) if precision + recall else 0.0
    )
    return ClusterScores(precision, recall, f1)


def cluster_count_error(predicted, gold) -> int:
    """|#predicted clusters - #gold clusters| (diagnostic)."""
    return abs(len(list(predicted)) - len(list(gold)))
