"""Evaluation: clustering metrics, the multi-name experiment harness,
table/figure reporting, and Fig-5 style visualization."""

from repro.eval.metrics import (
    ClusterScores,
    bcubed_scores,
    pairwise_scores,
)
from repro.eval.experiment import (
    ExperimentResult,
    NameResult,
    run_experiment,
    run_variant,
    sweep_min_sim,
)
from repro.eval.reporting import format_table, format_bar_chart
from repro.eval.visualize import (
    cluster_context,
    render_clusters_context,
    render_clusters_dot,
    render_clusters_text,
)
from repro.eval.persistence import (
    load_experiment_results,
    save_experiment_results,
)
from repro.eval.runner import (
    ExperimentRunOutcome,
    experiment_checkpoint,
    run_resilient,
)

__all__ = [
    "ClusterScores",
    "pairwise_scores",
    "bcubed_scores",
    "NameResult",
    "ExperimentResult",
    "run_experiment",
    "run_variant",
    "sweep_min_sim",
    "format_table",
    "format_bar_chart",
    "render_clusters_text",
    "render_clusters_dot",
    "render_clusters_context",
    "cluster_context",
    "save_experiment_results",
    "load_experiment_results",
    "ExperimentRunOutcome",
    "experiment_checkpoint",
    "run_resilient",
]
