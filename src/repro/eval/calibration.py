"""Automatic min-sim calibration from synthetic ambiguity.

The paper reports a fixed min-sim but not how it was chosen. This module
makes the choice automatic, with the same spirit as §3's training-set trick:
*pretend* that k rare names (assumed unique, §3) are one shared name by
pooling their references, resolve the pooled set, and score against the
known grouping. Sweeping the threshold over many such synthetic ambiguous
names and picking the f-maximizing value calibrates min-sim with zero
manual labels.

The pooled references are profiled with the union of the member names'
exclusions, exactly as a genuinely shared name would be.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.distinct import Distinct, NamePreparation
from repro.core.features import all_pairs, compute_pair_features
from repro.core.references import extract_references
from repro.errors import DeadlineExceeded, NotFittedError, TrainingError
from repro.eval.metrics import pairwise_scores
from repro.ml.trainingset import build_training_set
from repro.obs import get_logger, span
from repro.paths.profiles import ProfileBuilder
from repro.perf import (
    DEFAULT_TASK_RETRIES,
    RemoteTaskError,
    SharedPayload,
    name_cost,
    ordered_process_map,
)
from repro.resilience import (
    CheckpointStore,
    Deadline,
    ErrorCollector,
    Policy,
    fault_check,
    guard,
)

log = get_logger("eval.calibration")

DEFAULT_GRID: tuple[float, ...] = (
    0.001, 0.002, 0.004, 0.006, 0.008, 0.012, 0.02, 0.03, 0.05,
)


@dataclass
class SyntheticName:
    """One pooled pseudo-ambiguous name: rows + their true grouping."""

    member_names: tuple[str, ...]
    rows: list[int]
    gold: list[set[int]]


@dataclass
class CalibrationResult:
    """Outcome of :func:`calibrate_min_sim`.

    ``seconds_prepare`` / ``seconds_sweep`` are ``time.perf_counter``
    wall times of the two calibration phases (profiling the pooled
    synthetic names vs. the threshold sweep over them).
    """

    best_min_sim: float
    f1_by_min_sim: dict[float, float]
    n_synthetic_names: int
    members_per_name: int
    details: list[SyntheticName] = field(default_factory=list, repr=False)
    seconds_prepare: float = 0.0
    seconds_sweep: float = 0.0
    #: Synthetic names actually scored (— < n_synthetic_names when some were
    #: skipped/collected by the error policy or cut off by the deadline).
    n_scored: int = 0
    interrupted: bool = False

    @property
    def seconds_total(self) -> float:
        return self.seconds_prepare + self.seconds_sweep


def make_synthetic_names(
    distinct: Distinct,
    n_names: int = 20,
    members: int = 3,
    min_refs: int = 3,
    max_refs: int = 25,
    seed: int = 0,
) -> list[SyntheticName]:
    """Sample pseudo-ambiguous names by pooling rare names' references."""
    if distinct.db is None:
        raise NotFittedError("fit the pipeline before calibrating")
    config = distinct.config
    training = build_training_set(
        distinct.db,
        n_positive=1,
        n_negative=1,
        max_token_count=config.max_token_count,
        min_refs=min_refs,
        max_refs=max_refs,
        seed=seed,
        reference_relation=config.reference_relation,
        object_relation=config.object_relation,
        object_key=config.object_key,
        name_attribute=config.name_attribute,
    )
    rare_names = training.rare_names
    if len(rare_names) < members:
        raise TrainingError(
            f"only {len(rare_names)} rare names available; need >= {members}"
        )

    rng = random.Random(seed)
    synthetic: list[SyntheticName] = []
    for _ in range(n_names):
        chosen = tuple(rng.sample(rare_names, members))
        rows: list[int] = []
        gold: list[set[int]] = []
        for name in chosen:
            refs = extract_references(distinct.db, name, config)
            rows.extend(refs.rows)
            gold.append(set(refs.rows))
        synthetic.append(SyntheticName(chosen, sorted(rows), gold))
    return synthetic


def prepare_synthetic(distinct: Distinct, synthetic: SyntheticName) -> NamePreparation:
    """Profile a pooled pseudo-name with the union of member exclusions."""
    assert distinct.db is not None and distinct.paths_ is not None
    fault_check("profile", "+".join(synthetic.member_names))
    config = distinct.config
    excluded_rows: set[int] = set()
    for name in synthetic.member_names:
        refs = extract_references(distinct.db, name, config)
        excluded_rows.update(refs.object_rows)
    builder = ProfileBuilder(
        distinct.db,
        distinct.paths_,
        {config.object_relation: frozenset(excluded_rows)},
        memo_size=config.propagation_memo_size,
    )
    features = compute_pair_features(
        builder,
        all_pairs(synthetic.rows),
        backend=config.similarity_backend,
        pair_chunk=config.similarity_pair_chunk,
        propagation=config.propagation_backend,
        prune=config.pair_pruning,
        degradation=config.degradation,
        minhash_bands=config.minhash_bands,
        minhash_rows=config.minhash_rows,
        minhash_seed=config.seed,
    )
    return NamePreparation(
        name="+".join(synthetic.member_names), rows=synthetic.rows, features=features
    )


def _calibrate_name_task(payload, synthetic: SyntheticName) -> dict:
    """Worker body for parallel calibration: profile + sweep one pooled name.

    Returns the per-grid-point f1 list plus the phase wall times so the
    parent's :class:`CalibrationResult` timing fields stay meaningful
    (they sum worker-side seconds, exactly like a serial run would).
    """
    distinct, grid = payload
    tp = time.perf_counter()
    prep = prepare_synthetic(distinct, synthetic)
    ts = time.perf_counter()
    f1s = [
        pairwise_scores(
            distinct.cluster_prepared(prep, min_sim=min_sim).clusters,
            synthetic.gold,
        ).f1
        for min_sim in grid
    ]
    return {
        "f1": f1s,
        "seconds_prepare": ts - tp,
        "seconds_sweep": time.perf_counter() - ts,
    }


def calibration_checkpoint(
    path,
    grid: tuple[float, ...] = DEFAULT_GRID,
    n_names: int = 20,
    members: int = 3,
    seed: int = 0,
) -> CheckpointStore:
    """The checkpoint store for one ``calibrate`` run's parameters."""
    return CheckpointStore(
        path,
        kind="calibrate",
        signature={
            "grid": list(grid),
            "n_names": n_names,
            "members": members,
            "seed": seed,
        },
    )


def calibrate_min_sim(
    distinct: Distinct,
    grid: tuple[float, ...] = DEFAULT_GRID,
    n_names: int = 20,
    members: int = 3,
    seed: int = 0,
    policy: Policy | str = Policy.RAISE,
    collector: ErrorCollector | None = None,
    checkpoint: CheckpointStore | None = None,
    deadline: Deadline | None = None,
    workers: int = 1,
    task_retries: int = DEFAULT_TASK_RETRIES,
) -> CalibrationResult:
    """Pick the f-maximizing min-sim over synthetic ambiguous names.

    Uses the already-fitted supervised models and the composite measure —
    the exact configuration that will run at resolve time.

    The expensive per-synthetic-name work (profiling the pooled references,
    then sweeping the grid) runs one name at a time so failures follow
    ``policy``, progress can be ``checkpoint``-ed after every name and
    resumed, and an expired ``deadline`` stops the run gracefully
    (``interrupted=True``; the partial result covers the scored names).
    Raises :class:`DeadlineExceeded` if the deadline expires before any
    synthetic name was scored.

    ``workers > 1`` fans the per-name work out over a process pool
    (:func:`repro.perf.ordered_process_map`); results are consumed in
    input order and worker failures re-enter the same ``guard`` the
    serial path uses, so the calibrated threshold and every policy /
    checkpoint / deadline behaviour match a single-worker run.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    policy = Policy.coerce(policy)
    collector = collector if collector is not None else ErrorCollector()
    t0 = time.perf_counter()
    with span("calibration.make_names", n_names=n_names, members=members):
        synthetic = make_synthetic_names(
            distinct, n_names=n_names, members=members, seed=seed
        )

    done: dict[str, list[float]] = {}
    if checkpoint is not None and checkpoint.exists():
        payload = checkpoint.load()  # None: corrupt file was quarantined
        if payload is not None:
            done = {entry["key"]: entry["f1"] for entry in payload["completed"]}

    completed: list[dict] = []
    per_name_f1: list[list[float]] = []
    interrupted = False
    seconds_prepare = time.perf_counter() - t0  # synthetic-name construction
    seconds_sweep = 0.0

    def save_progress(complete: bool = False) -> None:
        if checkpoint is not None:
            checkpoint.save(completed, errors=collector.to_dicts(), complete=complete)

    with span(
        "calibration.names",
        n_names=len(synthetic),
        grid_size=len(grid),
        workers=workers,
    ):
        results_iter = None
        payload_handle = None
        if workers > 1:
            pending = [
                syn for syn in synthetic
                if "+".join(syn.member_names) not in done
            ]
            payload = (distinct, grid)
            if distinct.config.shared_memory:
                # One shared segment instead of per-worker payload copies
                # (zero-copy numpy views; see repro.perf.shm).
                payload = payload_handle = SharedPayload.wrap(payload)
            costs = None
            if distinct.config.shard_strategy == "cost":
                costs = [name_cost(len(syn.rows)) for syn in pending]
            results_iter = ordered_process_map(
                _calibrate_name_task,
                payload,
                pending,
                workers=workers,
                deadline=deadline,
                task_retries=task_retries,
                costs=costs,
                shard_strategy=distinct.config.shard_strategy,
            )
        try:
            for syn in synthetic:
                key = "+".join(syn.member_names)
                if deadline is not None and deadline.expired():
                    interrupted = True
                    log.warning(
                        "calibration deadline expired after %d/%d synthetic names",
                        len(per_name_f1), len(synthetic),
                    )
                    break
                if key in done:
                    per_name_f1.append(done[key])
                    completed.append({"key": key, "f1": done[key]})
                    continue
                f1s: list[float] | None = None
                if results_iter is not None:
                    task = next(results_iter)
                    assert task.item is syn, "parallel map yielded out of order"
                    if task.interrupted:
                        interrupted = True
                        log.warning(
                            "calibration deadline expired after %d/%d synthetic names",
                            len(per_name_f1), len(synthetic),
                        )
                        break
                    with guard("calibration.name", key, policy, collector):
                        if task.error is not None:
                            raise RemoteTaskError(task.error)
                        f1s = task.value["f1"]
                        seconds_prepare += task.value["seconds_prepare"]
                        seconds_sweep += task.value["seconds_sweep"]
                else:
                    with guard("calibration.name", key, policy, collector):
                        tp = time.perf_counter()
                        prep = prepare_synthetic(distinct, syn)
                        seconds_prepare += time.perf_counter() - tp
                        ts = time.perf_counter()
                        f1s = [
                            pairwise_scores(
                                distinct.cluster_prepared(
                                    prep, min_sim=min_sim
                                ).clusters,
                                syn.gold,
                            ).f1
                            for min_sim in grid
                        ]
                        seconds_sweep += time.perf_counter() - ts
                if f1s is None:  # failed; policy skipped/collected it
                    save_progress()
                    continue
                per_name_f1.append(f1s)
                completed.append({"key": key, "f1": f1s})
                save_progress()
        finally:
            if results_iter is not None:
                # Cancels still-queued tasks when the loop exits early
                # (deadline, raise policy); no-op after full consumption.
                results_iter.close()
            if payload_handle is not None:
                # close() on a never-started generator skips its finally
                # (a deadline can expire before the first next()), so the
                # segment owner releases here too — exactly-once guarded.
                payload_handle.release()

    if not per_name_f1:
        if interrupted:
            raise DeadlineExceeded(
                "calibration deadline expired before any synthetic name was scored"
            )
        raise TrainingError(
            "no synthetic name could be scored "
            f"({len(collector)} failure(s) collected)"
        )

    f1_by_min_sim = {
        min_sim: float(np.mean([f1s[i] for f1s in per_name_f1]))
        for i, min_sim in enumerate(grid)
    }
    save_progress(complete=not interrupted)

    best = max(f1_by_min_sim, key=f1_by_min_sim.get)
    log.info(
        "calibrated min_sim=%g over %d/%d synthetic names "
        "(prepare %.2fs, sweep %.2fs)",
        best, len(per_name_f1), len(synthetic), seconds_prepare, seconds_sweep,
    )
    return CalibrationResult(
        best_min_sim=best,
        f1_by_min_sim=f1_by_min_sim,
        n_synthetic_names=n_names,
        members_per_name=members,
        details=synthetic,
        seconds_prepare=seconds_prepare,
        seconds_sweep=seconds_sweep,
        n_scored=len(per_name_f1),
        interrupted=interrupted,
    )
