"""Fig-5 style visualization of a resolved name.

The paper draws each real Wei Wang as a gray box of references with arrows
marking DISTINCT's mistakes. The text renderer prints one block per
*predicted* cluster with its gold-entity composition, then an error summary
(splits = one entity spread over several clusters, merges = one cluster
mixing several entities). A Graphviz DOT export is also provided.
"""

from __future__ import annotations

from collections import Counter

from repro.core.distinct import NameResolution
from repro.data.world import GroundTruth


def _entity_composition(
    resolution: NameResolution, truth: GroundTruth
) -> list[Counter]:
    """Per predicted cluster: Counter(entity id -> #refs)."""
    return [
        Counter(truth.entity_of_row[row] for row in cluster)
        for cluster in resolution.clusters
    ]


def render_clusters_text(resolution: NameResolution, truth: GroundTruth) -> str:
    """One block per predicted cluster plus a split/merge error summary."""
    composition = _entity_composition(resolution, truth)
    gold = truth.clusters_for(resolution.name)
    clusters_of_entity: dict[int, list[int]] = {}
    for idx, counter in enumerate(composition):
        for entity in counter:
            clusters_of_entity.setdefault(entity, []).append(idx)

    lines = [
        f"{resolution.name}: {len(resolution.rows)} references, "
        f"{len(gold)} real entities, {resolution.n_clusters} predicted clusters",
        "",
    ]
    labels = truth.entity_labels
    for idx, counter in enumerate(composition):
        total = sum(counter.values())
        majority, majority_count = counter.most_common(1)[0]
        purity = majority_count / total
        parts = ", ".join(
            f"entity {entity} x{count}" for entity, count in counter.most_common()
        )
        flag = "" if len(counter) == 1 else "   <-- MERGED entities"
        affiliation = labels.get(majority)
        where = f" @ {affiliation}" if affiliation else ""
        lines.append(
            f"  cluster {idx:>2} ({total:>3} refs, purity {purity:.2f}): [{parts}]{where}{flag}"
        )

    splits = {
        entity: idxs for entity, idxs in clusters_of_entity.items() if len(idxs) > 1
    }
    merges = [idx for idx, counter in enumerate(composition) if len(counter) > 1]
    lines.append("")
    if not splits and not merges:
        lines.append("  perfect resolution: no splits, no merges")
    else:
        for entity, idxs in sorted(splits.items()):
            lines.append(
                f"  SPLIT: entity {entity} ({len(gold[entity])} refs) spread over "
                f"clusters {idxs}"
            )
        for idx in merges:
            entities = sorted(composition[idx])
            lines.append(f"  MERGE: cluster {idx} mixes entities {entities}")
    return "\n".join(lines)


def cluster_context(
    db,
    resolution: NameResolution,
    cluster: set[int],
    config=None,
    top: int = 3,
) -> dict:
    """Human-readable context of one predicted cluster.

    Returns the cluster's most frequent coauthor names, venues, and year
    span — the information the paper's Fig 5 annotates each gray box with
    (affiliation stands in for it on real data).
    """
    from repro.config import DistinctConfig

    config = config or DistinctConfig()
    refs = db.table(config.reference_relation)
    objects = db.table(config.object_relation)
    object_pos = refs.schema.position(config.object_key)
    name_pos = objects.schema.position(config.name_attribute)
    object_key_pos = objects.schema.position(config.object_key)

    fk_attrs = [
        a.name
        for a in refs.schema.attributes
        if a.kind == "fk" and a.name != config.object_key
    ]
    group_attr = fk_attrs[0]
    group_pos = refs.schema.position(group_attr)
    group_index = db.index(config.reference_relation, group_attr)
    group_fk = next(
        fk
        for fk in db.schema.foreign_keys
        if fk.src_relation == config.reference_relation
        and fk.src_attribute == group_attr
    )
    group_table = db.table(group_fk.dst_relation)

    name_of_key = {
        row[object_key_pos]: row[name_pos] for row in objects.rows
    }
    coauthors: Counter[str] = Counter()
    venues: Counter[object] = Counter()
    years: list[int] = []
    for row_id in cluster:
        row = refs.row(row_id)
        group_key = row[group_pos]
        for sibling in group_index.lookup(group_key):
            other = refs.row(sibling)[object_pos]
            if other != row[object_pos]:
                coauthors[name_of_key[other]] += 1
        group_row_id = group_table.row_by_key(group_key)
        if group_row_id is not None:
            group_row = group_table.as_dict(group_row_id)
            for attr, value in group_row.items():
                if attr.startswith("proc") and value is not None:
                    venues[value] += 1
                if attr == "year" and isinstance(value, int):
                    years.append(value)
    return {
        "top_coauthors": coauthors.most_common(top),
        "top_venues": venues.most_common(top),
        "year_span": (min(years), max(years)) if years else None,
    }


def render_clusters_context(
    resolution: NameResolution, truth: GroundTruth, db, config=None, top: int = 3
) -> str:
    """Fig-5 rendering enriched with each cluster's real context."""
    base = render_clusters_text(resolution, truth)
    lines = [base, "", "cluster contexts:"]
    for idx, cluster in enumerate(resolution.clusters):
        context = cluster_context(db, resolution, cluster, config=config, top=top)
        names = ", ".join(f"{n} (x{c})" for n, c in context["top_coauthors"])
        lines.append(f"  cluster {idx:>2}: frequent collaborators: {names or '-'}")
    return "\n".join(lines)


def render_clusters_dot(resolution: NameResolution, truth: GroundTruth) -> str:
    """Graphviz DOT: one subgraph box per predicted cluster, nodes colored by
    gold entity (same fill color = same real person)."""
    palette = [
        "lightblue", "lightyellow", "lightpink", "lightgreen", "lavender",
        "mistyrose", "honeydew", "lightcyan", "wheat", "thistle",
        "palegreen", "khaki", "lightsalmon", "powderblue",
    ]
    entity_ids = sorted({truth.entity_of_row[row] for row in resolution.rows})
    color_of = {
        entity: palette[i % len(palette)] for i, entity in enumerate(entity_ids)
    }
    lines = [
        "graph distinct {",
        f'  label="{resolution.name}";',
        "  node [shape=box, style=filled];",
    ]
    for idx, cluster in enumerate(resolution.clusters):
        lines.append(f"  subgraph cluster_{idx} {{")
        lines.append(f'    label="cluster {idx}";')
        for row in sorted(cluster):
            entity = truth.entity_of_row[row]
            lines.append(
                f'    r{row} [label="ref {row}", fillcolor={color_of[entity]}];'
            )
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)
