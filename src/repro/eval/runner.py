"""Resilient per-name experiment runner: policies, checkpoints, deadlines.

:func:`repro.eval.experiment.run_variant` assumes every name prepares and
scores cleanly; this module wraps the same per-name loop with the
:mod:`repro.resilience` machinery so a long evaluation can

- survive a poisoned name (``policy="skip"``/``"collect"``),
- stop gracefully at a wall-clock :class:`~repro.resilience.Deadline`, and
- checkpoint per-name progress atomically and resume after a crash,
  reproducing the uninterrupted run byte-for-byte (completed names are
  reloaded from the checkpoint; remaining names are prepared and scored
  exactly as a fresh run would).

Checkpoints store serialized :class:`~repro.eval.experiment.NameResult`
payloads — name-preparation-level progress — not the (large, numpy-backed)
pair features, so saving after every name is cheap.

With ``workers > 1`` the per-name work fans out over a process pool
(:func:`repro.perf.ordered_process_map`). Results are consumed in input
order, worker failures re-enter the same ``guard`` the serial path uses
(so policies behave identically), per-worker obs counters are merged into
this process's registry, and checkpointing/resume is unchanged — the
assembled :class:`~repro.eval.experiment.ExperimentResult` is byte-for-byte
identical to a single-worker run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.distinct import Distinct
from repro.core.references import extract_references
from repro.core.variants import VariantSpec
from repro.data.world import GroundTruth
from repro.errors import DeadlineExceeded
from repro.eval.experiment import ExperimentResult, NameResult, score_resolution
from repro.eval.persistence import name_result_from_dict, name_result_to_dict
from repro.obs import counter, get_logger, histogram, span
from repro.perf import (
    DEFAULT_TASK_RETRIES,
    RemoteTaskError,
    SharedPayload,
    name_cost,
    ordered_process_map,
)
from repro.resilience import (
    CheckpointStore,
    Deadline,
    ErrorCollector,
    Policy,
    guard,
)

__all__ = ["ExperimentRunOutcome", "experiment_checkpoint", "run_resilient"]

log = get_logger("eval.runner")

_NAMES_SCORED = counter("experiment.names_scored")
_NAMES_FAILED = counter("experiment.names_failed")
_NAME_SECONDS = histogram("experiment.name_seconds")


def _score_name_task(payload, name: str) -> NameResult:
    """Worker body for parallel runs: prepare, cluster, and score one name.

    ``payload`` is the fork-inherited ``(distinct, truth, variant, min_sim)``
    tuple installed once per worker process by the pool initializer.
    """
    distinct, truth, variant, min_sim = payload
    prep = distinct.prepare(name)
    resolution = distinct.cluster_prepared(
        prep,
        min_sim=min_sim,
        measure=variant.measure,
        supervised=variant.supervised,
    )
    return score_resolution(resolution, truth)


@dataclass
class ExperimentRunOutcome:
    """What a resilient run produced, and how it ended.

    ``result`` holds the names that completed (all of them on a clean
    run); ``errors`` the collected failures (empty unless
    ``policy="collect"``); ``interrupted`` is True when the deadline
    expired before every name was attempted.
    """

    result: ExperimentResult
    errors: ErrorCollector = field(default_factory=ErrorCollector)
    interrupted: bool = False
    n_total: int = 0

    @property
    def n_completed(self) -> int:
        return len(self.result.names)

    @property
    def complete(self) -> bool:
        return not self.interrupted and self.n_completed + len(self.errors) >= self.n_total


def experiment_checkpoint(
    path, names: list[str], variant_key: str, min_sim: float
) -> CheckpointStore:
    """The checkpoint store for one ``experiment`` run's parameters."""
    return CheckpointStore(
        path,
        kind="experiment",
        signature={
            "names": list(names),
            "variant_key": variant_key,
            "min_sim": min_sim,
        },
    )


def run_resilient(
    distinct: Distinct,
    truth: GroundTruth,
    names: list[str],
    variant: VariantSpec,
    min_sim: float,
    policy: Policy | str = Policy.RAISE,
    collector: ErrorCollector | None = None,
    checkpoint: CheckpointStore | None = None,
    deadline: Deadline | None = None,
    workers: int = 1,
    task_retries: int = DEFAULT_TASK_RETRIES,
) -> ExperimentRunOutcome:
    """Score ``names`` under ``variant``, one name at a time.

    Unlike :func:`~repro.eval.experiment.run_variant` (which requires all
    preparations upfront), each name is prepared, clustered, and scored
    individually so progress can be checkpointed after every name and a
    failure loses at most one name. Results are deterministic and ordered
    by ``names``, so a resumed run's :class:`ExperimentResult` matches an
    uninterrupted one exactly.

    ``workers > 1`` scores the not-yet-checkpointed names on a process
    pool while preserving every serial guarantee (ordering, policies,
    checkpoints, deadline, merged obs counters) — see the module
    docstring. A name whose worker dies is re-dispatched up to
    ``task_retries`` times; past the budget it surfaces as a
    ``WorkerCrashed`` failure under the same ``policy`` as any other
    name failure.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    policy = Policy.coerce(policy)
    collector = collector if collector is not None else ErrorCollector()
    result = ExperimentResult(variant_key=variant.key, min_sim=min_sim)
    outcome = ExperimentRunOutcome(
        result=result, errors=collector, n_total=len(names)
    )

    done: dict[str, NameResult] = {}
    if checkpoint is not None and checkpoint.exists():
        payload = checkpoint.load()  # None: corrupt file was quarantined
        if payload is not None:
            done = {
                entry["name"]: name_result_from_dict(entry)
                for entry in payload["completed"]
            }
            for entry in payload.get("errors", ()):
                log.info(
                    "checkpointed failure carried over: [%s] %s: %s",
                    entry.get("stage"), entry.get("item"), entry.get("message"),
                )

    def save_progress(complete: bool = False) -> None:
        if checkpoint is not None:
            checkpoint.save(
                [name_result_to_dict(r) for r in result.names],
                errors=collector.to_dicts(),
                complete=complete,
            )

    with span(
        "experiment.resilient",
        variant=variant.key,
        min_sim=min_sim,
        n_names=len(names),
        workers=workers,
    ) as sp:
        results_iter = None
        payload_handle = None
        if workers > 1:
            pending = [n for n in names if n not in done]
            payload = (distinct, truth, variant, min_sim)
            if distinct.config.shared_memory:
                # One shared segment instead of per-worker payload copies
                # (zero-copy numpy views; see repro.perf.shm).
                payload = payload_handle = SharedPayload.wrap(payload)
            costs = None
            if distinct.config.shard_strategy == "cost":
                costs = [
                    name_cost(len(extract_references(distinct.db, n, distinct.config).rows))
                    for n in pending
                ]
            results_iter = ordered_process_map(
                _score_name_task,
                payload,
                pending,
                workers=workers,
                deadline=deadline,
                task_retries=task_retries,
                costs=costs,
                shard_strategy=distinct.config.shard_strategy,
            )
        try:
            for name in names:
                if deadline is not None and deadline.expired():
                    outcome.interrupted = True
                    log.warning(
                        "deadline expired after %d/%d names; progress %s",
                        outcome.n_completed, outcome.n_total,
                        "checkpointed" if checkpoint is not None else "not checkpointed",
                    )
                    break
                if name in done:
                    result.names.append(done[name])
                    continue
                scored = None
                if results_iter is not None:
                    task = next(results_iter)
                    assert task.item == name, "parallel map yielded out of order"
                    if task.interrupted:
                        outcome.interrupted = True
                        log.warning(
                            "deadline expired after %d/%d names; progress %s",
                            outcome.n_completed, outcome.n_total,
                            "checkpointed" if checkpoint is not None
                            else "not checkpointed",
                        )
                        break
                    _NAME_SECONDS.observe(task.seconds)
                    with guard("experiment.score", name, policy, collector):
                        if task.error is not None:
                            _NAMES_FAILED.inc()
                            raise RemoteTaskError(task.error)
                        scored = task.value
                else:
                    name_start = time.perf_counter()
                    with guard("experiment.score", name, policy, collector):
                        try:
                            prep = distinct.prepare(name)
                            resolution = distinct.cluster_prepared(
                                prep,
                                min_sim=min_sim,
                                measure=variant.measure,
                                supervised=variant.supervised,
                            )
                            scored = score_resolution(resolution, truth)
                        except (DeadlineExceeded, KeyboardInterrupt):
                            # Control flow, not a name failure: must not
                            # bump failure counters on its way out.
                            raise
                        except Exception:
                            _NAMES_FAILED.inc()
                            raise
                    _NAME_SECONDS.observe(time.perf_counter() - name_start)
                if scored is None:  # failed and policy skipped/collected it
                    save_progress()
                    continue
                result.names.append(scored)
                _NAMES_SCORED.inc()
                save_progress()
        finally:
            if results_iter is not None:
                # Cancels still-queued tasks when the loop exits early
                # (deadline, raise policy); no-op after full consumption.
                results_iter.close()
            if payload_handle is not None:
                # close() on a never-started generator skips its finally
                # (a deadline can expire before the first next()), so the
                # segment owner releases here too — exactly-once guarded.
                payload_handle.release()
        sp.annotate(
            n_completed=outcome.n_completed,
            n_failed=len(collector),
            interrupted=outcome.interrupted,
        )
    save_progress(complete=outcome.complete)
    return outcome
