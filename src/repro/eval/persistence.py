"""JSON persistence of experiment results.

Benches and CI runs archive their :class:`ExperimentResult` objects so runs
can be diffed across commits; the CLI's ``experiment`` command consumes the
same format. Payloads carry a ``format_version`` so future layout changes
fail loudly: :func:`experiment_result_from_dict` raises
:class:`~repro.errors.PersistenceError` on missing keys or an unknown
version instead of a bare ``KeyError``. Files are written atomically
(tmp + rename), so a crash mid-save never leaves a torn archive.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import PersistenceError
from repro.eval.experiment import ExperimentResult, NameResult
from repro.eval.metrics import ClusterScores
from repro.resilience.checkpoint import write_json_atomic

#: Version of the serialized payload layout. Bump when keys change shape.
FORMAT_VERSION = 1

#: Versions this build knows how to read. Version-less payloads (written
#: before versioning existed) are read as version 1 — the layout is the same.
_READABLE_VERSIONS = (1,)


def name_result_to_dict(r: NameResult) -> dict:
    return {
        "name": r.name,
        "n_refs": r.n_refs,
        "n_entities": r.n_entities,
        "n_clusters": r.n_clusters,
        "precision": r.scores.precision,
        "recall": r.scores.recall,
        "f1": r.scores.f1,
        "accuracy": r.scores.accuracy,
        "tp": r.scores.tp,
        "fp": r.scores.fp,
        "fn": r.scores.fn,
    }


def name_result_from_dict(entry: dict) -> NameResult:
    try:
        return NameResult(
            name=entry["name"],
            n_refs=entry["n_refs"],
            n_entities=entry["n_entities"],
            n_clusters=entry["n_clusters"],
            scores=ClusterScores(
                precision=entry["precision"],
                recall=entry["recall"],
                f1=entry["f1"],
                accuracy=entry.get("accuracy", 0.0),
                tp=entry.get("tp", 0),
                fp=entry.get("fp", 0),
                fn=entry.get("fn", 0),
            ),
        )
    except KeyError as exc:
        raise PersistenceError(
            f"name-result entry is missing required key {exc.args[0]!r}"
        ) from exc


def experiment_result_to_dict(result: ExperimentResult) -> dict:
    return {
        "format_version": FORMAT_VERSION,
        "variant_key": result.variant_key,
        "min_sim": result.min_sim,
        "names": [name_result_to_dict(r) for r in result.names],
        "avg_precision": result.avg_precision,
        "avg_recall": result.avg_recall,
        "avg_f1": result.avg_f1,
        "avg_accuracy": result.avg_accuracy,
    }


def experiment_result_from_dict(payload: dict) -> ExperimentResult:
    version = payload.get("format_version", 1)
    if version not in _READABLE_VERSIONS:
        raise PersistenceError(
            f"unknown experiment-result format_version {version!r} "
            f"(this build reads: {', '.join(map(str, _READABLE_VERSIONS))})"
        )
    try:
        result = ExperimentResult(
            variant_key=payload["variant_key"], min_sim=payload["min_sim"]
        )
        entries = payload["names"]
    except KeyError as exc:
        raise PersistenceError(
            f"experiment-result payload is missing required key {exc.args[0]!r}"
        ) from exc
    for entry in entries:
        result.names.append(name_result_from_dict(entry))
    return result


def save_experiment_results(
    results: dict[str, ExperimentResult], path: str | Path
) -> None:
    payload = {key: experiment_result_to_dict(r) for key, r in results.items()}
    write_json_atomic(path, payload)


def load_experiment_results(path: str | Path) -> dict[str, ExperimentResult]:
    payload = json.loads(Path(path).read_text())
    return {key: experiment_result_from_dict(p) for key, p in payload.items()}
