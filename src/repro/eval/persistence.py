"""JSON persistence of experiment results.

Benches and CI runs archive their :class:`ExperimentResult` objects so runs
can be diffed across commits; the CLI's ``experiment`` command consumes the
same format.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.eval.experiment import ExperimentResult, NameResult
from repro.eval.metrics import ClusterScores


def experiment_result_to_dict(result: ExperimentResult) -> dict:
    return {
        "variant_key": result.variant_key,
        "min_sim": result.min_sim,
        "names": [
            {
                "name": r.name,
                "n_refs": r.n_refs,
                "n_entities": r.n_entities,
                "n_clusters": r.n_clusters,
                "precision": r.scores.precision,
                "recall": r.scores.recall,
                "f1": r.scores.f1,
                "accuracy": r.scores.accuracy,
                "tp": r.scores.tp,
                "fp": r.scores.fp,
                "fn": r.scores.fn,
            }
            for r in result.names
        ],
        "avg_precision": result.avg_precision,
        "avg_recall": result.avg_recall,
        "avg_f1": result.avg_f1,
        "avg_accuracy": result.avg_accuracy,
    }


def experiment_result_from_dict(payload: dict) -> ExperimentResult:
    result = ExperimentResult(
        variant_key=payload["variant_key"], min_sim=payload["min_sim"]
    )
    for entry in payload["names"]:
        result.names.append(
            NameResult(
                name=entry["name"],
                n_refs=entry["n_refs"],
                n_entities=entry["n_entities"],
                n_clusters=entry["n_clusters"],
                scores=ClusterScores(
                    precision=entry["precision"],
                    recall=entry["recall"],
                    f1=entry["f1"],
                    accuracy=entry.get("accuracy", 0.0),
                    tp=entry.get("tp", 0),
                    fp=entry.get("fp", 0),
                    fn=entry.get("fn", 0),
                ),
            )
        )
    return result


def save_experiment_results(
    results: dict[str, ExperimentResult], path: str | Path
) -> None:
    payload = {key: experiment_result_to_dict(r) for key, r in results.items()}
    Path(path).write_text(json.dumps(payload, indent=2))


def load_experiment_results(path: str | Path) -> dict[str, ExperimentResult]:
    payload = json.loads(Path(path).read_text())
    return {key: experiment_result_from_dict(p) for key, p in payload.items()}
