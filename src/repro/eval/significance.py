"""Bootstrap significance for variant comparisons.

The Fig-4 comparison averages f-measure over ten names; with so few units,
is "DISTINCT beats variant X" luck? A paired bootstrap over the names gives
the standard answer: resample the name set with replacement, recompute the
average difference, and report the fraction of resamples where the sign
flips (an approximate one-sided p-value) plus a percentile confidence
interval.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.eval.experiment import ExperimentResult


@dataclass
class BootstrapComparison:
    """Paired bootstrap of (variant A - variant B) average f-measure."""

    key_a: str
    key_b: str
    observed_difference: float
    ci_low: float
    ci_high: float
    p_sign_flip: float
    n_resamples: int

    @property
    def significant(self) -> bool:
        """True when the 95% interval excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0

    def __str__(self) -> str:
        return (
            f"{self.key_a} - {self.key_b}: {self.observed_difference:+.4f} "
            f"[{self.ci_low:+.4f}, {self.ci_high:+.4f}] "
            f"(sign-flip p~{self.p_sign_flip:.3f})"
        )


def paired_bootstrap(
    result_a: ExperimentResult,
    result_b: ExperimentResult,
    metric: str = "f1",
    n_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapComparison:
    """Bootstrap the per-name paired difference between two variants.

    Both results must cover the same names (matched pairs).
    """
    by_name_a = {r.name: getattr(r.scores, metric) for r in result_a.names}
    by_name_b = {r.name: getattr(r.scores, metric) for r in result_b.names}
    if set(by_name_a) != set(by_name_b):
        raise ValueError("results cover different name sets")
    names = sorted(by_name_a)
    if not names:
        raise ValueError("no names to compare")

    differences = np.array([by_name_a[n] - by_name_b[n] for n in names])
    observed = float(differences.mean())

    rng = random.Random(seed)
    n = len(differences)
    resampled = np.empty(n_resamples)
    for i in range(n_resamples):
        picks = [rng.randrange(n) for _ in range(n)]
        resampled[i] = differences[picks].mean()

    ci_low, ci_high = np.percentile(resampled, [2.5, 97.5])
    if observed >= 0:
        p_flip = float(np.mean(resampled <= 0.0))
    else:
        p_flip = float(np.mean(resampled >= 0.0))
    return BootstrapComparison(
        key_a=result_a.variant_key,
        key_b=result_b.variant_key,
        observed_difference=observed,
        ci_low=float(ci_low),
        ci_high=float(ci_high),
        p_sign_flip=p_flip,
        n_resamples=n_resamples,
    )
