"""Plain-text rendering of tables and bar charts for the benches.

The benchmark harness regenerates every table and figure of the paper as
text: tables via :func:`format_table`, Fig 4 via :func:`format_bar_chart`.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in rendered_rows)
    return "\n".join(out)


def format_xy_chart(
    points: Sequence[tuple[float, float]],
    title: str | None = None,
    width: int = 60,
    height: int = 12,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render an ASCII scatter/line chart of (x, y) points.

    Used for threshold-sweep curves (precision/recall vs min-sim). Points
    are plotted on a character grid; x positions follow the *rank* of x
    values (sweeps are usually log-spaced), y is linear in [min, max].
    """
    if not points:
        return title or ""
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    y_lo, y_hi = min(ys), max(ys)
    span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    order = sorted(range(len(points)), key=lambda i: xs[i])
    for rank, idx in enumerate(order):
        col = round(rank * (width - 1) / max(1, len(points) - 1))
        row = height - 1 - round((ys[idx] - y_lo) / span * (height - 1))
        grid[row][col] = "*"

    out: list[str] = []
    if title:
        out.append(title)
    out.append(f"{y_label} in [{y_lo:.3f}, {y_hi:.3f}]")
    for row in grid:
        out.append("|" + "".join(row))
    out.append("+" + "-" * width)
    out.append(
        f" {x_label}: {min(xs):g} .. {max(xs):g} (rank-scaled, {len(points)} points)"
    )
    return "\n".join(out)


def format_bar_chart(
    items: Sequence[tuple[str, float]],
    title: str | None = None,
    width: int = 50,
    value_format: str = "{:.3f}",
) -> str:
    """Render a horizontal ASCII bar chart (values assumed in [0, 1])."""
    label_width = max((len(label) for label, _ in items), default=0)
    out: list[str] = []
    if title:
        out.append(title)
    for label, value in items:
        clamped = min(max(value, 0.0), 1.0)
        bar = "#" * round(clamped * width)
        out.append(
            f"{label.ljust(label_width)}  {value_format.format(value)}  {bar}"
        )
    return "\n".join(out)
