"""Neighbor profiles: the per-(reference, path) output of propagation.

A :class:`NeighborProfile` is the weighted neighbor-tuple set ``NB_P(r)`` of
§2.1/Definition 1 together with its connection strengths (§2.2): for each
neighbor row id ``t`` it stores ``(Prob_P(r->t), Prob_P(t->r))``. The
similarity measures in :mod:`repro.similarity` consume pairs of profiles.

:class:`ProfileBuilder` computes and caches profiles for a set of references
over a set of paths, sharing one :class:`PropagationEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import counter
from repro.paths.joinpath import JoinPath
from repro.paths.propagation import Exclusions, PropagationEngine, PropagationResult
from repro.reldb.database import Database

_CACHE_HITS = counter("profiles.cache_hits")
_CACHE_MISSES = counter("profiles.cache_misses")


@dataclass
class NeighborProfile:
    """Weighted neighborhood of one reference along one path.

    ``weights[t] = (forward, backward)`` for every neighbor row id ``t`` in
    the path's end relation.
    """

    path: JoinPath
    origin_row: int
    weights: dict[int, tuple[float, float]]

    @classmethod
    def from_result(cls, result: PropagationResult) -> "NeighborProfile":
        weights = {
            t: (fwd, result.backward.get(t, 0.0))
            for t, fwd in result.forward.items()
        }
        return cls(path=result.path, origin_row=result.origin_row, weights=weights)

    @property
    def support(self) -> set[int]:
        """Row ids of the neighbor tuples (``NB_P(r)``)."""
        return set(self.weights)

    def forward(self, row_id: int) -> float:
        return self.weights.get(row_id, _ZERO_PAIR)[0]

    def backward(self, row_id: int) -> float:
        return self.weights.get(row_id, _ZERO_PAIR)[1]

    def forward_mass(self) -> float:
        return sum(fwd for fwd, _ in self.weights.values())

    def __len__(self) -> int:
        return len(self.weights)

    def is_empty(self) -> bool:
        return not self.weights


_ZERO_PAIR = (0.0, 0.0)


class ProfileBuilder:
    """Computes neighbor profiles for many references over many paths.

    Profiles are cached by ``(path, origin_row)``; the cache belongs to this
    builder, so building one `ProfileBuilder` per ambiguous name (with that
    name's exclusions) is the intended usage.
    """

    def __init__(
        self,
        db: Database,
        paths: list[JoinPath],
        exclusions: Exclusions | None = None,
        exclude_origin: bool = True,
        memo_size: int | None = None,
        memo=None,
        transition_cache=None,
    ) -> None:
        """``memo_size`` > 0 equips the engine with an LRU-bounded
        :class:`~repro.perf.FanoutMemo` of that many per-tuple fanouts,
        shared by all of this builder's references (see
        :mod:`repro.paths.propagation`; results are identical either way).
        A caller-owned ``memo`` takes precedence over ``memo_size``;
        fresh memos are pinned to the database's current epoch so a
        delta applied behind the builder's back raises instead of
        serving stale fanouts. ``transition_cache`` (optional, a
        :class:`~repro.perf.transitions.TransitionCache`) persists the
        batched backend's compiled steps across :meth:`matrices_for`
        calls — delta ingest advances it per epoch.
        """
        from repro.perf.memo import FanoutMemo

        if memo is None and memo_size:
            memo = FanoutMemo(memo_size, epoch=getattr(db, "epoch", None))
        self.db = db
        self.paths = list(paths)
        self.engine = PropagationEngine(
            db, exclusions, exclude_origin=exclude_origin, memo=memo
        )
        self.transition_cache = transition_cache
        self._cache: dict[tuple[JoinPath, int], NeighborProfile] = {}

    def profile(self, path: JoinPath, origin_row: int) -> NeighborProfile:
        key = (path, origin_row)
        cached = self._cache.get(key)
        if cached is None:
            _CACHE_MISSES.inc()
            cached = NeighborProfile.from_result(self.engine.propagate(path, origin_row))
            self._cache[key] = cached
        else:
            _CACHE_HITS.inc()
        return cached

    def profiles_for(self, origin_row: int) -> dict[JoinPath, NeighborProfile]:
        """Profiles of one reference along every configured path.

        Misses are computed for all paths at once via the prefix-sharing
        trie walk (:mod:`repro.paths.trie`), which is substantially cheaper
        than per-path propagation on prefix-heavy path sets.
        """
        missing = [p for p in self.paths if (p, origin_row) not in self._cache]
        if missing:
            from repro.paths.trie import propagate_trie

            _CACHE_MISSES.inc(len(missing))
            for path, result in propagate_trie(
                self.engine, missing, origin_row
            ).items():
                self._cache[(path, origin_row)] = NeighborProfile.from_result(result)
        _CACHE_HITS.inc(len(self.paths) - len(missing))
        return {path: self._cache[(path, origin_row)] for path in self.paths}

    def warm(self, origin_rows: list[int]) -> None:
        """Precompute all profiles for the given references."""
        for row in origin_rows:
            self.profiles_for(row)

    def matrices_for(self, origin_rows: list[int]):
        """Batched profile matrices for the given references, per path.

        The batched backend (:mod:`repro.paths.batch`): one sparse
        matrix pair per path covering *all* the references at once,
        value-equivalent to stacking :meth:`profiles_for` outputs but
        computed as a handful of SpMM products instead of per-reference
        dict walks. Bypasses the per-reference profile cache (the batch
        is the unit of work); the engine's fanout memo is still shared.
        """
        from repro.paths.batch import batch_profile_matrices

        return batch_profile_matrices(
            self.engine, self.paths, origin_rows, cache=self.transition_cache
        )

    def evict(self, origin_rows) -> int:
        """Drop cached profiles of the given references (all paths).

        Delta ingest calls this for the references whose walks touch
        rows a delta changed; clean references keep their profiles,
        which stay byte-identical by construction.
        """
        rows = set(origin_rows)
        stale = [key for key in self._cache if key[1] in rows]
        for key in stale:
            del self._cache[key]
        return len(stale)

    @property
    def memo(self):
        """The engine's fanout memo (None when the builder has none)."""
        return self.engine.memo

    @property
    def cache_size(self) -> int:
        return len(self._cache)
