"""Probability propagation along a join path (§2.2, Fig 3 of the paper).

Forward pass — ``Prob_P(r -> t)``: the origin tuple starts with probability
1; at each join step every tuple splits its mass uniformly over its join
partners in the next relation, and partner masses accumulate.

Backward pass — ``Prob_P(t -> r)``: the probability of reaching the origin
from ``t`` by walking the reverse path, where at each reverse step a tuple
splits uniformly over *all* its reverse join partners (partners that cannot
reach the origin absorb and lose that mass). This is a dynamic program over
the forward levels: a tuple can reach the origin backward iff the origin
reached it forward, because both directions use the same join edges.

Two kinds of tuples are treated specially (DESIGN.md §6):

- *Globally excluded* tuples (e.g. the shared ``Authors`` row of the
  ambiguous name) are absent from the database for both passes — they are
  dropped from partner lists, numerator and denominator alike, so that two
  same-name references never look similar merely by carrying the same name.
- The *origin* tuple is excluded as an intermediate stop (levels >= 1 of the
  forward pass, and as a gathering partner into intermediate levels of the
  backward pass) but is of course the allowed endpoint of the backward walk.

An optional :class:`repro.perf.FanoutMemo` caches the exclusion-filtered
partner list of each ``(step, tuple)`` — the origin-independent part of a
mass split — so the references of one name share per-tuple fanout work on
top of the per-reference prefix sharing of :mod:`repro.paths.trie`.
Origin exclusion is applied *after* the memo lookup, so memoized and
unmemoized propagation produce identical results.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.obs import counter
from repro.paths.joinpath import JoinPath
from repro.perf.memo import FanoutMemo
from repro.reldb.database import Database

# Re-exported for callers catching stale-cache reads around propagation.
from repro.errors import StaleCacheError  # noqa: F401

Exclusions = Mapping[str, frozenset[int]]

#: Work accounting. ``tuples_visited`` counts tuples materialized at each
#: propagation level (forward and backward), in both the per-path and the
#: prefix-shared trie drivers — the dominant cost of profile building.
_RUNS = counter("propagation.runs")
_STEPS = counter("propagation.steps")
_TUPLES_VISITED = counter("propagation.tuples_visited")

_EMPTY_SET: frozenset[int] = frozenset()


@dataclass
class PropagationResult:
    """Outcome of propagating one reference along one path.

    ``forward[t]`` is ``Prob_P(r -> t)`` and ``backward[t]`` is
    ``Prob_P(t -> r)`` for every row id ``t`` of the path's end relation
    reached with non-zero probability. ``level_sizes`` records how many
    distinct tuples were reached at each level (diagnostics / cost
    accounting).
    """

    path: JoinPath
    origin_row: int
    forward: dict[int, float]
    backward: dict[int, float]
    level_sizes: list[int] = field(default_factory=list)

    @property
    def support(self) -> set[int]:
        return set(self.forward)

    def forward_mass(self) -> float:
        """Total forward probability mass at the end relation (<= 1)."""
        return sum(self.forward.values())


class PropagationEngine:
    """Runs forward/backward propagation against one database.

    Parameters
    ----------
    db:
        The database to walk.
    exclusions:
        Relation name -> row ids globally treated as absent.
    exclude_origin:
        If True (default), the origin tuple cannot be used as an
        intermediate stop on the walk (see module docstring).
    memo:
        Optional :class:`~repro.perf.FanoutMemo` caching per-tuple join
        fanouts across propagations of this engine. Exclusions are baked
        into cached entries, so a memo must never be shared between
        engines with different exclusions (one memo per name).
    """

    def __init__(
        self,
        db: Database,
        exclusions: Exclusions | None = None,
        exclude_origin: bool = True,
        memo: FanoutMemo | None = None,
    ) -> None:
        self.db = db
        self.exclusions = {k: frozenset(v) for k, v in (exclusions or {}).items()}
        self.exclude_origin = exclude_origin
        self.memo = memo

    # -- public API ---------------------------------------------------------

    def propagate(self, path: JoinPath, origin_row: int) -> PropagationResult:
        """Propagate from ``origin_row`` of ``path.start_relation`` along ``path``."""
        _RUNS.inc()
        levels = self._forward_levels(path, origin_row)
        backward = self._backward(path, origin_row, levels)
        return PropagationResult(
            path=path,
            origin_row=origin_row,
            forward=levels[-1],
            backward=backward,
            level_sizes=[len(level) for level in levels],
        )

    # -- forward ------------------------------------------------------------

    def _forward_levels(self, path: JoinPath, origin_row: int) -> list[dict[int, float]]:
        start = path.start_relation
        levels: list[dict[int, float]] = [{origin_row: 1.0}]
        for step in path.steps:
            levels.append(self._forward_step(step, levels[-1], start, origin_row))
        return levels

    def _forward_step(
        self,
        step,
        current: dict[int, float],
        start_relation: str,
        origin_row: int,
    ) -> dict[int, float]:
        """Push one level of probability mass across one join step."""
        src_table = self.db.table(step.src_relation)
        src_pos = src_table.schema.position(step.src_attribute)
        dst_index = self.db.index(step.dst_relation, step.dst_attribute)
        excluded = self.exclusions.get(step.dst_relation, _EMPTY_SET)
        drop_origin = self.exclude_origin and step.dst_relation == start_relation

        nxt: dict[int, float] = {}
        for row_id, mass in current.items():
            partners = self._partners(
                step, src_table, src_pos, dst_index, excluded, row_id
            )
            if drop_origin and partners:
                partners = [p for p in partners if p != origin_row]
            if not partners:
                continue
            share = mass / len(partners)
            for partner in partners:
                nxt[partner] = nxt.get(partner, 0.0) + share
        _STEPS.inc()
        _TUPLES_VISITED.inc(len(nxt))
        return nxt

    # -- backward -----------------------------------------------------------

    def _backward(
        self, path: JoinPath, origin_row: int, levels: list[dict[int, float]]
    ) -> dict[int, float]:
        """Dynamic program for ``Prob_P(t -> r)`` over the forward levels."""
        start = path.start_relation
        rev: dict[int, float] = {origin_row: 1.0}
        for k, step in enumerate(path.steps, start=1):
            rev = self._backward_step(
                step,
                levels[k],
                rev,
                start,
                origin_row,
                gather_into_origin_level=(k - 1 == 0),
            )
        return rev

    def _backward_step(
        self,
        step,
        level: dict[int, float],
        prev_rev: dict[int, float],
        start_relation: str,
        origin_row: int,
        gather_into_origin_level: bool,
    ) -> dict[int, float]:
        """One level of the backward DP: rev values for the tuples of
        ``level`` (reached by ``step``) from the previous level's rev values.

        rev at level k depends only on the path's first k steps, so — like
        the forward levels — it is shared between all paths extending the
        same prefix (exploited by :mod:`repro.paths.trie`).
        """
        back = step.reverse()  # relation of level k -> relation of level k-1
        src_table = self.db.table(back.src_relation)
        src_pos = src_table.schema.position(back.src_attribute)
        dst_index = self.db.index(back.dst_relation, back.dst_attribute)
        excluded = self.exclusions.get(back.dst_relation, _EMPTY_SET)
        drop_origin = (
            self.exclude_origin
            and not gather_into_origin_level
            and back.dst_relation == start_relation
        )

        rev: dict[int, float] = {}
        for row_id in level:
            partners = self._partners(
                back, src_table, src_pos, dst_index, excluded, row_id
            )
            if drop_origin and partners:
                partners = [p for p in partners if p != origin_row]
            if not partners:
                continue
            gathered = sum(prev_rev.get(p, 0.0) for p in partners)
            if gathered:
                rev[row_id] = gathered / len(partners)
        _STEPS.inc()
        _TUPLES_VISITED.inc(len(rev))
        return rev

    # -- helpers --------------------------------------------------------------

    def _partners(
        self, step, src_table, src_pos, dst_index, excluded, row_id
    ) -> tuple[int, ...] | list[int]:
        """Exclusion-filtered join partners of one tuple across one step.

        Origin-independent (the origin filter is the caller's), so cacheable
        per ``(step, row_id)`` when the engine has a memo.

        An epoch-pinned memo raises :class:`~repro.errors.StaleCacheError`
        here when the database has moved on (``apply_delta`` bumped
        ``db.epoch``) without the memo being advanced — serving a partner
        list compiled against the old row set would silently corrupt the
        propagation.
        """
        memo = self.memo
        if memo is not None:
            if memo.epoch is not None:
                memo.check_epoch(self.db.epoch)
            key = (step, row_id)
            cached = memo.get(key)
            if cached is not None:
                return cached
        value = src_table.row(row_id)[src_pos]
        if value is None:
            partners: tuple[int, ...] | list[int] = ()
        else:
            found = dst_index.lookup(value)
            if excluded:
                partners = tuple(p for p in found if p not in excluded)
            elif memo is not None:
                partners = tuple(found)
            else:
                partners = found  # never mutated by callers; avoid the copy
        if memo is not None:
            memo.put(key, partners)
        return partners


def make_exclusions(**relation_rows: set[int] | frozenset[int]) -> dict[str, frozenset[int]]:
    """Convenience constructor: ``make_exclusions(Publish={3}, Authors={7})``."""
    return {name: frozenset(rows) for name, rows in relation_rows.items()}
