"""Prefix-shared propagation over many join paths at once.

The enumerated path set is heavily prefix-redundant: all 27 default DBLP
paths start with ``Publish -> Publications`` or ``Publish -> Authors``, and
deeper paths extend shorter ones. Propagating each path independently
recomputes the shared prefixes' forward levels over and over.

:func:`propagate_trie` arranges the paths in a step trie and runs the
forward pass once per trie node, then runs the (cheap, per-path) backward
dynamic program using the stored forward levels. Results are *identical* to
:meth:`PropagationEngine.propagate` per path — asserted by the equivalence
property test — at roughly the cost of the distinct prefixes instead of the
sum of path lengths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.paths.joinpath import JoinPath
from repro.paths.propagation import PropagationEngine, PropagationResult
from repro.reldb.joins import JoinStep


@dataclass
class _TrieNode:
    """One shared prefix. ``paths`` are the full paths ending exactly here."""

    step: JoinStep | None
    children: dict[JoinStep, "_TrieNode"] = field(default_factory=dict)
    paths: list[JoinPath] = field(default_factory=list)


def _build_trie(paths: list[JoinPath]) -> _TrieNode:
    root = _TrieNode(step=None)
    for path in paths:
        node = root
        for step in path.steps:
            child = node.children.get(step)
            if child is None:
                child = _TrieNode(step=step)
                node.children[step] = child
            node = child
        node.paths.append(path)
    return root


def propagate_trie(
    engine: PropagationEngine, paths: list[JoinPath], origin_row: int
) -> dict[JoinPath, PropagationResult]:
    """Propagate ``origin_row`` along every path, sharing prefix work.

    All paths must share the engine's database and start at the same
    relation. Returns one :class:`PropagationResult` per input path,
    identical to propagating each path individually.
    """
    if not paths:
        return {}
    starts = {p.start_relation for p in paths}
    if len(starts) > 1:
        # lint: allow[determinism/unkeyed-sort] relation names are plain str
        raise ValueError(f"paths start at different relations: {sorted(starts)}")

    root = _build_trie(paths)
    start_relation = paths[0].start_relation
    results: dict[JoinPath, PropagationResult] = {}

    # Depth-first walk; ``levels`` and ``revs`` are the stacks of forward
    # level dicts and backward-DP dicts along the current prefix (index 0 =
    # origin level). Both directions depend only on the prefix, so both are
    # computed once per trie node.
    def visit(node: _TrieNode, levels: list[dict[int, float]], revs: list[dict[int, float]]) -> None:
        for path in node.paths:
            results[path] = PropagationResult(
                path=path,
                origin_row=origin_row,
                forward=levels[-1],
                backward=revs[-1],
                level_sizes=[len(level) for level in levels],
            )
        for child in node.children.values():
            next_level = engine._forward_step(
                child.step, levels[-1], start_relation, origin_row
            )
            next_rev = engine._backward_step(
                child.step,
                next_level,
                revs[-1],
                start_relation,
                origin_row,
                gather_into_origin_level=(len(levels) == 1),
            )
            levels.append(next_level)
            revs.append(next_rev)
            visit(child, levels, revs)
            levels.pop()
            revs.pop()

    visit(root, [{origin_row: 1.0}], [{origin_row: 1.0}])
    return results
