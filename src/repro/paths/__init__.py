"""Join paths and probability propagation (§2.1–§2.2 of the paper).

A join path is a chain of equi-join hops starting at the relation that holds
the references to be distinguished. The enumerator walks the schema graph to
produce all semantically meaningful paths up to a length bound; the
propagation engine pushes probability mass along one path (Fig 3 of the
paper), producing for each reachable neighbor tuple ``t`` both
``Prob_P(r -> t)`` and ``Prob_P(t -> r)``.
"""

from repro.paths.joinpath import JoinPath
from repro.paths.enumerate import PathEnumerationConfig, enumerate_paths
from repro.paths.propagation import PropagationEngine, PropagationResult
from repro.paths.profiles import NeighborProfile, ProfileBuilder

__all__ = [
    "JoinPath",
    "PathEnumerationConfig",
    "enumerate_paths",
    "PropagationEngine",
    "PropagationResult",
    "NeighborProfile",
    "ProfileBuilder",
]
