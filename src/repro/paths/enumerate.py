"""Enumerate the join paths used as similarity dimensions.

Starting from the relation holding the references (``Publish`` in DBLP), we
walk the schema graph and emit every path that can carry linkage semantics,
subject to pruning rules:

- **max_hops** bounds path length (the paper speaks of linkages "within a
  certain number of steps"); every prefix of an emitted path is also emitted,
  since e.g. the coauthor path is a prefix of the coauthor-of-coauthor path
  and both are distinct features.
- **Degenerate backtracking** is pruned: re-crossing a one-to-many step with
  its many-to-one inverse can only land back on the tuple just visited
  (paper -> its authorship rows -> the same paper), so it adds nothing.
  Re-crossing a many-to-one step with its one-to-many inverse fans out to
  *siblings* (authorship row -> paper -> all authorship rows of that paper)
  and is the essential move of the coauthor path, so it is allowed — but
  counted, and **max_sibling_expansions** bounds it per path to keep the
  path set small and meaningful.
- **Virtual relations are terminal**: a path may end at a virtualized
  attribute value (publisher, year, ...) but not travel through it. Walking
  through a popular value (every paper of the year 2003) produces enormous
  fan-out with near-zero semantic content.
- Optionally, a path must not revisit its start relation as an *intermediate*
  stop more than ``max_start_revisits`` times (the coauthor-of-coauthor path
  passes through ``Publish`` twice).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import counter, get_logger, span
from repro.paths.joinpath import JoinPath
from repro.reldb.joins import JoinStep, steps_from
from repro.reldb.schema import Schema
from repro.reldb.virtual import is_virtual_relation

log = get_logger("paths.enumerate")
_PATHS_ENUMERATED = counter("paths.enumerated")


@dataclass(frozen=True)
class PathEnumerationConfig:
    """Tuning knobs for :func:`enumerate_paths`.

    The defaults produce, on the DBLP schema, the path families the paper
    discusses: paper, coauthor, coauthor-of-coauthor, proceedings,
    conference, year, location, publisher, and conference-sibling paths.
    """

    max_hops: int = 7
    max_sibling_expansions: int = 3
    max_start_revisits: int = 2
    virtual_terminal: bool = True
    max_paths: int | None = 64

    def __post_init__(self) -> None:
        if self.max_hops < 1:
            raise ValueError("max_hops must be >= 1")
        if self.max_sibling_expansions < 0:
            raise ValueError("max_sibling_expansions must be >= 0")


def enumerate_paths(
    schema: Schema,
    start_relation: str,
    config: PathEnumerationConfig | None = None,
) -> list[JoinPath]:
    """All admissible join paths from ``start_relation``, shortest first.

    Ties in length are broken by signature so the output order (and thus
    feature order downstream) is deterministic. If ``config.max_paths`` is
    set, the shortest paths win.
    """
    config = config or PathEnumerationConfig()
    schema.relation(start_relation)  # raises if unknown

    with span("paths.enumerate", start=start_relation) as sp:
        results: list[JoinPath] = []
        frontier: list[JoinPath] = [
            JoinPath([step]) for step in steps_from(schema, start_relation)
        ]

        while frontier:
            next_frontier: list[JoinPath] = []
            for path in frontier:
                results.append(path)
                if path.length >= config.max_hops:
                    continue
                if config.virtual_terminal and is_virtual_relation(path.end_relation):
                    continue
                last = path.steps[-1]
                for step in steps_from(schema, path.end_relation):
                    if not _admissible(path, last, step, config):
                        continue
                    next_frontier.append(path.extend(step))
            frontier = next_frontier

        results.sort(key=lambda p: (p.length, p.signature()))
        if config.max_paths is not None:
            results = results[: config.max_paths]
        sp.annotate(n_paths=len(results), max_hops=config.max_hops)
    _PATHS_ENUMERATED.inc(len(results))
    log.debug("enumerated %d paths from %s", len(results), start_relation)
    return results


def _admissible(
    path: JoinPath, last: JoinStep, step: JoinStep, config: PathEnumerationConfig
) -> bool:
    if step.is_reverse_of(last):
        if last.cardinality == "1n":
            return False  # degenerate backtrack: can only return to the parent
        if path.sibling_expansions() + 1 > config.max_sibling_expansions:
            return False
    if step.dst_relation == path.start_relation:
        revisits = path.relation_sequence()[1:].count(path.start_relation) + 1
        if revisits > config.max_start_revisits:
            return False
    return True


def paths_by_signature(paths: list[JoinPath]) -> dict[str, JoinPath]:
    """Index a path list by signature (used by model deserialization)."""
    return {p.signature(): p for p in paths}
