"""Batched sparse propagation: all references of one name at once.

:class:`~repro.paths.propagation.PropagationEngine` walks one reference
at a time over Python dicts; ``propagation.tuples_visited`` makes that
the dominant pipeline cost. But one forward step is a linear map of the
mass vector, identical for every reference of a name (the *per-origin*
part — the origin tuple is not an intermediate stop — is a rank-limited
perturbation). Stacking the references' mass vectors as the rows of a
sparse matrix ``M`` turns each step into a single SpMM:

- **forward**: ``M_k = M_{k-1} @ T(step_k)`` where ``T`` is the
  row-normalized CSR transition of :mod:`repro.perf.transitions`,
  compiled from the same exclusion-filtered partner lists
  (:meth:`PropagationEngine._partners`) the scalar engine uses;
- **backward**: ``R_k = R_{k-1} @ T(step_k.reverse()).T``, with the
  reverse transition compiled only over the rows the forward pass
  reached (mirroring the scalar DP's per-level restriction).

Per-origin exclusion is applied as sparse corrections on top of the
origin-free products, once per level whose relation is the start
relation (``o_r`` is reference ``r``'s origin row, ``d_i`` the filtered
partner count of row ``i``):

- *forward*: the generic product both routed mass into ``o_r`` and
  counted it in the split denominators. For every source row ``i``
  joining to ``o_r`` with ``d_i >= 2``, the remaining partners each gain
  ``M[r, i] / (d_i (d_i - 1))`` — added as one extra SpMM
  ``U @ T`` with ``U[r, i] = M[r, i] / (d_i - 1)`` — and the ``(r, o_r)``
  entry is then zeroed exactly (rows with ``d_i == 1`` lose their mass,
  as in the scalar engine).
- *backward*: entries ``R_k[r, o_r]`` at intermediate start-relation
  levels are zeroed (the scalar DP never computes a rev value for the
  origin there), so by the time a later level gathers *from* the origin
  its contribution is already zero and only the denominator needs
  fixing: for every row ``t`` whose reverse partners include ``o_r``
  with ``d_t >= 2``, scale ``R_k[r, t]`` by ``d_t / (d_t - 1)``.

Both corrections touch O(origin fanout) entries per reference — no
cancellation-prone subtractions — so batched results match the scalar
engine to floating-point reassociation tolerance (the property suite
asserts <= 1e-12; the bench gates at 1e-9).

The walk shares prefixes across paths through the same step trie as
:func:`repro.paths.trie.propagate_trie`. Final per-path backward
matrices are masked to the forward support pattern, reproducing
:class:`~repro.paths.profiles.NeighborProfile` semantics (backward
weights exist only for forward-reached neighbors).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.obs import counter
from repro.paths.joinpath import JoinPath
from repro.paths.propagation import PropagationEngine, _EMPTY_SET
from repro.paths.trie import _TrieNode, _build_trie
from repro.perf.transitions import Transition, TransitionCache

__all__ = ["BatchedProfiles", "batch_profile_matrices", "merge_batched"]

#: Work accounting for the batched backend. ``tuples`` counts nonzeros
#: materialized per level (the batched analogue of
#: ``propagation.tuples_visited``, deduplicated across references);
#: ``spmm`` counts sparse matrix products; ``origin_corrections`` counts
#: corrected entries.
_BATCH_RUNS = counter("propagation.batch.runs")
_BATCH_SPMM = counter("propagation.batch.spmm")
_BATCH_TUPLES = counter("propagation.batch.tuples")
_BATCH_CORRECTIONS = counter("propagation.batch.origin_corrections")


@dataclass
class BatchedProfiles:
    """Stacked neighbor profiles of one path for a batch of references.

    ``forward[k, t]`` is ``Prob_P(r_k -> t)`` and ``backward[k, t]`` is
    ``Prob_P(t -> r_k)`` for ``rows[k]``'s reference; columns span the
    *full* end relation (row id == column id), and the backward pattern
    is a subset of the forward pattern — the same contract as stacking
    :class:`~repro.paths.profiles.NeighborProfile` objects through
    :func:`repro.similarity.vectorized.profile_matrices`, up to the
    wider (but value-identical) column space, which the pair kernels
    never depend on.
    """

    path: JoinPath
    rows: list[int]
    forward: sparse.csr_matrix
    backward: sparse.csr_matrix

    def weights_for(self, k: int) -> dict[int, tuple[float, float]]:
        """Reference ``rows[k]``'s profile as a NeighborProfile-style dict."""
        fwd = self.forward.getrow(k).tocoo()
        back_row = self.backward.getrow(k)
        back = dict(zip(back_row.indices.tolist(), back_row.data.tolist()))
        return {
            int(t): (float(v), float(back.get(int(t), 0.0)))
            for t, v in zip(fwd.col, fwd.data)
        }


class _BatchContext:
    """Per-run state: engine access, origin bookkeeping, compiled steps.

    ``cache`` may be a caller-owned :class:`TransitionCache` that outlives
    the run (delta ingest reuses compiled transitions across epochs); a
    fresh per-run cache is pinned to the database epoch so a mid-run
    ``apply_delta`` raises instead of mixing row spaces.
    """

    def __init__(
        self,
        engine: PropagationEngine,
        origin_rows: list[int],
        cache: TransitionCache | None = None,
    ) -> None:
        self.engine = engine
        self.db = engine.db
        self.origins = np.asarray(list(origin_rows), dtype=np.int64)
        self.n_refs = len(origin_rows)
        if cache is None:
            cache = TransitionCache(epoch=getattr(self.db, "epoch", None))
        elif cache.epoch is not None:
            cache.check_epoch(self.db.epoch)
        self.cache = cache
        self._fanouts: dict = {}

    def n_rows(self, relation: str) -> int:
        return len(self.db.table(relation).rows)

    def fanout_for(self, step):
        """Partner-list closure for one step, shared with the scalar engine.

        Routing through :meth:`PropagationEngine._partners` keeps the
        exclusion filtering and the :class:`~repro.perf.memo.FanoutMemo`
        identical across backends.
        """
        fanout = self._fanouts.get(step)
        if fanout is None:
            engine = self.engine
            src_table = self.db.table(step.src_relation)
            src_pos = src_table.schema.position(step.src_attribute)
            dst_index = self.db.index(step.dst_relation, step.dst_attribute)
            excluded = engine.exclusions.get(step.dst_relation, _EMPTY_SET)

            def fanout(row_id: int, _ctx=(engine, src_table, src_pos, dst_index, excluded)):
                eng, table, pos, index, excl = _ctx
                return eng._partners(step, table, pos, index, excl, row_id)

            self._fanouts[step] = fanout
        return fanout

    def transition(self, step, src_rows: np.ndarray, shape) -> Transition:
        if self.cache.epoch is not None:
            self.cache.check_epoch(self.db.epoch)
        return self.cache.get(step, src_rows, shape, self.fanout_for(step))


def _support_rows(matrix: sparse.csr_matrix) -> np.ndarray:
    """Distinct nonzero column ids (the union support across references)."""
    if matrix.nnz == 0:
        return np.empty(0, dtype=np.int64)
    return np.unique(matrix.indices).astype(np.int64)


def _entries_at(matrix: sparse.csr_matrix, cols: np.ndarray) -> np.ndarray:
    """``matrix[r, cols[r]]`` for every row ``r`` (indices must be sorted)."""
    out = np.zeros(matrix.shape[0])
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    for r in range(matrix.shape[0]):
        lo, hi = indptr[r], indptr[r + 1]
        pos = lo + np.searchsorted(indices[lo:hi], cols[r])
        if pos < hi and indices[pos] == cols[r]:
            out[r] = data[pos]
    return out


def _add_entries(
    matrix: sparse.csr_matrix,
    rows: list[int],
    cols: list[int],
    values: list[float],
) -> sparse.csr_matrix:
    """``matrix`` plus a sparse update, canonicalized (sorted, no zeros)."""
    update = sparse.csr_matrix(
        (
            np.asarray(values, dtype=np.float64),
            (np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64)),
        ),
        shape=matrix.shape,
    )
    out = (matrix + update).tocsr()
    out.sort_indices()
    out.eliminate_zeros()
    return out


def _canonical(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    matrix = matrix.tocsr()
    matrix.sort_indices()
    matrix.eliminate_zeros()
    return matrix


def _zero_origin_column(
    matrix: sparse.csr_matrix, origins: np.ndarray
) -> sparse.csr_matrix:
    """Exactly zero entry ``(r, origins[r])`` for every reference row."""
    current = _entries_at(matrix, origins)
    hot = np.flatnonzero(current)
    if not len(hot):
        return matrix
    return _add_entries(
        matrix,
        hot.tolist(),
        origins[hot].tolist(),
        (-current[hot]).tolist(),
    )


def _forward_step_batch(
    ctx: _BatchContext, step, current: sparse.csr_matrix, start_relation: str
) -> sparse.csr_matrix:
    """Batched :meth:`PropagationEngine._forward_step`: one SpMM plus the
    per-origin correction when the step lands on the start relation."""
    shape = (current.shape[1], ctx.n_rows(step.dst_relation))
    transition = ctx.transition(step, _support_rows(current), shape)
    nxt = (current @ transition.matrix).tocsr()
    _BATCH_SPMM.inc()
    if ctx.engine.exclude_origin and step.dst_relation == start_relation:
        nxt = _forward_origin_fix(ctx, step, current, nxt, transition)
    nxt = _canonical(nxt)
    _BATCH_TUPLES.inc(nxt.nnz)
    return nxt


def _forward_origin_fix(
    ctx: _BatchContext,
    step,
    current: sparse.csr_matrix,
    nxt: sparse.csr_matrix,
    transition: Transition,
) -> sparse.csr_matrix:
    """Redistribute the mass the generic product routed via each origin.

    See the module docstring for the algebra. References whose origin is
    globally excluded need no fix: the generic transition already
    dropped the origin from every partner list.
    """
    excluded_dst = ctx.engine.exclusions.get(step.dst_relation, _EMPTY_SET)
    rev_fanout = ctx.fanout_for(step.reverse())
    degrees = transition.degrees
    current = _canonical(current)
    indptr, indices, data = current.indptr, current.indices, current.data
    u_rows: list[int] = []
    u_cols: list[int] = []
    u_vals: list[float] = []
    for r in range(ctx.n_refs):
        origin = int(ctx.origins[r])
        if origin in excluded_dst:
            continue
        lo, hi = indptr[r], indptr[r + 1]
        if lo == hi:
            continue
        row_cols = indices[lo:hi]
        row_vals = data[lo:hi]
        for i in rev_fanout(origin):
            pos = np.searchsorted(row_cols, i)
            if pos >= len(row_cols) or row_cols[pos] != i:
                continue
            if degrees[i] >= 2.0:
                u_rows.append(r)
                u_cols.append(int(i))
                u_vals.append(float(row_vals[pos]) / (degrees[i] - 1.0))
    if u_vals:
        update = sparse.csr_matrix(
            (u_vals, (u_rows, u_cols)), shape=current.shape
        )
        nxt = (nxt + update @ transition.matrix).tocsr()
        _BATCH_SPMM.inc()
        _BATCH_CORRECTIONS.inc(len(u_vals))
    return _zero_origin_column(_canonical(nxt), ctx.origins)


def _backward_step_batch(
    ctx: _BatchContext,
    step,
    level: sparse.csr_matrix,
    prev_rev: sparse.csr_matrix,
    start_relation: str,
    gather_into_origin_level: bool,
) -> sparse.csr_matrix:
    """Batched :meth:`PropagationEngine._backward_step`.

    The reverse transition is compiled over the union forward support of
    this level — the batched analogue of the scalar DP computing rev
    values only for forward-reached tuples. (A cached superset may cover
    extra rows; their rev values are exact zeros by the reachability
    argument in :mod:`repro.paths.propagation`, and the final forward-
    pattern mask removes the explicit entries.)
    """
    back = step.reverse()
    shape = (ctx.n_rows(back.src_relation), ctx.n_rows(back.dst_relation))
    support = _support_rows(level)
    transition = ctx.transition(back, support, shape)
    rev = (prev_rev @ transition.matrix.T).tocsr()
    _BATCH_SPMM.inc()
    # Restrict to the level's union forward support — the scalar DP's
    # domain. A cached transition may cover extra rows (compiled for
    # another trie branch); their values are exact zeros for this level's
    # references, but masking keeps the invariant structural.
    mask = np.zeros(shape[0], dtype=np.float64)
    mask[support] = 1.0
    rev = sparse.csr_matrix(rev.multiply(mask))
    if (
        ctx.engine.exclude_origin
        and not gather_into_origin_level
        and back.dst_relation == start_relation
    ):
        rev = _backward_origin_fix(ctx, step, rev, transition)
    if ctx.engine.exclude_origin and step.dst_relation == start_relation:
        # The scalar DP never computes a rev value for the origin at an
        # intermediate start-relation level (the forward pass dropped it
        # from the level), so later gathers must see exactly zero there.
        rev = _zero_origin_column(_canonical(rev), ctx.origins)
    rev = _canonical(rev)
    _BATCH_TUPLES.inc(rev.nnz)
    return rev


def _backward_origin_fix(
    ctx: _BatchContext, step, rev: sparse.csr_matrix, transition: Transition
) -> sparse.csr_matrix:
    """Fix the gather denominators where the origin was a reverse partner.

    The origin's *numerator* contribution is already zero (its rev entry
    was zeroed at the previous level), so dropping it from the partner
    list only rescales: ``rev[r, t] *= d_t / (d_t - 1)`` for every row
    ``t`` joining to ``o_r`` with ``d_t >= 2`` (``d_t == 1`` means the
    origin was the sole partner and the generic value is already zero).
    """
    excluded_prev = ctx.engine.exclusions.get(step.src_relation, _EMPTY_SET)
    fwd_fanout = ctx.fanout_for(step)
    degrees = transition.degrees
    rev = _canonical(rev)
    indptr, indices, data = rev.indptr, rev.indices, rev.data
    u_rows: list[int] = []
    u_cols: list[int] = []
    u_vals: list[float] = []
    for r in range(ctx.n_refs):
        origin = int(ctx.origins[r])
        if origin in excluded_prev:
            continue
        lo, hi = indptr[r], indptr[r + 1]
        if lo == hi:
            continue
        row_cols = indices[lo:hi]
        row_vals = data[lo:hi]
        for t in fwd_fanout(origin):
            pos = np.searchsorted(row_cols, t)
            if pos >= len(row_cols) or row_cols[pos] != t:
                continue
            if degrees[t] >= 2.0:
                scale = degrees[t] / (degrees[t] - 1.0)
                u_rows.append(r)
                u_cols.append(int(t))
                u_vals.append(float(row_vals[pos]) * (scale - 1.0))
    if not u_vals:
        return rev
    _BATCH_CORRECTIONS.inc(len(u_vals))
    return _add_entries(rev, u_rows, u_cols, u_vals)


def _finalize(
    path: JoinPath,
    origin_rows: list[int],
    forward: sparse.csr_matrix,
    rev: sparse.csr_matrix,
) -> BatchedProfiles:
    """Per-path output: backward masked to the forward support pattern."""
    pattern = forward.copy()
    pattern.data = np.ones_like(pattern.data)
    backward = _canonical(rev.multiply(pattern))
    return BatchedProfiles(
        path=path, rows=list(origin_rows), forward=forward, backward=backward
    )


def _trace_add(
    trace: dict[str, sparse.csr_matrix], relation: str, matrix: sparse.csr_matrix
) -> None:
    """OR ``matrix``'s nonzero pattern into the relation's visited pattern.

    Patterns are boolean ``(n_refs, n_relation_rows)`` CSR matrices; a set
    bit means the reference's walk put nonzero mass on that tuple at some
    forward level. Delta ingest intersects these with the rows a delta
    touched to find exactly the references whose profiles can change.
    """
    pattern = sparse.csr_matrix(
        (
            np.ones(matrix.nnz, dtype=bool),
            matrix.indices.copy(),
            matrix.indptr.copy(),
        ),
        shape=matrix.shape,
    )
    prev = trace.get(relation)
    if prev is not None:
        pattern = prev.maximum(pattern).tocsr()
    trace[relation] = pattern


def batch_profile_matrices(
    engine: PropagationEngine,
    paths: list[JoinPath],
    origin_rows: list[int],
    cache: TransitionCache | None = None,
    trace: dict[str, sparse.csr_matrix] | None = None,
) -> dict[JoinPath, BatchedProfiles]:
    """Stacked (forward, backward) profile matrices for every path.

    Row ``k`` of each matrix equals the profile
    ``engine.propagate(path, origin_rows[k])`` would produce (to
    reassociation tolerance), with columns over the full end relation.
    Prefix work is shared across paths through the step trie, and level
    work is shared across references through the SpMM formulation.

    ``cache`` lets a caller keep the compiled transitions across runs
    (delta ingest); ``trace``, when given a dict, is filled with the
    per-relation visited patterns of every forward level (including the
    origin level) — the raw material of dirty-reference detection.
    """
    if not paths:
        return {}
    starts = {p.start_relation for p in paths}
    if len(starts) > 1:
        # lint: allow[determinism/unkeyed-sort] relation names are plain str
        raise ValueError(f"paths start at different relations: {sorted(starts)}")
    _BATCH_RUNS.inc()
    ctx = _BatchContext(engine, origin_rows, cache=cache)
    start_relation = paths[0].start_relation
    n_start = ctx.n_rows(start_relation)
    ones = np.ones(ctx.n_refs, dtype=np.float64)
    ref_ids = np.arange(ctx.n_refs, dtype=np.int64)
    initial = sparse.csr_matrix(
        (ones, (ref_ids, ctx.origins)), shape=(ctx.n_refs, n_start)
    )
    initial.sort_indices()
    if trace is not None:
        _trace_add(trace, start_relation, initial)

    results: dict[JoinPath, BatchedProfiles] = {}
    root = _build_trie(paths)

    def visit(
        node: _TrieNode, forward: sparse.csr_matrix, rev: sparse.csr_matrix, depth: int
    ) -> None:
        for path in node.paths:
            results[path] = _finalize(path, origin_rows, forward, rev)
        for child in node.children.values():
            nxt = _forward_step_batch(ctx, child.step, forward, start_relation)
            if trace is not None:
                _trace_add(trace, child.step.dst_relation, nxt)
            nxt_rev = _backward_step_batch(
                ctx,
                child.step,
                nxt,
                rev,
                start_relation,
                gather_into_origin_level=(depth == 0),
            )
            visit(child, nxt, nxt_rev, depth + 1)

    visit(root, initial, initial.copy(), 0)
    return results


def merge_batched(
    rows: list[int], groups: list[dict[JoinPath, BatchedProfiles]]
) -> dict[JoinPath, BatchedProfiles]:
    """Stack per-group batched matrices back into one batch over ``rows``.

    ``groups`` hold disjoint subsets of ``rows`` (e.g. one batch per
    ambiguous name when training pairs span names); all groups must come
    from the same database so the per-path column spaces line up.
    """
    position = {row: k for k, row in enumerate(rows)}
    merged: dict[JoinPath, BatchedProfiles] = {}
    for path in groups[0]:
        order = [row for group in groups for row in group[path].rows]
        inverse = np.empty(len(rows), dtype=np.int64)
        for j, row in enumerate(order):
            inverse[position[row]] = j
        forward = sparse.vstack(
            [group[path].forward for group in groups], format="csr"
        )[inverse]
        backward = sparse.vstack(
            [group[path].backward for group in groups], format="csr"
        )[inverse]
        merged[path] = BatchedProfiles(
            path=path,
            rows=list(rows),
            forward=_canonical(forward),
            backward=_canonical(backward),
        )
    return merged
