"""JoinPath: an ordered chain of join steps starting at the reference relation."""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.errors import PathError
from repro.reldb.joins import JoinStep


class JoinPath:
    """A chain of :class:`JoinStep` hops; each step starts where the previous ended.

    Join paths identify feature dimensions: the SVM of §3 learns one weight
    per path, and models are serialized by the path's :meth:`signature`.
    """

    def __init__(self, steps: Sequence[JoinStep]) -> None:
        steps = tuple(steps)
        if not steps:
            raise PathError("a join path needs at least one step")
        for prev, nxt in zip(steps, steps[1:]):
            if prev.dst_relation != nxt.src_relation:
                raise PathError(
                    f"non-contiguous path: step ends at {prev.dst_relation!r} "
                    f"but next step starts at {nxt.src_relation!r}"
                )
        self.steps = steps

    @property
    def start_relation(self) -> str:
        return self.steps[0].src_relation

    @property
    def end_relation(self) -> str:
        return self.steps[-1].dst_relation

    @property
    def length(self) -> int:
        return len(self.steps)

    def relation_sequence(self) -> list[str]:
        """Relations visited, starting relation first."""
        return [self.start_relation] + [s.dst_relation for s in self.steps]

    def extend(self, step: JoinStep) -> "JoinPath":
        if step.src_relation != self.end_relation:
            raise PathError(
                f"cannot extend path ending at {self.end_relation!r} with a "
                f"step from {step.src_relation!r}"
            )
        return JoinPath(self.steps + (step,))

    def sibling_expansions(self) -> int:
        """Number of steps that immediately re-cross the previous step's edge.

        Only the meaningful kind survives enumeration pruning (an ``n1`` hop
        followed by its ``1n`` inverse, which fans out to siblings), so this
        counts how many times the path "turns around" to gather siblings —
        e.g. paper -> proceedings -> other papers of the same proceedings.
        """
        return sum(
            1 for prev, nxt in zip(self.steps, self.steps[1:]) if nxt.is_reverse_of(prev)
        )

    def signature(self) -> str:
        """A stable, human-readable identifier used for model serialization."""
        parts = [self.start_relation]
        for step in self.steps:
            parts.append(f"[{step.src_attribute}={step.dst_attribute}]{step.dst_relation}")
        return "".join(parts)

    def describe(self) -> str:
        """A compact relation-level rendering, e.g. ``Publish~Publications~Publish~Authors``."""
        return "~".join(self.relation_sequence())

    def __iter__(self) -> Iterator[JoinStep]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, JoinPath) and self.steps == other.steps

    def __hash__(self) -> int:
        return hash(self.steps)

    def __repr__(self) -> str:
        return f"JoinPath({self.signature()})"
