"""Pair feature computation: per-join-path similarity vectors.

For a pair of references, the feature vector has one set-resemblance value
and one walk-probability value per join path — these are the inputs to the
§3 SVM, and (combined by Eq 1) the pair similarities the clustering stage
aggregates. Everything here is vectorized over pairs: ``resemblance`` and
``walk`` are (n_pairs, n_paths) arrays aligned with ``pairs``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.paths.joinpath import JoinPath
from repro.paths.profiles import ProfileBuilder
from repro.similarity.combine import PathWeights, normalize_feature_rows
from repro.similarity.randomwalk import walk_probability
from repro.similarity.resemblance import set_resemblance


@dataclass
class PairFeatures:
    """Per-pair, per-path similarity features.

    ``pairs[k] = (row_a, row_b)``; ``resemblance[k, p]`` and ``walk[k, p]``
    are the two measures for pair ``k`` along path ``p`` (column order =
    ``paths`` order).
    """

    paths: list[JoinPath]
    pairs: list[tuple[int, int]]
    resemblance: np.ndarray
    walk: np.ndarray

    @property
    def n_pairs(self) -> int:
        return len(self.pairs)

    def combined(
        self, resem_weights: PathWeights, walk_weights: PathWeights
    ) -> tuple[np.ndarray, np.ndarray]:
        """Eq-1 combination: per-pair scalar (resemblance, walk) values."""
        rw = np.asarray(resem_weights.weights)
        ww = np.asarray(walk_weights.weights)
        if len(rw) != len(self.paths) or len(ww) != len(self.paths):
            raise ValueError("weight vectors must have one entry per path")
        return self.resemblance @ rw, self.walk @ ww

    def normalized(self) -> "PairFeatures":
        """Per-path max-normalized copy (used by unsupervised variants)."""
        return PairFeatures(
            paths=self.paths,
            pairs=self.pairs,
            resemblance=np.asarray(normalize_feature_rows(self.resemblance.tolist())),
            walk=np.asarray(normalize_feature_rows(self.walk.tolist())),
        )


def compute_pair_features(
    builder: ProfileBuilder, pairs: list[tuple[int, int]]
) -> PairFeatures:
    """Compute both measures for every pair along every path of ``builder``.

    Profiles are cached inside the builder, so the cost is one propagation
    per (reference, path) plus one sparse-dict pass per (pair, path).
    """
    paths = builder.paths
    resem = np.zeros((len(pairs), len(paths)))
    walk = np.zeros((len(pairs), len(paths)))
    for k, (row_a, row_b) in enumerate(pairs):
        profiles_a = builder.profiles_for(row_a)
        profiles_b = builder.profiles_for(row_b)
        for p, path in enumerate(paths):
            a = profiles_a[path]
            b = profiles_b[path]
            resem[k, p] = set_resemblance(a, b)
            walk[k, p] = walk_probability(a, b)
    return PairFeatures(paths=paths, pairs=list(pairs), resemblance=resem, walk=walk)


def all_pairs(rows: list[int]) -> list[tuple[int, int]]:
    """All unordered pairs of ``rows``, in (i < j) index order."""
    return [
        (rows[i], rows[j])
        for i in range(len(rows))
        for j in range(i + 1, len(rows))
    ]


def pair_matrix(
    rows: list[int], pairs: list[tuple[int, int]], values: np.ndarray
) -> np.ndarray:
    """Expand condensed per-pair values into a symmetric n x n matrix."""
    index = {row: i for i, row in enumerate(rows)}
    matrix = np.zeros((len(rows), len(rows)))
    for (row_a, row_b), value in zip(pairs, values):
        i, j = index[row_a], index[row_b]
        matrix[i, j] = matrix[j, i] = value
    return matrix
