"""Pair feature computation: per-join-path similarity vectors.

For a pair of references, the feature vector has one set-resemblance value
and one walk-probability value per join path — these are the inputs to the
§3 SVM, and (combined by Eq 1) the pair similarities the clustering stage
aggregates. Everything here is vectorized over pairs: ``resemblance`` and
``walk`` are (n_pairs, n_paths) arrays aligned with ``pairs``.

Two backends produce the same features (``DistinctConfig.similarity_backend``):

- ``"scalar"`` — the reference implementation, one
  :func:`set_resemblance`/:func:`walk_probability` call per (pair, path);
- ``"vectorized"`` — per path, stack the profiles into sparse matrices
  once and evaluate the whole pair list with the chunked kernels of
  :mod:`repro.similarity.vectorized` (equal to the scalar values up to
  floating-point reassociation).

Orthogonally, ``propagation`` selects how the profiles themselves are
computed (``DistinctConfig.propagation_backend``): ``"scalar"`` walks one
reference at a time through the builder's profile cache; ``"batched"``
computes every reference of the batch at once as sparse matrix products
(:mod:`repro.paths.batch`) and feeds the stacked matrices straight into
the pair kernels — with batched propagation the similarity stage always
runs the matrix kernels, whatever ``backend`` says, since per-pair dict
profiles are never materialized.

``prune`` selects the candidate-blocking mode (``"off"`` | ``"exact"``
| ``"minhash"``; booleans coerce for back-compat). ``"exact"`` skips
evaluation of pairs whose neighbor supports are disjoint on every path
(:mod:`repro.perf.blocking`): both measures are *exactly* zero there, so
the skipped rows are zero-filled and downstream clustering output is
unchanged. ``"minhash"`` first narrows the pair list to banded-LSH
candidates (:mod:`repro.perf.minhash`, tuned by ``minhash_bands`` /
``minhash_rows`` / ``minhash_seed``) and exact-rechecks the survivors:
every evaluated pair provably intersects, evaluation cost drops further
on ambient-overlap worlds, and the residual risk is bounded by the
measured-recall property suite.

``degradation`` is the graceful-degradation ladder: under
``"fallback"``, a fast route that raises at runtime (``MemoryError`` on
an oversized name, a SciPy sparse failure) is retried per batch on the
scalar reference path — slower but correct — instead of failing the
run. Every fallback increments ``resilience.degraded.features`` /
``.pairs`` and flags the returned :class:`PairFeatures`, so silent
slowdowns are impossible. ``"strict"`` (the default) propagates the
error unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DeadlineExceeded
from repro.obs import counter, get_logger
from repro.paths.joinpath import JoinPath
from repro.perf.blocking import intersecting_pair_mask
from repro.perf.minhash import DEFAULT_BANDS, DEFAULT_ROWS, minhash_refined_mask
from repro.paths.profiles import ProfileBuilder
from repro.resilience import fault_check
from repro.similarity.combine import PathWeights, normalize_feature_rows
from repro.similarity.randomwalk import walk_probability
from repro.similarity.resemblance import set_resemblance
from repro.similarity.vectorized import (
    DEFAULT_PAIR_CHUNK,
    pair_resemblance_values,
    pair_walk_values,
    profile_matrices,
)

log = get_logger("core.features")

BACKENDS = ("scalar", "vectorized")
PROPAGATION_BACKENDS = ("scalar", "batched")
DEGRADATION_POLICIES = ("strict", "fallback")
PRUNING_MODES = ("off", "exact", "minhash")


def coerce_pruning(value: bool | str | None) -> str:
    """Normalize a ``pair_pruning`` value to one of :data:`PRUNING_MODES`.

    Booleans are the historical surface (``False`` -> ``"off"``,
    ``True`` -> ``"exact"``); ``None`` means off.
    """
    if value is None or value is False:
        return "off"
    if value is True:
        return "exact"
    if value not in PRUNING_MODES:
        raise ValueError(
            f"pair pruning mode must be one of {PRUNING_MODES}, got {value!r}"
        )
    return value

@dataclass(frozen=True)
class _MinHashParams:
    """LSH banding knobs threaded into the pruning routes."""

    bands: int = DEFAULT_BANDS
    rows: int = DEFAULT_ROWS
    seed: int = 0


def _keep_mask(
    prune_mode: str,
    forwards: list,
    idx_a: np.ndarray,
    idx_b: np.ndarray,
    pair_chunk: int,
    minhash: _MinHashParams,
) -> np.ndarray:
    """The blocking mask for the selected mode over stacked supports."""
    if prune_mode == "minhash":
        return minhash_refined_mask(
            forwards,
            idx_a,
            idx_b,
            bands=minhash.bands,
            rows=minhash.rows,
            seed=minhash.seed,
            pair_chunk=pair_chunk,
        )
    return intersecting_pair_mask(forwards, idx_a, idx_b, pair_chunk=pair_chunk)


#: Pairs evaluated through the vectorized backend (scalar pairs are
#: tracked per call by ``similarity.resemblance.calls`` / ``.walk.calls``).
_VECTORIZED_PAIRS = counter("features.vectorized.pairs")
#: Fast-backend failures absorbed by ``degradation="fallback"`` (one per
#: degraded compute_pair_features call / per affected pair).
_DEGRADED = counter("resilience.degraded.features")
_DEGRADED_PAIRS = counter("resilience.degraded.pairs")


@dataclass
class PairFeatures:
    """Per-pair, per-path similarity features.

    ``pairs[k] = (row_a, row_b)``; ``resemblance[k, p]`` and ``walk[k, p]``
    are the two measures for pair ``k`` along path ``p`` (column order =
    ``paths`` order).
    """

    paths: list[JoinPath]
    pairs: list[tuple[int, int]]
    resemblance: np.ndarray
    walk: np.ndarray
    #: True when a fast backend failed and the values were recomputed on
    #: the scalar reference path (``degradation="fallback"``). Telemetry,
    #: not a result: excluded from equality so degraded and non-degraded
    #: runs of the same inputs stay comparable.
    degraded: bool = field(default=False, compare=False)

    @property
    def n_pairs(self) -> int:
        return len(self.pairs)

    def combined(
        self, resem_weights: PathWeights, walk_weights: PathWeights
    ) -> tuple[np.ndarray, np.ndarray]:
        """Eq-1 combination: per-pair scalar (resemblance, walk) values."""
        rw = np.asarray(resem_weights.weights)
        ww = np.asarray(walk_weights.weights)
        if len(rw) != len(self.paths) or len(ww) != len(self.paths):
            raise ValueError("weight vectors must have one entry per path")
        return self.resemblance @ rw, self.walk @ ww

    def normalized(self) -> "PairFeatures":
        """Per-path max-normalized copy (used by unsupervised variants)."""
        return PairFeatures(
            paths=self.paths,
            pairs=self.pairs,
            resemblance=np.asarray(normalize_feature_rows(self.resemblance.tolist())),
            walk=np.asarray(normalize_feature_rows(self.walk.tolist())),
        )


def compute_pair_features(
    builder: ProfileBuilder,
    pairs: list[tuple[int, int]],
    backend: str = "scalar",
    pair_chunk: int = DEFAULT_PAIR_CHUNK,
    propagation: str = "scalar",
    prune: bool | str = False,
    degradation: str = "strict",
    minhash_bands: int = DEFAULT_BANDS,
    minhash_rows: int = DEFAULT_ROWS,
    minhash_seed: int = 0,
) -> PairFeatures:
    """Compute both measures for every pair along every path of ``builder``.

    With scalar ``propagation``, profiles are cached inside the builder,
    so the cost is one propagation per (reference, path) plus the
    per-(pair, path) similarity kernel of the chosen ``backend``; with
    ``propagation="batched"`` the whole batch propagates as sparse
    matrix products and the matrix pair kernels evaluate the list (see
    module docstring). ``pair_chunk`` bounds the matrix kernels'
    per-slice working set. ``prune`` selects the blocking mode (see
    module docstring): pairs blocked out are zero-filled instead of
    evaluated; under ``"minhash"`` the LSH banding is tuned by
    ``minhash_bands``/``minhash_rows``/``minhash_seed``.
    ``degradation="fallback"`` absorbs a fast-route failure by
    recomputing this batch on the scalar reference path (see module
    docstring); ``"strict"`` propagates it.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if propagation not in PROPAGATION_BACKENDS:
        raise ValueError(
            f"propagation must be one of {PROPAGATION_BACKENDS}, got {propagation!r}"
        )
    if degradation not in DEGRADATION_POLICIES:
        raise ValueError(
            f"degradation must be one of {DEGRADATION_POLICIES}, "
            f"got {degradation!r}"
        )
    prune_mode = coerce_pruning(prune)
    minhash = _MinHashParams(minhash_bands, minhash_rows, minhash_seed)
    if propagation != "batched" and backend != "vectorized" and prune_mode == "off":
        return _scalar_pair_features(builder, pairs)
    try:
        fault_check("features.backend")
        if propagation == "batched":
            return _batched_pair_features(
                builder, pairs, pair_chunk, prune_mode, minhash
            )
        if prune_mode != "off":
            return _pruned_pair_features(
                builder, pairs, backend, pair_chunk, prune_mode, minhash
            )
        return _vectorized_pair_features(builder, pairs, pair_chunk)
    except (DeadlineExceeded, KeyboardInterrupt):
        raise  # control flow, never a degradation trigger
    except Exception as exc:
        if degradation != "fallback":
            raise
        _DEGRADED.inc()
        _DEGRADED_PAIRS.inc(len(pairs))
        log.warning(
            "fast backend failed (%s: %s); degrading %d pair(s) to the "
            "scalar reference path (backend=%s propagation=%s prune=%s)",
            type(exc).__name__, exc, len(pairs), backend, propagation,
            prune_mode,
        )
        features = _scalar_pair_features(builder, pairs)
        features.degraded = True
        return features


def _scalar_pair_features(
    builder: ProfileBuilder, pairs: list[tuple[int, int]]
) -> PairFeatures:
    """The reference implementation: one kernel call per (pair, path)."""
    paths = builder.paths
    resem = np.zeros((len(pairs), len(paths)))
    walk = np.zeros((len(pairs), len(paths)))
    for k, (row_a, row_b) in enumerate(pairs):
        profiles_a = builder.profiles_for(row_a)
        profiles_b = builder.profiles_for(row_b)
        for p, path in enumerate(paths):
            a = profiles_a[path]
            b = profiles_b[path]
            resem[k, p] = set_resemblance(a, b)
            walk[k, p] = walk_probability(a, b)
    return PairFeatures(paths=paths, pairs=list(pairs), resemblance=resem, walk=walk)


def _pair_index_arrays(
    pairs: list[tuple[int, int]],
) -> tuple[list[int], np.ndarray, np.ndarray]:
    """First-seen row order plus aligned pair index arrays."""
    rows = list(dict.fromkeys(row for pair in pairs for row in pair))
    index = {row: i for i, row in enumerate(rows)}
    idx_a = np.fromiter((index[a] for a, _ in pairs), dtype=np.int64, count=len(pairs))
    idx_b = np.fromiter((index[b] for _, b in pairs), dtype=np.int64, count=len(pairs))
    return rows, idx_a, idx_b


def _batched_pair_features(
    builder: ProfileBuilder,
    pairs: list[tuple[int, int]],
    pair_chunk: int,
    prune_mode: str,
    minhash: _MinHashParams,
) -> PairFeatures:
    """Batched-propagation route: SpMM profiles, matrix pair kernels.

    The batched matrices double as the blocking index: under
    ``"exact"``/``"minhash"`` pruning, the keep mask comes straight from
    the forward patterns and only surviving pairs reach the kernels.
    """
    paths = builder.paths
    resem = np.zeros((len(pairs), len(paths)))
    walk = np.zeros((len(pairs), len(paths)))
    if not pairs:
        return PairFeatures(paths=paths, pairs=[], resemblance=resem, walk=walk)

    rows, idx_a, idx_b = _pair_index_arrays(pairs)
    matrices = builder.matrices_for(rows)
    if prune_mode != "off":
        keep = _keep_mask(
            prune_mode,
            [matrices[path].forward for path in paths],
            idx_a,
            idx_b,
            pair_chunk,
            minhash,
        )
        selected = np.flatnonzero(keep)
    else:
        selected = np.arange(len(pairs))
    sel_a = idx_a[selected]
    sel_b = idx_b[selected]
    for p, path in enumerate(paths):
        stacked = matrices[path]
        resem[selected, p] = pair_resemblance_values(
            stacked.forward, sel_a, sel_b, pair_chunk=pair_chunk
        )
        walk[selected, p] = pair_walk_values(
            stacked.forward, stacked.backward, sel_a, sel_b, pair_chunk=pair_chunk
        )
    _VECTORIZED_PAIRS.inc(len(selected) * len(paths))
    return PairFeatures(paths=paths, pairs=list(pairs), resemblance=resem, walk=walk)


def _pruned_pair_features(
    builder: ProfileBuilder,
    pairs: list[tuple[int, int]],
    backend: str,
    pair_chunk: int,
    prune_mode: str,
    minhash: _MinHashParams,
) -> PairFeatures:
    """Scalar-propagation pruning route: mask, evaluate survivors, scatter.

    The mask needs the stacked forward patterns, so pruning on top of
    scalar propagation pays one extra stacking pass per path; pruning is
    cheapest combined with the vectorized or batched routes.
    """
    paths = builder.paths
    resem = np.zeros((len(pairs), len(paths)))
    walk = np.zeros((len(pairs), len(paths)))
    if not pairs:
        return PairFeatures(paths=paths, pairs=[], resemblance=resem, walk=walk)

    rows, idx_a, idx_b = _pair_index_arrays(pairs)
    profiles_by_row = {row: builder.profiles_for(row) for row in rows}
    forwards = []
    for path in paths:
        forward, _ = profile_matrices([profiles_by_row[row][path] for row in rows])
        forwards.append(forward)
    keep = _keep_mask(prune_mode, forwards, idx_a, idx_b, pair_chunk, minhash)
    selected = np.flatnonzero(keep)
    kept_pairs = [pairs[int(k)] for k in selected]
    survivors = compute_pair_features(
        builder, kept_pairs, backend=backend, pair_chunk=pair_chunk
    )
    resem[selected] = survivors.resemblance
    walk[selected] = survivors.walk
    return PairFeatures(paths=paths, pairs=list(pairs), resemblance=resem, walk=walk)


def _vectorized_pair_features(
    builder: ProfileBuilder, pairs: list[tuple[int, int]], pair_chunk: int
) -> PairFeatures:
    """Matrix-kernel route: stack profiles per path, evaluate the pair list.

    Stacks only the rows that actually appear in ``pairs`` (in first-seen
    order), so arbitrary pair lists — e.g. training pairs spanning many
    names — never pay for an all-pairs grid.
    """
    paths = builder.paths
    resem = np.zeros((len(pairs), len(paths)))
    walk = np.zeros((len(pairs), len(paths)))
    if not pairs:
        return PairFeatures(paths=paths, pairs=[], resemblance=resem, walk=walk)

    rows = list(dict.fromkeys(row for pair in pairs for row in pair))
    index = {row: i for i, row in enumerate(rows)}
    profiles_by_row = {row: builder.profiles_for(row) for row in rows}
    idx_a = np.fromiter((index[a] for a, _ in pairs), dtype=np.int64, count=len(pairs))
    idx_b = np.fromiter((index[b] for _, b in pairs), dtype=np.int64, count=len(pairs))

    for p, path in enumerate(paths):
        stacked = [profiles_by_row[row][path] for row in rows]
        forward, backward = profile_matrices(stacked)
        resem[:, p] = pair_resemblance_values(
            forward, idx_a, idx_b, pair_chunk=pair_chunk
        )
        walk[:, p] = pair_walk_values(
            forward, backward, idx_a, idx_b, pair_chunk=pair_chunk
        )
    _VECTORIZED_PAIRS.inc(len(pairs) * len(paths))
    return PairFeatures(paths=paths, pairs=list(pairs), resemblance=resem, walk=walk)


def all_pairs(rows: list[int]) -> list[tuple[int, int]]:
    """All unordered pairs of ``rows``, in (i < j) index order."""
    return [
        (rows[i], rows[j])
        for i in range(len(rows))
        for j in range(i + 1, len(rows))
    ]


def pair_matrix(
    rows: list[int], pairs: list[tuple[int, int]], values: np.ndarray
) -> np.ndarray:
    """Expand condensed per-pair values into a symmetric n x n matrix."""
    index = {row: i for i, row in enumerate(rows)}
    matrix = np.zeros((len(rows), len(rows)))
    for (row_a, row_b), value in zip(pairs, values):
        i, j = index[row_a], index[row_b]
        matrix[i, j] = matrix[j, i] = value
    return matrix
