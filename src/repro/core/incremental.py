"""Compat shim: the greedy assigner moved to :mod:`repro.ingest.greedy`.

The original incremental-assignment module grew into the delta-ingest
subsystem (:mod:`repro.ingest`): the greedy single-reference fast path
lives in :mod:`repro.ingest.greedy` and the byte-identical ladder in
:mod:`repro.ingest.engine`. This module re-exports the old public names
so existing imports keep working.
"""

from __future__ import annotations

# lint: allow[layering/import-dag] compat shim for the pre-ingest import path
from repro.ingest.greedy import Assignment, extend_resolution

__all__ = ["Assignment", "extend_resolution"]
