"""The DISTINCT methodology: the paper's primary contribution, end to end.

:class:`repro.core.distinct.Distinct` is the facade: ``fit(db)`` learns the
per-join-path weights from an automatically constructed training set, and
``resolve(name)`` clusters the references carrying ``name`` into one cluster
per real-world entity.
"""

from repro.core.references import (
    NameReferences,
    exclusions_for_name,
    extract_references,
    reference_counts_by_name,
)
from repro.core.features import PairFeatures, compute_pair_features
from repro.core.distinct import Distinct, NameResolution
from repro.core.variants import VariantSpec, FIG4_VARIANTS

__all__ = [
    "NameReferences",
    "extract_references",
    "exclusions_for_name",
    "reference_counts_by_name",
    "PairFeatures",
    "compute_pair_features",
    "Distinct",
    "NameResolution",
    "VariantSpec",
    "FIG4_VARIANTS",
]
