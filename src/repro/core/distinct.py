"""The DISTINCT facade: fit once per database, resolve any name.

``fit(db)`` implements §3: enumerate join paths, construct the training set
automatically from rare names, compute per-pair per-path similarity
features, and train two linear SVMs (one per measure) whose raw-space
weights become the Eq-1 combiners.

``resolve(name)`` implements §2 + §4: profile the name's references along
every path, combine per-path similarities with the learned weights, and
agglomeratively cluster with the composite geometric-mean measure until the
best similarity falls below ``min_sim``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.agglomerative import AgglomerativeClusterer, ClusteringResult
from repro.cluster.composite import CollectiveWalkMeasure, CompositeMeasure
from repro.cluster.linkage import AverageLinkMeasure
from repro.config import DistinctConfig
from repro.core.features import (
    PairFeatures,
    all_pairs,
    coerce_pruning,
    compute_pair_features,
    pair_matrix,
)
from repro.core.references import exclusions_for_name, extract_references
from repro.errors import NotFittedError
from repro.ml.model import PathWeightModel
from repro.ml.validation import cross_validate
from repro.ml.svm import LinearSVM
from repro.ml.trainingset import TrainingSet, build_training_set
from repro.obs import counter, get_logger, span, timed
from repro.paths.enumerate import enumerate_paths
from repro.paths.joinpath import JoinPath
from repro.paths.profiles import ProfileBuilder
from repro.reldb.database import Database
from repro.resilience.faults import fault_check
from repro.similarity.combine import PathWeights, uniform_weights

MEASURES = ("combined", "resemblance", "walk")

log = get_logger("core.distinct")
_PAIRS_SCORED = counter("pairs.scored")
_NAMES_RESOLVED = counter("names.resolved")


@dataclass
class NameResolution:
    """The outcome of resolving one name.

    ``clusters`` hold reference row ids (of the reference relation); the
    raw pair features and combined matrices are kept for inspection,
    evaluation, and visualization.
    """

    name: str
    rows: list[int]
    clusters: list[set[int]]
    clustering: ClusteringResult | None
    features: PairFeatures | None
    resem_matrix: np.ndarray | None = None
    walk_matrix: np.ndarray | None = None

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def labels(self) -> dict[int, int]:
        """reference row id -> predicted cluster index."""
        out: dict[int, int] = {}
        for label, cluster in enumerate(self.clusters):
            for row in cluster:
                out[row] = label
        return out


@dataclass
class FitReport:
    """What happened during :meth:`Distinct.fit` (timings in seconds)."""

    n_paths: int
    n_training_pairs: int
    n_rare_names: int
    train_accuracy_resem: float
    train_accuracy_walk: float
    seconds_training_set: float
    seconds_features: float
    seconds_svm: float

    @property
    def seconds_total(self) -> float:
        return self.seconds_training_set + self.seconds_features + self.seconds_svm


class Distinct:
    """The full DISTINCT methodology bound to one configuration."""

    def __init__(self, config: DistinctConfig | None = None) -> None:
        self.config = config or DistinctConfig()
        self.db: Database | None = None
        self.paths_: list[JoinPath] | None = None
        self.resem_model_: PathWeightModel | None = None
        self.walk_model_: PathWeightModel | None = None
        self.training_set_: TrainingSet | None = None
        self.fit_report_: FitReport | None = None

    @classmethod
    def from_models(
        cls,
        db: Database,
        resem_model: PathWeightModel,
        walk_model: PathWeightModel,
        config: DistinctConfig | None = None,
    ) -> "Distinct":
        """Build a resolvable pipeline from previously trained models.

        Paths are re-enumerated from the schema and the models aligned by
        signature, so a model trained on one database instance applies to
        any database with the same schema (e.g. a fresh DBLP load).
        """
        distinct = cls(config)
        distinct.db = db
        distinct.paths_ = enumerate_paths(
            db.schema, distinct.config.reference_relation, distinct.config.path_config
        )
        distinct.resem_model_ = resem_model.align_to(distinct.paths_)
        distinct.walk_model_ = walk_model.align_to(distinct.paths_)
        return distinct

    # -- training (§3) -----------------------------------------------------

    def fit(self, db: Database) -> "Distinct":
        """Learn per-path weights from the automatically built training set."""
        config = self.config
        self.db = db
        with span("fit", reference_relation=config.reference_relation) as fit_span:
            self.paths_ = enumerate_paths(
                db.schema, config.reference_relation, config.path_config
            )

            with timed("fit.training_set") as sp_training:
                training_set = build_training_set(
                    db,
                    n_positive=config.n_positive,
                    n_negative=config.n_negative,
                    max_token_count=config.max_token_count,
                    min_refs=config.min_refs,
                    max_refs=config.max_refs,
                    seed=config.seed,
                    reference_relation=config.reference_relation,
                    object_relation=config.object_relation,
                    object_key=config.object_key,
                    name_attribute=config.name_attribute,
                )

            with timed("fit.features", n_pairs=len(training_set.pairs)) as sp_features:
                features = self._training_features(training_set)

            with timed("fit.svm") as sp_svm:
                labels = np.asarray(training_set.labels(), dtype=float)
                self.resem_model_, acc_resem = self._train_measure(
                    "resemblance", features.resemblance, labels
                )
                self.walk_model_, acc_walk = self._train_measure(
                    "walk", features.walk, labels
                )

            self.training_set_ = training_set
            self.fit_report_ = FitReport(
                n_paths=len(self.paths_),
                n_training_pairs=len(training_set.pairs),
                n_rare_names=len(training_set.rare_names),
                train_accuracy_resem=acc_resem,
                train_accuracy_walk=acc_walk,
                seconds_training_set=sp_training.duration,
                seconds_features=sp_features.duration,
                seconds_svm=sp_svm.duration,
            )
            fit_span.annotate(
                n_paths=len(self.paths_), n_training_pairs=len(training_set.pairs)
            )
        log.info(
            "fit: %d paths, %d training pairs, train acc resem=%.3f walk=%.3f "
            "(%.2fs)",
            len(self.paths_),
            len(training_set.pairs),
            acc_resem,
            acc_walk,
            self.fit_report_.seconds_total,
        )
        return self

    def _training_features(self, training_set: TrainingSet) -> PairFeatures:
        """Features for training pairs, routing each reference through the
        profile builder of its own name (same exclusions as at resolve time)."""
        assert self.db is not None and self.paths_ is not None
        builders: dict[str, ProfileBuilder] = {}

        def builder_for(name: str) -> ProfileBuilder:
            if name not in builders:
                builders[name] = ProfileBuilder(
                    self.db,
                    self.paths_,
                    exclusions_for_name(self.db, name, self.config),
                    memo_size=self.config.propagation_memo_size,
                )
            return builders[name]

        router = _RoutedProfiles(self.paths_, {})
        for pair in training_set.pairs:
            router.route[pair.row_a] = builder_for(pair.name_a)
            router.route[pair.row_b] = builder_for(pair.name_b)
        pairs = [(p.row_a, p.row_b) for p in training_set.pairs]
        return compute_pair_features(
            router,
            pairs,
            backend=self.config.similarity_backend,
            pair_chunk=self.config.similarity_pair_chunk,
            propagation=self.config.propagation_backend,
            prune=self.config.pair_pruning,
            degradation=self.config.degradation,
            minhash_bands=self.config.minhash_bands,
            minhash_rows=self.config.minhash_rows,
            minhash_seed=self.config.seed,
        )

    def _train_measure(
        self, measure: str, X: np.ndarray, labels: np.ndarray
    ) -> tuple[PathWeightModel, float]:
        """Train one per-measure SVM on *raw* features.

        Training in raw feature space is deliberate: the learned weights are
        used directly as the Eq-1 similarity combiners, so they must respect
        the natural magnitude gap between strong paths (coauthor walk
        probabilities ~1e-1) and weak ubiquitous ones (conference or year
        overlap). Rescaling features before training and mapping weights
        back inflates the weak paths' weights by 1/scale, which floods the
        combined similarity with noise (see DESIGN.md §6).
        """
        assert self.paths_ is not None
        cost = self.config.svm_C
        if cost is None:
            cost = self._select_cost(X, labels)
        svm = self._make_svm(cost).fit(X, labels)
        accuracy = svm.accuracy(X, labels)
        model = PathWeightModel(
            measure=measure,
            signatures=[p.signature() for p in self.paths_],
            weights=[float(w) for w in svm.weights_],
            bias=float(svm.bias_),
            metadata={
                "train_accuracy": accuracy,
                "n_train": int(len(labels)),
                "C": cost,
            },
        )
        return model, accuracy

    def _make_svm(self, cost: float) -> LinearSVM:
        return LinearSVM(
            C=cost,
            loss=self.config.svm_loss,
            tol=self.config.svm_tol,
            max_epochs=self.config.svm_max_epochs,
            seed=self.config.seed,
            strict=self.config.svm_retries > 0,
            class_weight=self.config.svm_class_weight,
            retries=self.config.svm_retries,
        )

    def _select_cost(self, X: np.ndarray, labels: np.ndarray) -> float:
        """Pick C by k-fold cross-validated accuracy over the config grid."""
        best_cost = self.config.svm_C_grid[0]
        best_score = -1.0
        for cost in self.config.svm_C_grid:
            result = cross_validate(
                lambda: self._make_svm(cost),
                X,
                labels,
                k=self.config.svm_cv_folds,
                seed=self.config.seed,
            )
            if result["accuracy_mean"] > best_score:
                best_score = result["accuracy_mean"]
                best_cost = cost
        return best_cost

    # -- resolution (§2 + §4) --------------------------------------------------

    def resolve(
        self,
        name: str,
        min_sim: float | None = None,
        measure: str = "combined",
        supervised: bool = True,
    ) -> NameResolution:
        """Cluster the references carrying ``name``.

        ``measure`` selects the cluster similarity: ``"combined"`` (the
        DISTINCT composite), ``"resemblance"`` (Average-Link set resemblance
        only), or ``"walk"`` (collective walk probability only) — the Fig-4
        variants. ``supervised=False`` replaces the learned weights with
        uniform weights over max-normalized per-path features.
        """
        return self.cluster_prepared(
            self.prepare(name), min_sim=min_sim, measure=measure, supervised=supervised
        )

    def prepare(self, name: str) -> "NamePreparation":
        """Profile a name's references and compute all pair features once.

        The expensive part of resolution (propagation + per-path pair
        similarities) does not depend on ``min_sim``, ``measure``, or the
        supervision flag, so threshold sweeps and variant comparisons should
        prepare once and call :meth:`cluster_prepared` repeatedly.
        """
        if self.db is None or self.paths_ is None:
            raise NotFittedError("call fit(db) before prepare()")
        with span("resolve.prepare", name=name) as prep_span:
            fault_check("profile", name)
            refs = extract_references(self.db, name, self.config)
            if len(refs.rows) <= 1:
                prep_span.annotate(n_refs=len(refs.rows))
                return NamePreparation(name=name, rows=list(refs.rows), features=None)
            builder = ProfileBuilder(
                self.db,
                self.paths_,
                exclusions_for_name(self.db, name, self.config),
                memo_size=self.config.propagation_memo_size,
            )
            if self.config.propagation_backend == "scalar":
                # Batched propagation computes all references at once inside
                # compute_pair_features; warming the per-reference cache
                # would propagate everything a second time.
                with span("resolve.profiles", name=name, n_refs=len(refs.rows)) as sp:
                    builder.warm(refs.rows)
                    sp.annotate(n_profiles=builder.cache_size)
            pairs = all_pairs(refs.rows)
            with span(
                "resolve.similarity",
                name=name,
                n_pairs=len(pairs),
                backend=self.config.similarity_backend,
                propagation=self.config.propagation_backend,
                prune=coerce_pruning(self.config.pair_pruning),
            ) as sim_span:
                features = compute_pair_features(
                    builder,
                    pairs,
                    backend=self.config.similarity_backend,
                    pair_chunk=self.config.similarity_pair_chunk,
                    propagation=self.config.propagation_backend,
                    prune=self.config.pair_pruning,
                    degradation=self.config.degradation,
                    minhash_bands=self.config.minhash_bands,
                    minhash_rows=self.config.minhash_rows,
                    minhash_seed=self.config.seed,
                )
                if features.degraded:
                    sim_span.annotate(degraded=True)
            _PAIRS_SCORED.inc(len(pairs))
            prep_span.annotate(n_refs=len(refs.rows), n_pairs=len(pairs))
        log.debug("prepared %r: %d references, %d pairs", name, len(refs.rows),
                  len(pairs))
        return NamePreparation(name=name, rows=list(refs.rows), features=features)

    def cluster_prepared(
        self,
        prep: "NamePreparation",
        min_sim: float | None = None,
        measure: str = "combined",
        supervised: bool = True,
    ) -> NameResolution:
        """Cluster an already prepared name (see :meth:`prepare`)."""
        if measure not in MEASURES:
            raise ValueError(f"measure must be one of {MEASURES}")
        fault_check("cluster", prep.name)
        if supervised and (self.resem_model_ is None or self.walk_model_ is None):
            raise NotFittedError("supervised resolution requires a fitted model")
        min_sim = self.config.min_sim if min_sim is None else min_sim

        if prep.features is None:  # zero or one reference
            return NameResolution(
                name=prep.name,
                rows=list(prep.rows),
                clusters=[{row} for row in prep.rows],
                clustering=None,
                features=None,
            )

        features = prep.features
        with span(
            "resolve.cluster", name=prep.name, measure=measure, min_sim=min_sim
        ) as sp:
            resem_values, walk_values = self._combined_pair_values(features, supervised)
            resem_matrix = pair_matrix(prep.rows, features.pairs, resem_values)
            walk_matrix = pair_matrix(prep.rows, features.pairs, walk_values)
            cluster_measure = self._make_measure(measure, resem_matrix, walk_matrix)
            result = AgglomerativeClusterer(min_sim=min_sim).cluster(cluster_measure)
            sp.annotate(n_clusters=result.n_clusters)
        _NAMES_RESOLVED.inc()

        clusters = [{prep.rows[i] for i in cluster} for cluster in result.clusters]
        return NameResolution(
            name=prep.name,
            rows=list(prep.rows),
            clusters=clusters,
            clustering=result,
            features=features,
            resem_matrix=resem_matrix,
            walk_matrix=walk_matrix,
        )

    def _combined_pair_values(
        self, features: PairFeatures, supervised: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        if supervised:
            assert self.resem_model_ is not None and self.walk_model_ is not None
            clamp = self.config.clamp_negative_weights
            resem_weights = self.resem_model_.align_to(features.paths).combiner(clamp)
            walk_weights = self.walk_model_.align_to(features.paths).combiner(clamp)
            if self.config.normalize_weights:
                resem_weights = resem_weights.normalized()
                walk_weights = walk_weights.normalized()
            return features.combined(resem_weights, walk_weights)
        # Unsupervised: uniform weights over *raw* per-path similarities.
        # This mirrors the unweighted prior work ([1], [9]) the paper
        # compares against, which sums raw resemblances / walk probabilities
        # over all linkage types without learning per-path pertinence.
        uniform = uniform_weights(len(features.paths))
        return features.combined(uniform, uniform)

    @staticmethod
    def _make_measure(
        measure: str, resem_matrix: np.ndarray, walk_matrix: np.ndarray
    ):
        if measure == "combined":
            return CompositeMeasure(resem_matrix, walk_matrix)
        if measure == "resemblance":
            return AverageLinkMeasure(resem_matrix)
        return CollectiveWalkMeasure(walk_matrix)


@dataclass
class NamePreparation:
    """Cached expensive state for one name: rows + pair features.

    ``features`` is None when the name has at most one reference.
    """

    name: str
    rows: list[int]
    features: PairFeatures | None


class _RoutedProfiles:
    """ProfileBuilder-compatible view routing each row to its name's builder."""

    def __init__(self, paths: list[JoinPath], route: dict[int, ProfileBuilder]) -> None:
        self.paths = paths
        self.route = route

    def profiles_for(self, row: int):
        return self.route[row].profiles_for(row)

    def matrices_for(self, rows: list[int]):
        """Batched matrices across builders: one batch per builder, merged.

        Each name's references propagate under that name's exclusions, so
        the batch splits along the route; all builders share one database,
        so the per-path matrices have identical column spaces and stack.
        """
        from repro.paths.batch import merge_batched

        groups: dict[ProfileBuilder, list[int]] = {}
        for row in rows:
            groups.setdefault(self.route[row], []).append(row)
        batched = [
            builder.matrices_for(group_rows)
            for builder, group_rows in groups.items()
        ]
        return merge_batched(list(rows), batched)
