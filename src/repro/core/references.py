"""Reference extraction: locating the rows that carry one name.

In the DBLP schema a *reference* is a row of ``Publish``; all references to
one name share the single ``Authors`` row holding that name, so extraction
is one index lookup on ``Authors.name`` followed by one on
``Publish.author_key``. The shared ``Authors`` row is also what must be
excluded from propagation (DESIGN.md §6), which
:func:`exclusions_for_name` packages up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DistinctConfig
from repro.errors import ReproError
from repro.reldb.database import Database


@dataclass
class NameReferences:
    """The references carrying one name: the rows to cluster."""

    name: str
    rows: list[int]
    object_rows: list[int]  # Authors rows holding this name (normally one)

    def __len__(self) -> int:
        return len(self.rows)


def extract_references(
    db: Database, name: str, config: DistinctConfig | None = None
) -> NameReferences:
    """All reference rows whose object carries ``name``.

    Raises :class:`ReproError` if the name does not occur at all.
    """
    config = config or DistinctConfig()
    objects = db.table(config.object_relation)
    name_index = db.index(config.object_relation, config.name_attribute)
    object_rows = list(name_index.lookup(name))
    if not object_rows:
        raise ReproError(f"no {config.object_relation} row carries name {name!r}")

    key_pos = objects.schema.position(config.object_key)
    ref_index = db.index(config.reference_relation, config.object_key)
    rows: list[int] = []
    for object_row in object_rows:
        rows.extend(ref_index.lookup(objects.row(object_row)[key_pos]))
    rows.sort()
    return NameReferences(name=name, rows=rows, object_rows=object_rows)


def exclusions_for_name(
    db: Database, name: str, config: DistinctConfig | None = None
) -> dict[str, frozenset[int]]:
    """Propagation exclusions for resolving ``name``: its object row(s)."""
    config = config or DistinctConfig()
    refs = extract_references(db, name, config)
    return {config.object_relation: frozenset(refs.object_rows)}


def reference_counts_by_name(
    db: Database, config: DistinctConfig | None = None
) -> dict[str, int]:
    """name -> number of references, over every named object in the database."""
    config = config or DistinctConfig()
    objects = db.table(config.object_relation)
    key_pos = objects.schema.position(config.object_key)
    name_pos = objects.schema.position(config.name_attribute)
    ref_index = db.index(config.reference_relation, config.object_key)
    counts: dict[str, int] = {}
    for row in objects.rows:
        name = row[name_pos]
        counts[name] = counts.get(name, 0) + ref_index.count(row[key_pos])
    return counts
