"""Discovery of candidate ambiguous names.

The paper assumes you already know which names to distinguish ("given a set
of references referring to multiple objects with identical names"). In
practice a first pass must *find* them. This module ranks every name in the
database by a cheap structural ambiguity score, without running the full
pipeline:

1. group the name's references by direct context overlap — two references
   are linked if their papers share a coauthor key or a proceedings — via
   union-find;
2. a name whose references split into several sizeable context components
   is likely ambiguous; a name forming one tight component is likely unique.

The score is the probability that two random references of the name fall in
different components (1 - sum of squared component fractions, a Gini/Simpson
index). Single-reference names score 0.

Limitations: this is a *candidate generator* — tuned for recall, filtered
by the full pipeline. On schemas where one entity's references naturally
fragment into disjoint contexts (e.g. the music store, where tracks on
different albums share neither a co-credit nor a venue token) it over-flags
single entities; the genuinely shared names still surface.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DistinctConfig
from repro.reldb.database import Database


@dataclass
class AmbiguityCandidate:
    """A name with its structural ambiguity evidence."""

    name: str
    n_refs: int
    n_components: int
    score: float  # 1 - sum (component fraction)^2, in [0, 1)

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.n_refs} refs in {self.n_components} "
            f"context components (score {self.score:.2f})"
        )


class _UnionFind:
    def __init__(self, items) -> None:
        self._parent = {item: item for item in items}

    def find(self, item):
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:  # path compression
            parent[item], item = root, parent[item]
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra

    def components(self) -> dict[object, set[object]]:
        out: dict[object, set[object]] = {}
        for item in self._parent:
            out.setdefault(self.find(item), set()).add(item)
        return out


def _context_components(
    db: Database, ref_rows: list[int], config: DistinctConfig
) -> list[set[int]]:
    """Union-find over references sharing a coauthor key or a proceedings."""
    refs = db.table(config.reference_relation)
    object_pos = refs.schema.position(config.object_key)
    fk_attrs = [
        a.name
        for a in refs.schema.attributes
        if a.kind == "fk" and a.name != config.object_key
    ]
    group_attr = fk_attrs[0]  # paper key in DBLP, track key in the music store
    group_pos = refs.schema.position(group_attr)
    group_index = db.index(config.reference_relation, group_attr)

    # The group relation (Publications in DBLP): target of the grouping FK.
    group_fk = next(
        fk
        for fk in db.schema.foreign_keys
        if fk.src_relation == config.reference_relation
        and fk.src_attribute == group_attr
    )
    group_table = db.table(group_fk.dst_relation)
    group_fk_positions = [
        group_table.schema.position(a.name)
        for a in group_table.schema.attributes
        if a.kind == "fk"
    ]

    uf = _UnionFind(ref_rows)
    seen_context: dict[object, int] = {}  # context token -> first ref row
    for row_id in ref_rows:
        group_key = refs.row(row_id)[group_pos]
        own_object = refs.row(row_id)[object_pos]
        # Context tokens: the sibling object keys on the same group (the
        # coauthors of the paper), plus the group row's own foreign keys
        # (the paper's proceedings — a venue+year token).
        tokens: set[object] = set()
        for sibling in group_index.lookup(group_key):
            other = refs.row(sibling)[object_pos]
            if other != own_object:
                tokens.add(("obj", other))
        group_row_id = group_table.row_by_key(group_key)
        if group_row_id is not None:
            group_row = group_table.row(group_row_id)
            for pos in group_fk_positions:
                if group_row[pos] is not None:
                    tokens.add(("venue", pos, group_row[pos]))
        for token in tokens:
            if token in seen_context:
                uf.union(seen_context[token], row_id)
            else:
                seen_context[token] = row_id
    return sorted(uf.components().values(), key=lambda c: (-len(c), min(c)))


def find_ambiguous_candidates(
    db: Database,
    config: DistinctConfig | None = None,
    min_refs: int = 5,
    min_score: float = 0.2,
    limit: int | None = None,
) -> list[AmbiguityCandidate]:
    """Rank names by structural ambiguity, most suspicious first."""
    config = config or DistinctConfig()
    objects = db.table(config.object_relation)
    key_pos = objects.schema.position(config.object_key)
    name_pos = objects.schema.position(config.name_attribute)
    ref_index = db.index(config.reference_relation, config.object_key)

    candidates: list[AmbiguityCandidate] = []
    for row in objects.rows:
        ref_rows = list(ref_index.lookup(row[key_pos]))
        if len(ref_rows) < min_refs:
            continue
        components = _context_components(db, ref_rows, config)
        n = len(ref_rows)
        simpson = 1.0 - sum((len(c) / n) ** 2 for c in components)
        if simpson < min_score:
            continue
        candidates.append(
            AmbiguityCandidate(
                name=row[name_pos],
                n_refs=n,
                n_components=len(components),
                score=simpson,
            )
        )
    candidates.sort(key=lambda c: (-c.score, -c.n_refs, c.name))
    if limit is not None:
        candidates = candidates[:limit]
    return candidates
