"""The six Fig-4 experiment variants.

Fig 4 of the paper compares:

1. DISTINCT (supervised, combined measure)
2. DISTINCT without supervised learning (unsupervised, combined)
3. supervised set resemblance only   (cf. Bhattacharya & Getoor [1])
4. supervised random walk only       (cf. Kalashnikov et al. [9])
5. unsupervised set resemblance only
6. unsupervised random walk only

Variants 3–6 isolate one similarity measure; 5 and 6 approximate the prior
work [1] and [9], which used no supervision. For every variant except
DISTINCT itself the paper picks the min-sim that maximizes average accuracy;
the experiment harness does the same via a threshold sweep.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VariantSpec:
    """One configuration of (measure, supervision) for the comparison."""

    key: str
    label: str
    measure: str  # "combined" | "resemblance" | "walk"
    supervised: bool
    sweep_min_sim: bool  # paper: every variant except DISTINCT gets its best min-sim

    def __post_init__(self) -> None:
        if self.measure not in ("combined", "resemblance", "walk"):
            raise ValueError(f"bad measure {self.measure!r}")


FIG4_VARIANTS: list[VariantSpec] = [
    VariantSpec("distinct", "DISTINCT", "combined", True, sweep_min_sim=False),
    VariantSpec(
        "unsup_combined",
        "Unsupervised combined measure",
        "combined",
        False,
        sweep_min_sim=True,
    ),
    VariantSpec(
        "sup_resem",
        "Supervised set resemblance",
        "resemblance",
        True,
        sweep_min_sim=True,
    ),
    VariantSpec(
        "sup_walk", "Supervised random walk", "walk", True, sweep_min_sim=True
    ),
    VariantSpec(
        "unsup_resem",
        "Unsupervised set resemblance",
        "resemblance",
        False,
        sweep_min_sim=True,
    ),
    VariantSpec(
        "unsup_walk", "Unsupervised random walk", "walk", False, sweep_min_sim=True
    ),
]


def variant_by_key(key: str) -> VariantSpec:
    for variant in FIG4_VARIANTS:
        if variant.key == key:
            return variant
    raise KeyError(key)
