"""Reference preprocessing from §5 of the paper.

Footnote 1: "We also remove authors with only one reference that is not
related to other references by coauthors or conferences, because such
references will not affect accuracy." This module implements that filter:
a reference is *isolated* within its name if it shares no coauthor key and
no proceedings with any other reference of the same name. Isolated
references are unresolvable in principle (no linkage evidence either way),
so evaluations may exclude them.

Disabled by default in this reproduction — the synthetic ground truth covers
every reference, and the generator never emits fully isolated ambiguous
references — but exposed for runs on real DBLP data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DistinctConfig
from repro.reldb.database import Database


@dataclass
class IsolationReport:
    """Which references of a name are isolated, with the linkage counts."""

    name: str
    kept: list[int]
    dropped: list[int]

    @property
    def n_dropped(self) -> int:
        return len(self.dropped)


def _context_sets(
    db: Database, ref_rows: list[int], config: DistinctConfig
) -> dict[int, set[object]]:
    """Per reference: the set of context tokens (coauthor keys, proceedings)."""
    refs = db.table(config.reference_relation)
    object_pos = refs.schema.position(config.object_key)
    fk_attrs = [
        a.name
        for a in refs.schema.attributes
        if a.kind == "fk" and a.name != config.object_key
    ]
    group_attr = fk_attrs[0]
    group_pos = refs.schema.position(group_attr)
    group_index = db.index(config.reference_relation, group_attr)

    group_fk = next(
        fk
        for fk in db.schema.foreign_keys
        if fk.src_relation == config.reference_relation
        and fk.src_attribute == group_attr
    )
    group_table = db.table(group_fk.dst_relation)
    group_fk_positions = [
        group_table.schema.position(a.name)
        for a in group_table.schema.attributes
        if a.kind == "fk"
    ]

    contexts: dict[int, set[object]] = {}
    for row_id in ref_rows:
        row = refs.row(row_id)
        group_key = row[group_pos]
        tokens: set[object] = set()
        for sibling in group_index.lookup(group_key):
            other = refs.row(sibling)[object_pos]
            if other != row[object_pos]:
                tokens.add(("coauthor", other))
        group_row_id = group_table.row_by_key(group_key)
        if group_row_id is not None:
            group_row = group_table.row(group_row_id)
            for pos in group_fk_positions:
                if group_row[pos] is not None:
                    tokens.add(("venue", pos, group_row[pos]))
        contexts[row_id] = tokens
    return contexts


def isolation_report(
    db: Database, name: str, config: DistinctConfig | None = None
) -> IsolationReport:
    """Split a name's references into linkage-bearing and isolated ones."""
    from repro.core.references import extract_references

    config = config or DistinctConfig()
    refs = extract_references(db, name, config)
    contexts = _context_sets(db, refs.rows, config)

    kept: list[int] = []
    dropped: list[int] = []
    for row_id in refs.rows:
        others: set[object] = set()
        for other_id in refs.rows:
            if other_id != row_id:
                others |= contexts[other_id]
        if contexts[row_id] & others:
            kept.append(row_id)
        else:
            dropped.append(row_id)
    return IsolationReport(name=name, kept=kept, dropped=dropped)
