"""Explaining pair similarities: which join paths say "same person"?

For a pair of references, the combined similarity (Eq 1) is a weighted sum
of per-path measures — which makes every merge decision decomposable into
path-level contributions. This is the interpretability story of learning
*per-path* weights instead of a black-box pair classifier: an analyst can
see that two references were merged because they share two frequent
coauthors (contribution 0.041) and a venue (0.003), not because of an
opaque score.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.distinct import Distinct
from repro.core.features import compute_pair_features
from repro.core.references import exclusions_for_name
from repro.errors import NotFittedError
from repro.paths.profiles import ProfileBuilder
from repro.similarity.combine import geometric_mean


@dataclass
class PathContribution:
    """One join path's share of a pair's combined similarity."""

    path: str  # human-readable description
    resemblance: float
    walk_probability: float
    resem_weight: float
    walk_weight: float

    @property
    def resem_contribution(self) -> float:
        return self.resemblance * self.resem_weight

    @property
    def walk_contribution(self) -> float:
        return self.walk_probability * self.walk_weight

    @property
    def total_contribution(self) -> float:
        return self.resem_contribution + self.walk_contribution


@dataclass
class PairExplanation:
    """The decomposed similarity of one reference pair."""

    name: str
    row_a: int
    row_b: int
    combined_resemblance: float
    combined_walk: float
    composite_similarity: float
    contributions: list[PathContribution]

    def top(self, k: int = 5) -> list[PathContribution]:
        """The k paths contributing most to the combined similarity."""
        return sorted(
            self.contributions, key=lambda c: -c.total_contribution
        )[:k]

    def render(self, k: int = 5) -> str:
        lines = [
            f"{self.name}: refs {self.row_a} vs {self.row_b} — "
            f"composite similarity {self.composite_similarity:.5f} "
            f"(resem {self.combined_resemblance:.5f}, "
            f"walk {self.combined_walk:.5f})",
        ]
        for contribution in self.top(k):
            if contribution.total_contribution <= 0:
                continue
            lines.append(
                f"  {contribution.total_contribution:+.5f}  {contribution.path}"
                f"  (resem {contribution.resemblance:.4f} x w {contribution.resem_weight:.4f}"
                f", walk {contribution.walk_probability:.5f} x w {contribution.walk_weight:.4f})"
            )
        if len(lines) == 1:
            lines.append("  no positive path contributions (dissimilar pair)")
        return "\n".join(lines)


def explain_pair(
    distinct: Distinct, name: str, row_a: int, row_b: int
) -> PairExplanation:
    """Decompose the combined similarity of one pair of references.

    Both rows must carry ``name`` (the same exclusions as resolution apply).
    """
    if distinct.db is None or distinct.paths_ is None:
        raise NotFittedError("fit the pipeline before explaining pairs")
    if distinct.resem_model_ is None or distinct.walk_model_ is None:
        raise NotFittedError("explanations use the supervised models")

    builder = ProfileBuilder(
        distinct.db,
        distinct.paths_,
        exclusions_for_name(distinct.db, name, distinct.config),
    )
    features = compute_pair_features(builder, [(row_a, row_b)])
    resem_values, walk_values = distinct._combined_pair_values(features, True)

    clamp = distinct.config.clamp_negative_weights
    resem_weights = distinct.resem_model_.align_to(features.paths).combiner(clamp)
    walk_weights = distinct.walk_model_.align_to(features.paths).combiner(clamp)
    if distinct.config.normalize_weights:
        resem_weights = resem_weights.normalized()
        walk_weights = walk_weights.normalized()

    contributions = [
        PathContribution(
            path=path.describe(),
            resemblance=float(features.resemblance[0, i]),
            walk_probability=float(features.walk[0, i]),
            resem_weight=float(resem_weights.weights[i]),
            walk_weight=float(walk_weights.weights[i]),
        )
        for i, path in enumerate(features.paths)
    ]
    return PairExplanation(
        name=name,
        row_a=row_a,
        row_b=row_b,
        combined_resemblance=float(resem_values[0]),
        combined_walk=float(walk_values[0]),
        composite_similarity=geometric_mean(
            float(resem_values[0]), float(walk_values[0])
        ),
        contributions=contributions,
    )
