"""MinHash/LSH blocking: determinism, safety rails, bucket consistency."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.perf import (
    blocking_recall,
    candidate_pairs,
    intersecting_pair_mask,
    minhash_candidate_pairs,
    minhash_pair_mask,
    minhash_refined_mask,
    minhash_signatures,
)


def _matrices(n=50, m=40, density=0.08, seeds=(2, 3)):
    return [
        sparse.random(n, m, density=density, random_state=s, format="csr")
        for s in seeds
    ]


def _grid(n):
    return np.triu_indices(n, k=1)


class TestSignatures:
    def test_shape_and_dtype(self):
        sig = minhash_signatures(_matrices(), bands=8, rows=3, seed=1)
        assert sig.shape == (50, 24)
        assert sig.dtype == np.uint64

    def test_deterministic_in_seed(self):
        mats = _matrices()
        a = minhash_signatures(mats, bands=8, rows=2, seed=5)
        b = minhash_signatures(mats, bands=8, rows=2, seed=5)
        c = minhash_signatures(mats, bands=8, rows=2, seed=6)
        np.testing.assert_array_equal(a, b)
        assert (a != c).any()

    def test_identical_rows_get_identical_signatures(self):
        base = sparse.random(1, 40, density=0.3, random_state=9, format="csr")
        stacked = sparse.vstack([base, base, base]).tocsr()
        sig = minhash_signatures([stacked], bands=16, rows=2)
        np.testing.assert_array_equal(sig[0], sig[1])
        np.testing.assert_array_equal(sig[1], sig[2])

    def test_empty_supports_never_collide(self):
        empty = sparse.csr_matrix((4, 30))
        sig = minhash_signatures([empty], bands=8, rows=2)
        ia, ib = _grid(4)
        mask = minhash_pair_mask([empty], ia, ib, bands=8, rows=2)
        assert not mask.any()
        # Sentinels sit above every real hash value.
        assert (sig >= np.uint64(2147483647)).all()

    def test_validation(self):
        with pytest.raises(ValueError, match="bands and rows"):
            minhash_signatures(_matrices(), bands=0, rows=2)
        with pytest.raises(ValueError, match="at least one"):
            minhash_signatures([])


class TestSafetyRails:
    def test_refined_mask_is_subset_of_exact(self):
        mats = _matrices()
        ia, ib = _grid(50)
        exact = intersecting_pair_mask(mats, ia, ib)
        refined = minhash_refined_mask(mats, ia, ib)
        assert not (refined & ~exact).any()

    def test_refined_mask_is_subset_of_candidates(self):
        mats = _matrices()
        ia, ib = _grid(50)
        cand = minhash_pair_mask(mats, ia, ib)
        refined = minhash_refined_mask(mats, ia, ib)
        assert not (refined & ~cand).any()

    def test_identical_supports_are_always_candidates(self):
        base = sparse.random(1, 40, density=0.3, random_state=9, format="csr")
        stacked = sparse.vstack([base] * 6).tocsr()
        ia, ib = _grid(6)
        cand = minhash_pair_mask([stacked], ia, ib)
        assert cand.all()
        refined = minhash_refined_mask([stacked], ia, ib)
        assert refined.all()

    def test_recall_edges(self):
        exact = np.array([True, False, True, False])
        assert blocking_recall(exact, np.array([True, True, True, False])) == 1.0
        assert blocking_recall(exact, np.array([True, False, False, False])) == 0.5
        assert blocking_recall(np.zeros(4, dtype=bool), np.zeros(4, dtype=bool)) == 1.0
        with pytest.raises(ValueError, match="aligned"):
            blocking_recall(exact, np.zeros(3, dtype=bool))


class TestBuckets:
    def test_candidate_pairs_match_the_pair_mask_on_the_full_grid(self):
        mats = _matrices(n=30)
        ia, ib = _grid(30)
        mask = minhash_pair_mask(mats, ia, ib, bands=8, rows=2, seed=4)
        from_mask = sorted(
            (int(a), int(b)) for a, b in zip(ia[mask], ib[mask])
        )
        from_buckets = minhash_candidate_pairs(mats, bands=8, rows=2, seed=4)
        assert from_buckets == from_mask

    def test_candidates_never_exceed_exact_join_on_high_jaccard_worlds(self):
        # Clustered supports: same-cluster rows share a base set, so every
        # exact pair has high Jaccard and LSH at defaults keeps them all.
        rng = np.random.default_rng(0)
        rows, cols = [], []
        for ref in range(20):
            cluster = ref // 5
            base = np.arange(cluster * 25, cluster * 25 + 20)
            noise = rng.choice(20, size=2, replace=False) + cluster * 25
            support = np.unique(np.concatenate([base, noise]))
            rows.extend([ref] * len(support))
            cols.extend(support.tolist())
        mat = sparse.csr_matrix(
            (np.ones(len(rows)), (rows, cols)), shape=(20, 100)
        )
        exact = candidate_pairs([mat])
        cand = minhash_candidate_pairs([mat])
        assert set(exact) <= set(cand)
