"""Unit tests for the LRU-bounded fanout memo."""

from __future__ import annotations

import pytest

from repro.perf import FanoutMemo


class TestFanoutMemo:
    def test_miss_then_hit(self):
        memo = FanoutMemo(4)
        assert memo.get("a") is None
        memo.put("a", (1, 2, 3))
        assert memo.get("a") == (1, 2, 3)
        assert len(memo) == 1

    def test_evicts_least_recently_used(self):
        memo = FanoutMemo(2)
        memo.put("a", (1,))
        memo.put("b", (2,))
        assert memo.get("a") == (1,)  # refreshes "a"; "b" is now LRU
        memo.put("c", (3,))
        assert memo.get("b") is None
        assert memo.get("a") == (1,)
        assert memo.get("c") == (3,)
        assert len(memo) == 2

    def test_put_overwrites_without_growth(self):
        memo = FanoutMemo(2)
        memo.put("a", (1,))
        memo.put("a", (1, 2))
        assert memo.get("a") == (1, 2)
        assert len(memo) == 1

    def test_empty_partner_tuple_is_a_hit(self):
        # A tuple with no partners must cache as () — not read as a miss.
        memo = FanoutMemo(2)
        memo.put("dead-end", ())
        assert memo.get("dead-end") == ()

    def test_clear(self):
        memo = FanoutMemo(4)
        memo.put("a", (1,))
        memo.clear()
        assert len(memo) == 0
        assert memo.get("a") is None

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive_bound(self, bad):
        with pytest.raises(ValueError):
            FanoutMemo(bad)
