"""Epoch pinning: stale caches refuse to serve, advance() re-pins.

Regression tests for the delta-ingest invalidation contract: an
epoch-pinned :class:`FanoutMemo` / :class:`TransitionCache` raises
:class:`StaleCacheError` when read at a ``db.epoch`` other than the one
it was built (or last advanced) at, and ``advance()`` drops exactly the
dirty rows while keeping every clean compiled row byte-identical.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.errors import StaleCacheError
from repro.perf import FanoutMemo
from repro.perf.transitions import TransitionCache
from repro.reldb.joins import JoinStep

STEP = JoinStep("Publish", "author_key", "Authors", "author_key", "n1")
OTHER = JoinStep("Publish", "paper_id", "Publications", "paper_id", "n1")


class TestFanoutMemoEpoch:
    def test_unpinned_memo_never_raises(self):
        memo = FanoutMemo(4)
        memo.check_epoch(0)
        memo.check_epoch(7)

    def test_pinned_memo_accepts_its_own_epoch(self):
        memo = FanoutMemo(4, epoch=3)
        memo.check_epoch(3)

    def test_stale_read_raises(self):
        memo = FanoutMemo(4, epoch=3)
        with pytest.raises(StaleCacheError) as err:
            memo.check_epoch(4)
        assert "FanoutMemo" in str(err.value)
        assert "3" in str(err.value) and "4" in str(err.value)

    def test_advance_repins_and_drops_dirty_rows(self):
        memo = FanoutMemo(8, epoch=1)
        memo.put((STEP, 0), (10, 11))
        memo.put((STEP, 1), (12,))
        memo.put((OTHER, 0), (20,))
        memo.advance(2, {"Publish": [0]})
        memo.check_epoch(2)
        # Both (step, 0) entries are dirty — the memo keys by the step's
        # src_relation, and both steps leave Publish.
        assert memo.get((STEP, 0)) is None
        assert memo.get((OTHER, 0)) is None
        assert memo.get((STEP, 1)) == (12,)

    def test_advance_drops_uninterpretable_keys(self):
        # A key that does not carry a (step, src_row) shape cannot be
        # matched against dirty rows: conservatively invalidated.
        memo = FanoutMemo(8, epoch=1)
        memo.put("opaque", (1, 2))
        memo.put((STEP, 1), (3,))
        memo.advance(2, {})
        assert memo.get("opaque") is None
        assert memo.get((STEP, 1)) == (3,)


def _fanout_from(matrix: dict[int, list[int]]):
    return lambda row: matrix.get(row, [])


class TestTransitionCacheEpoch:
    def test_stale_read_raises(self):
        cache = TransitionCache(epoch=5)
        cache.check_epoch(5)
        with pytest.raises(StaleCacheError) as err:
            cache.check_epoch(6)
        assert "TransitionCache" in str(err.value)

    def test_advance_keeps_clean_rows_byte_identical(self):
        fanouts = {0: [0, 1], 1: [1], 2: [0, 2]}
        cache = TransitionCache(epoch=1)
        before = cache.get(
            STEP, np.array([0, 1, 2]), (3, 3), _fanout_from(fanouts)
        )
        clean_bytes = before.matrix[np.array([1, 2])].toarray().tobytes()

        # The delta grows both relations and dirties source row 0.
        reused, dirty = cache.advance(2, {"Publish": [0]}, {"Publish": 5, "Authors": 4})
        assert (reused, dirty) == (2, 1)
        cache.check_epoch(2)

        # Row 0 recompiles through the extension path with its post-delta
        # fanout; rows 1 and 2 must keep their exact stored slices.
        fanouts[0] = [0, 1, 3]
        after = cache.get(
            STEP, np.array([0, 1, 2]), (5, 4), _fanout_from(fanouts)
        )
        assert after.shape == (5, 4)
        got_clean = after.matrix[np.array([1, 2])].toarray()[:, :3]
        assert got_clean.tobytes() == clean_bytes
        np.testing.assert_allclose(
            after.matrix[0].toarray().ravel(), [1 / 3, 1 / 3, 0, 1 / 3]
        )
        assert after.covered[:3].all() and not after.covered[3:].any()

    def test_advance_drops_keyless_entries(self):
        cache = TransitionCache(epoch=1)
        cache.get("opaque-key", np.array([0]), (2, 2), _fanout_from({0: [1]}))
        cache.get(STEP, np.array([0]), (2, 2), _fanout_from({0: [1]}))
        reused, dirty = cache.advance(2, {}, {"Publish": 2, "Authors": 2})
        assert len(cache) == 1  # the opaque entry is gone
        assert reused == 1 and dirty == 1

    def test_dirty_rows_beyond_old_shape_are_ignored(self):
        # Rows the delta itself added were never compiled — they are not
        # "dirty", they are simply uncovered in the padded entry.
        cache = TransitionCache(epoch=1)
        cache.get(STEP, np.array([0, 1]), (2, 2), _fanout_from({0: [0], 1: [1]}))
        reused, dirty = cache.advance(
            2, {"Publish": [1, 2, 3]}, {"Publish": 4, "Authors": 2}
        )
        assert (reused, dirty) == (1, 1)
        entry = cache._entries[STEP]
        assert entry.covered.tolist() == [True, False, False, False]


class TestSparseUnionInvariant:
    def test_extension_matches_fresh_compile(self):
        # advance + lazy recompile must equal compiling the post-delta
        # transition from scratch (the byte-identity story in miniature).
        fanouts = {0: [0, 1], 1: [2], 2: [0], 3: [3]}
        cache = TransitionCache(epoch=1)
        cache.get(STEP, np.array([0, 1, 2]), (4, 4), _fanout_from(fanouts))
        fanouts[1] = [2, 4]
        cache.advance(2, {"Publish": [1]}, {"Publish": 5, "Authors": 5})
        merged = cache.get(
            STEP, np.array([0, 1, 2, 3]), (5, 5), _fanout_from(fanouts)
        )
        fresh = TransitionCache(epoch=2).get(
            STEP, np.array([0, 1, 2, 3]), (5, 5), _fanout_from(fanouts)
        )
        assert (merged.matrix != fresh.matrix).nnz == 0
        np.testing.assert_array_equal(merged.degrees, fresh.degrees)
        np.testing.assert_array_equal(merged.covered, fresh.covered)
        assert isinstance(merged.matrix, sparse.csr_matrix)
