"""Tests for the ordered process-pool map.

Worker functions must be module-level (they are pickled by reference into
the pool's call queue).
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.obs import counter, disable_tracing, enable_tracing, get_metrics, span
from repro.perf import RemoteTaskError, TaskOutcome, ordered_process_map, should_inline
from repro.resilience import Deadline


def _scale(payload, item):
    return payload * item


def _fail_on_three(payload, item):
    if item == 3:
        raise RuntimeError("poisoned item")
    return item


def _bump_counter(payload, item):
    counter("perf.test.bumps").inc(item)
    return item


def _sleepy(payload, item):
    time.sleep(item)
    return item


def _traced_work(payload, item):
    with span("worker.item", item=item):
        with span("worker.item.inner"):
            time.sleep(0.001)
    return item * 2


def _kill_worker_once(payload, item):
    """SIGKILL this worker on item 3, once across the whole run.

    ``payload`` is a latch path: the O_CREAT|O_EXCL claim makes exactly
    one process die even though every forked worker runs this code.
    """
    if item == 3:
        try:
            os.close(os.open(payload, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            pass
        else:
            os.kill(os.getpid(), signal.SIGKILL)
    return item * 10


def _kill_worker_always(payload, item):
    """Item 3 is poisonous: it kills its worker on every dispatch."""
    if item == 3:
        os.kill(os.getpid(), signal.SIGKILL)
    return item * 10


class TestOrderedProcessMap:
    def test_results_follow_input_order(self):
        items = [5, 1, 4, 2, 3]
        outcomes = list(ordered_process_map(_scale, 10, items, workers=2))
        assert [o.item for o in outcomes] == items
        assert [o.value for o in outcomes] == [50, 10, 40, 20, 30]
        assert all(o.ok for o in outcomes)

    def test_worker_error_is_data_not_poison(self):
        outcomes = list(ordered_process_map(_fail_on_three, None, [1, 3, 2], workers=2))
        by_item = {o.item: o for o in outcomes}
        assert by_item[1].ok and by_item[2].ok  # pool survives the failure
        failed = by_item[3]
        assert not failed.ok
        assert failed.error == {"type": "RuntimeError", "message": "poisoned item"}
        with pytest.raises(RemoteTaskError, match="poisoned item"):
            failed.unwrap()

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            ordered_process_map(_scale, 1, [1], workers=0)

    def test_counter_deltas_merge_into_parent(self):
        before = get_metrics().counter("perf.test.bumps").value
        list(ordered_process_map(_bump_counter, None, [2, 3, 5], workers=2))
        after = get_metrics().counter("perf.test.bumps").value
        assert after - before == pytest.approx(10)

    def test_deadline_interrupts_remaining_items(self):
        deadline = Deadline.after(0.3)
        outcomes = list(
            ordered_process_map(
                _sleepy, None, [0.0, 1.0, 0.0, 0.0], workers=1, deadline=deadline
            )
        )
        assert outcomes[0].ok
        interrupted = [o.interrupted for o in outcomes]
        assert any(interrupted)
        # Once interrupted, every later outcome is interrupted too.
        first = interrupted.index(True)
        assert all(interrupted[first:])

    def test_early_abandonment_is_clean(self):
        results = ordered_process_map(_scale, 1, list(range(8)), workers=2)
        first = next(results)
        assert first == TaskOutcome(item=0, value=0)
        results.close()  # must not hang or raise


class TestWorkerDeathRecovery:
    def _deaths(self):
        return get_metrics().counter("perf.parallel.worker_deaths").value

    def _redispatched(self):
        return get_metrics().counter("perf.parallel.tasks_redispatched").value

    def test_single_death_recovers_with_identical_results(self, tmp_path):
        items = list(range(8))
        serial = list(
            ordered_process_map(_scale, 10, items, workers=2, inline=True)
        )
        deaths0 = self._deaths()
        latch = tmp_path / "latch"
        outcomes = list(
            ordered_process_map(_kill_worker_once, str(latch), items, workers=2)
        )
        assert self._deaths() - deaths0 == 1
        assert all(o.ok for o in outcomes)
        assert [o.item for o in outcomes] == items
        assert [o.value for o in outcomes] == [o.value for o in serial]

    def test_redispatch_counted(self, tmp_path):
        redisp0 = self._redispatched()
        list(
            ordered_process_map(
                _kill_worker_once, str(tmp_path / "latch"), list(range(8)),
                workers=2,
            )
        )
        assert self._redispatched() > redisp0

    def test_repeat_killer_surfaces_as_worker_crashed(self):
        deaths0 = self._deaths()
        outcomes = list(
            ordered_process_map(
                _kill_worker_always, None, [1, 2, 3, 4], workers=2,
                task_retries=1,
            )
        )
        by_item = {o.item: o for o in outcomes}
        assert by_item[1].ok and by_item[2].ok and by_item[4].ok
        failed = by_item[3]
        assert not failed.ok
        assert failed.error["type"] == "WorkerCrashed"
        with pytest.raises(RemoteTaskError, match="WorkerCrashed"):
            failed.unwrap()
        # First death shared with innocents, second alone on probation.
        assert self._deaths() - deaths0 == 2

    def test_zero_retries_fails_fast(self):
        outcomes = list(
            ordered_process_map(
                _kill_worker_always, None, [3], workers=1, task_retries=0
            )
        )
        assert outcomes[0].error["type"] == "WorkerCrashed"
        assert "died 1 time(s)" in outcomes[0].error["message"]

    def test_chunked_dispatch_survives_death(self, tmp_path):
        items = list(range(8))
        latch = tmp_path / "latch"
        outcomes = list(
            ordered_process_map(
                _kill_worker_once, str(latch), items, workers=2, chunk_size=3
            )
        )
        assert all(o.ok for o in outcomes)
        assert [o.value for o in outcomes] == [i * 10 for i in items]

    def test_chunked_repeat_killer_blames_whole_chunk(self):
        outcomes = list(
            ordered_process_map(
                _kill_worker_always, None, [1, 2, 3, 4], workers=2,
                chunk_size=2, task_retries=1,
            )
        )
        by_item = {o.item: o for o in outcomes}
        # The killer's chunk-mate shares its fate (they die together);
        # the other chunk completes.
        assert by_item[1].ok and by_item[2].ok
        assert by_item[3].error["type"] == "WorkerCrashed"
        assert by_item[4].error["type"] == "WorkerCrashed"

    def test_rejects_negative_task_retries(self):
        with pytest.raises(ValueError):
            ordered_process_map(_scale, 1, [1], workers=1, task_retries=-1)


class TestChunkedDispatch:
    @pytest.mark.parametrize("chunk_size", [2, 3, 100])
    def test_chunked_outcomes_identical_to_unchunked(self, chunk_size):
        items = [5, 1, 4, 2, 3]
        plain = list(ordered_process_map(_scale, 10, items, workers=2))
        chunked = list(
            ordered_process_map(_scale, 10, items, workers=2, chunk_size=chunk_size)
        )
        assert chunked == plain

    def test_chunked_errors_stay_per_item(self):
        outcomes = list(
            ordered_process_map(
                _fail_on_three, None, [1, 3, 2], workers=2, chunk_size=3
            )
        )
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].error["type"] == "RuntimeError"

    def test_chunked_counter_deltas_merge(self):
        before = get_metrics().counter("perf.test.bumps").value
        list(
            ordered_process_map(_bump_counter, None, [2, 3, 5], workers=2, chunk_size=2)
        )
        after = get_metrics().counter("perf.test.bumps").value
        assert after - before == pytest.approx(10)

    def test_rejects_nonpositive_chunk_size(self):
        with pytest.raises(ValueError):
            ordered_process_map(_scale, 1, [1], workers=1, chunk_size=0)


class TestInlineDispatch:
    def test_inline_outcomes_identical_to_pool(self):
        items = [5, 1, 4, 2, 3]
        pooled = list(ordered_process_map(_scale, 10, items, workers=2))
        inlined = list(
            ordered_process_map(_scale, 10, items, workers=2, inline=True)
        )
        assert inlined == pooled

    def test_inline_error_as_data(self):
        outcomes = list(
            ordered_process_map(_fail_on_three, None, [1, 3, 2], workers=1, inline=True)
        )
        assert [o.ok for o in outcomes] == [True, False, True]
        with pytest.raises(RemoteTaskError, match="poisoned item"):
            outcomes[1].unwrap()

    def test_inline_counters_count_in_process(self):
        metrics = get_metrics()
        bumps0 = metrics.counter("perf.test.bumps").value
        inlined0 = metrics.counter("perf.parallel.tasks_inlined").value
        list(ordered_process_map(_bump_counter, None, [2, 3, 5], workers=1, inline=True))
        assert metrics.counter("perf.test.bumps").value - bumps0 == pytest.approx(10)
        assert metrics.counter("perf.parallel.tasks_inlined").value - inlined0 == 3

    def test_inline_deadline_interrupts(self):
        deadline = Deadline.after(0.05)
        outcomes = list(
            ordered_process_map(
                _sleepy, None, [0.1, 0.0, 0.0], workers=1, inline=True,
                deadline=deadline,
            )
        )
        assert outcomes[0].ok
        assert outcomes[1].interrupted and outcomes[2].interrupted


class TestTraceGrafting:
    @pytest.fixture(autouse=True)
    def clean_tracer(self):
        disable_tracing()
        yield
        disable_tracing()

    def test_worker_spans_grafted_into_parent_trace(self):
        tracer = enable_tracing()
        grafted0 = get_metrics().counter("perf.parallel.spans_grafted").value
        with span("driver") as parent:
            outcomes = list(
                ordered_process_map(_traced_work, None, [1, 2, 3], workers=2)
            )
        assert [o.value for o in outcomes] == [2, 4, 6]
        worker_roots = [c for c in parent.children if c.name == "worker.item"]
        assert len(worker_roots) == 3
        assert {sp.attrs["item"] for sp in worker_roots} == {1, 2, 3}
        for sp in worker_roots:
            assert sp.attrs["worker"] in (0, 1)
            assert sp.attrs["worker_pid"] > 0
            assert [c.name for c in sp.children] == ["worker.item.inner"]
            assert sp.end is not None
        assert tracer.roots == [parent]  # grafts landed under the open span
        delta = get_metrics().counter("perf.parallel.spans_grafted").value - grafted0
        assert delta == 3

    def test_results_identical_with_and_without_tracing(self):
        plain = list(ordered_process_map(_traced_work, None, [3, 1, 2], workers=2))
        enable_tracing()
        traced = list(ordered_process_map(_traced_work, None, [3, 1, 2], workers=2))
        assert traced == plain  # seconds/worker_pid are compare=False

    def test_no_grafting_when_tracing_disabled(self):
        grafted0 = get_metrics().counter("perf.parallel.spans_grafted").value
        outcomes = list(ordered_process_map(_traced_work, None, [1, 2], workers=2))
        assert [o.value for o in outcomes] == [2, 4]
        assert (
            get_metrics().counter("perf.parallel.spans_grafted").value == grafted0
        )

    def test_task_seconds_populated(self):
        enable_tracing()
        outcomes = list(ordered_process_map(_traced_work, None, [1], workers=1))
        assert outcomes[0].seconds > 0.0
        assert outcomes[0].worker_pid is not None

    def test_inline_map_keeps_spans_local(self):
        tracer = enable_tracing()
        with span("driver") as parent:
            list(
                ordered_process_map(
                    _traced_work, None, [1, 2], workers=2, inline=True
                )
            )
        names = [c.name for c in parent.children]
        assert names == ["worker.item", "worker.item"]
        # Inline spans are recorded directly, not round-tripped over the wire.
        assert all("worker" not in c.attrs for c in parent.children)
        assert tracer.roots == [parent]


class TestShouldInline:
    def test_structural_cases(self):
        assert should_inline(10, workers=1)  # nothing to parallelize
        assert should_inline(1, workers=4)
        assert should_inline(0, workers=4)

    def test_cost_threshold(self, monkeypatch):
        monkeypatch.setattr("repro.perf.parallel.os.cpu_count", lambda: 8)
        assert should_inline(10, workers=4, task_cost_hint=0.001)
        assert not should_inline(10, workers=4, task_cost_hint=1.0)
        assert not should_inline(10, workers=4, task_cost_hint=None)

    def test_single_core_host_inlines(self, monkeypatch):
        monkeypatch.setattr("repro.perf.parallel.os.cpu_count", lambda: 1)
        assert should_inline(10, workers=4, task_cost_hint=10.0)
